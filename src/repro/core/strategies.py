"""Service strategies and their valid combinations (paper sections 4-4.5).

Each of the three services has strategy axes:

* Admission Control: **per task** (test only at first arrival) or
  **per job** (test every job; requires job-skipping tolerance, C1).
* Idle Resetting: **none**, **per task** (reset completed *aperiodic*
  subjobs only) or **per job** (also reset completed *periodic* subjobs).
* Load Balancing: **none**, **per task** (assign once at first arrival;
  for state-persistent tasks, C2) or **per job** (reassign every job).

Of the 18 combinations, AC-per-Task with IR-per-Job is contradictory
(per-task admission must keep periodic contributions reserved; per-job
resetting removes them), eliminating 3 combinations and leaving the 15 the
paper evaluates.  Labels follow the paper's ``AC_IR_LB`` tuple notation,
e.g. ``J_T_N``.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ConfigurationError, InvalidStrategyCombination


class ACStrategy(enum.Enum):
    """When the admission test runs."""

    PER_TASK = "T"
    PER_JOB = "J"


class IRStrategy(enum.Enum):
    """Which completed subjobs the idle-resetting rule reclaims."""

    NONE = "N"
    PER_TASK = "T"
    PER_JOB = "J"


class LBStrategy(enum.Enum):
    """When subtask-to-processor assignments may change."""

    NONE = "N"
    PER_TASK = "T"
    PER_JOB = "J"


@dataclass(frozen=True)
class StrategyCombo:
    """One configuration of the three services."""

    ac: ACStrategy
    ir: IRStrategy
    lb: LBStrategy

    @property
    def label(self) -> str:
        """The paper's tuple notation, e.g. ``"J_J_T"``."""
        return f"{self.ac.value}_{self.ir.value}_{self.lb.value}"

    @property
    def is_valid(self) -> bool:
        """False exactly for the contradictory AC-per-Task + IR-per-Job."""
        return not (self.ac is ACStrategy.PER_TASK and self.ir is IRStrategy.PER_JOB)

    def validate(self) -> "StrategyCombo":
        """Raise :class:`InvalidStrategyCombination` if invalid; else self."""
        if not self.is_valid:
            raise InvalidStrategyCombination(
                f"combination {self.label} is invalid: per-job idle resetting "
                "removes completed periodic subjob contributions, but per-task "
                "admission control requires them to stay reserved for the "
                "task's lifetime (paper section 4.5)"
            )
        return self

    @classmethod
    def from_label(cls, label: str) -> "StrategyCombo":
        """Parse a ``"T_N_J"``-style label (as printed in the figures)."""
        parts = label.strip().upper().split("_")
        if len(parts) != 3:
            raise ConfigurationError(
                f"strategy label must have three parts like 'J_T_N', got {label!r}"
            )
        try:
            return cls(ACStrategy(parts[0]), IRStrategy(parts[1]), LBStrategy(parts[2]))
        except ValueError as exc:
            raise ConfigurationError(f"bad strategy label {label!r}: {exc}") from None

    def __str__(self) -> str:
        return self.label


def all_combinations() -> List[StrategyCombo]:
    """All 18 combinations, in the paper's figure order (AC, IR, LB)."""
    return [
        StrategyCombo(ac, ir, lb)
        for ac, ir, lb in itertools.product(ACStrategy, IRStrategy, LBStrategy)
    ]


def valid_combinations() -> List[StrategyCombo]:
    """The 15 valid combinations, in the order of the paper's Figures 5/6:
    T_N_N, T_N_T, T_N_J, T_T_N, ..., J_J_J."""
    return [combo for combo in all_combinations() if combo.is_valid]

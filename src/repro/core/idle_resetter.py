"""Idle Resetting (IR) component.

One IR instance runs on each application processor.  Subtask components
call its "Complete" facet when a subjob finishes; the IR records completed
subjobs and reports them to the AC from an **idle-detector thread** — a
lowest-priority dispatch thread that only runs when every application
subtask thread on the processor is idle, exactly the paper's mechanism.

Strategies (paper section 4.3):

* **No IR** — completions are ignored; contributions stay until the job
  deadline (cheapest, most pessimistic).
* **IR per Task** — only completed *aperiodic* subjobs are recorded and
  reported (each aperiodic job is an independent single-release task).
* **IR per Job** — completed *periodic* subjobs are reported too (largest
  reclamation, most overhead; incompatible with AC per task).

To avoid reporting repeatedly, a report is queued only when a newly
completed subjob whose deadline has not expired is recorded.

All completions recorded during one idle period travel in **one**
:class:`~repro.ccm.events.IdleResettingEvent` (the report coalesces the
whole pending set when the idle-detector thread finally runs), and the AC
applies that event with one ledger ``remove_batch`` — so an idle period
costs a single AUB cache refresh no matter how many subjobs it reclaims.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from repro.ccm.component import AttributeSpec, Component
from repro.ccm.events import IdleResettingEvent, TOPIC_IDLE_RESETTING
from repro.ccm.ports import EventSourcePort, Facet
from repro.core.cost_model import OP_IR_REPORT
from repro.core.runtime import RuntimeEnv
from repro.cpu.thread import WorkItem
from repro.errors import ComponentError
from repro.sched.task import Job

#: Ledger contribution key reported to the AC: (task_id, job_index,
#: subtask_index).  The processor is carried once per report event, not
#: per entry — every entry in a report belongs to the idle processor.
ReportEntry = Tuple[str, int, int]


class IdleResetterComponent(Component):
    """Reports completed subjobs when the processor goes idle."""

    ATTRIBUTES = {
        "processor_id": AttributeSpec(
            str, required=True, doc="Name of the hosting application processor."
        ),
        "strategy": AttributeSpec(
            str,
            default="N",
            validator=lambda v: v in ("N", "T", "J"),
            doc="N: disabled; T: aperiodic subjobs only; J: all subjobs.",
        ),
    }

    def __init__(self, name: str, env: RuntimeEnv) -> None:
        super().__init__(name)
        self.env = env
        #: Completed subjobs awaiting report: entry -> absolute deadline.
        self._pending: Dict[ReportEntry, float] = {}
        self._report_queued = False
        self._thread = None
        self._source: Optional[EventSourcePort] = None
        self.completions_recorded = 0
        self.reports_sent = 0
        self.entries_reported = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_install(self, container) -> None:
        self._source = EventSourcePort(self, "idle_resetting")
        # The idle detector: lowest possible priority, so its work runs
        # only when the processor has nothing more urgent — i.e. when idle.
        self._thread = container.processor.new_thread(
            f"{self.name}.idle_detector", math.inf
        )

    def on_activate(self) -> None:
        if self.get_attribute("processor_id") != self.node:
            raise ComponentError(
                f"IR {self.name!r}: processor_id attribute "
                f"{self.get_attribute('processor_id')!r} does not match "
                f"deployment node {self.node!r}"
            )
        self.env.idle_resetters[self.node] = self

    def provide_complete_facet(self) -> Facet:
        """The facet subtask components call on subjob completion."""
        return Facet(self, "complete", self)

    def provide_facet(self, port_name: str) -> Facet:
        if port_name == "complete":
            return self.provide_complete_facet()
        return super().provide_facet(port_name)

    # ------------------------------------------------------------------
    # Complete interface (called by F/I and Last Subtask components)
    # ------------------------------------------------------------------
    def complete(self, job: Job, subtask_index: int) -> None:
        """A subjob of ``job`` finished on this processor."""
        strategy = self.get_attribute("strategy")
        if strategy == "N":
            return
        if strategy == "T" and job.task.is_periodic:
            # Per-task resetting reclaims aperiodic contributions only.
            return
        now = self.sim.now
        if job.absolute_deadline <= now:
            # The contribution is being removed by deadline expiry anyway.
            return
        entry: ReportEntry = (job.task.task_id, job.index, subtask_index)
        self._pending[entry] = job.absolute_deadline
        self.completions_recorded += 1
        self._ensure_report_queued()

    def _ensure_report_queued(self) -> None:
        if self._report_queued or not self._pending:
            return
        self._report_queued = True
        cost = self.env.cost_model.sample(OP_IR_REPORT, self.env.cost_rng)
        item = WorkItem(cost, label=f"{self.name}.report")
        item.on_complete = lambda _payload, _item=item: self._flush(_item)
        self.processor.submit(self._thread, item)

    def _flush(self, item: WorkItem) -> None:
        """The idle-detector work ran: report still-live completions."""
        self._report_queued = False
        now = self.sim.now
        entries = tuple(
            entry for entry, deadline in self._pending.items() if deadline > now
        )
        self._pending.clear()
        if not entries:
            return
        self.reports_sent += 1
        self.entries_reported += len(entries)
        event = IdleResettingEvent(node=self.node, entries=entries)
        self.tracer.record(now, "ir.report", self.node, entries=len(entries))
        # The report's contribution to overhead is op7 (the idle-time work
        # itself — preemptions of the idle detector by application work are
        # not middleware overhead) plus the communication hop; the AC-side
        # op8 is recorded by the AC.
        self._source.push(self.env.manager_node, TOPIC_IDLE_RESETTING, event)
        self.env.overhead.record_ir_other(item.cost + self._expected_comm_delay())

    def _expected_comm_delay(self) -> float:
        """Mean one-way delay for the overhead decomposition row.

        The actual event hop samples its own delay inside the network
        layer; for the Figure 8 "IR (other part)" row the paper adds the
        measured communication delay to the report cost, so we use the
        network's running mean (or the model mean before any samples).
        """
        stats = self.env.network.delay_stats
        if stats.count > 0:
            return stats.mean
        return self.env.network.default_delay.mean()

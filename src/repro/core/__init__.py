"""The paper's primary contribution: configurable middleware services.

Six configurable components (paper Figure 3), implemented over the
CCM-lite substrate:

* :class:`~repro.core.task_effector.TaskEffectorComponent` (TE) — holds
  arriving jobs, awaits the admission decision, releases jobs.
* :class:`~repro.core.admission_controller.AdmissionControllerComponent`
  (AC) — AUB-based on-line admission control, per task or per job.
* :class:`~repro.core.load_balancer.LoadBalancerComponent` (LB) — assigns
  subtasks to the lowest-synthetic-utilization eligible processor.
* :class:`~repro.core.idle_resetter.IdleResetterComponent` (IR) — reports
  completed subjobs from a lowest-priority idle-detector thread.
* :class:`~repro.core.subtask.FISubtaskComponent` and
  :class:`~repro.core.subtask.LastSubtaskComponent` — execute subjobs at
  EDMS priority and trigger successors.

:class:`~repro.core.middleware.MiddlewareSystem` assembles a whole
distributed deployment (task manager + application processors) for a
workload and a strategy combination.
"""

from repro.core.cost_model import CostModel
from repro.core.middleware import MiddlewareSystem, SystemResults
from repro.core.strategies import (
    ACStrategy,
    IRStrategy,
    LBStrategy,
    StrategyCombo,
    all_combinations,
    valid_combinations,
)

__all__ = [
    "CostModel",
    "MiddlewareSystem",
    "SystemResults",
    "ACStrategy",
    "IRStrategy",
    "LBStrategy",
    "StrategyCombo",
    "all_combinations",
    "valid_combinations",
]

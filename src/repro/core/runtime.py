"""Shared runtime environment for a deployed middleware system.

Every service component receives the same :class:`RuntimeEnv` at
construction: simulation kernel, network, cost model, RNG streams, metric
collectors, and registries of deployed peer components.  It plays the role
CIAO's container services + naming play in the paper — the way a TE finds
"the local IR instance" or the AC finds "the TE on processor 3".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING, Tuple

from repro.core.cost_model import CostModel
from repro.core.strategies import StrategyCombo
from repro.metrics.overhead import OverheadAccounting
from repro.metrics.ratio import MetricsCollector
from repro.metrics.registry import MetricsRegistry
from repro.net.federation import FederatedEventChannel
from repro.net.network import Network
from repro.sched.task import TaskSpec
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.tracing import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.idle_resetter import IdleResetterComponent
    from repro.core.subtask import _SubtaskComponentBase
    from repro.core.task_effector import TaskEffectorComponent


@dataclass
class RuntimeEnv:
    """Deployment-wide shared state and component registries."""

    sim: Simulator
    network: Network
    federation: FederatedEventChannel
    combo: StrategyCombo
    cost_model: CostModel
    rngs: RngRegistry
    metrics: MetricsCollector
    overhead: OverheadAccounting
    tracer: Tracer
    manager_node: str
    app_nodes: List[str]
    # Observability registry; None means the run is unarmed and every
    # publish site stays on the seed-identical no-metrics path.
    metrics_registry: Optional[MetricsRegistry] = None
    tasks: Dict[str, TaskSpec] = field(default_factory=dict)
    task_effectors: Dict[str, "TaskEffectorComponent"] = field(default_factory=dict)
    idle_resetters: Dict[str, "IdleResetterComponent"] = field(default_factory=dict)
    subtask_instances: Dict[Tuple[str, int, str], "_SubtaskComponentBase"] = field(
        default_factory=dict
    )

    @property
    def cost_rng(self) -> random.Random:
        """RNG stream for service-operation cost jitter."""
        return self.rngs.stream("cost")

    def audit_rngs(self) -> None:
        """Fail on unattributed RNG draws (``REPRO_SANITIZE=1`` only).

        Called at run boundaries (see ``MiddlewareSystem._results``); a
        no-op unless the registry was constructed under the sanitizer.
        """
        self.rngs.audit()

    def subtask_instance(self, task_id: str, index: int, node: str):
        """Look up the deployed subtask component for (task, stage, node)."""
        try:
            return self.subtask_instances[(task_id, index, node)]
        except KeyError:
            raise KeyError(
                f"no subtask component deployed for task {task_id!r} "
                f"stage {index} on node {node!r}"
            ) from None

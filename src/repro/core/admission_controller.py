"""Admission Control (AC) component.

One AC instance runs on the central task-manager processor.  It consumes
"Task Arrive" events from the task effectors and "Idle Resetting" events
from the idle resetters, runs the AUB admission test (paper equation 1)
over the shared synthetic-utilization ledger, asks the LB component for
placement plans when load balancing is enabled, and publishes "Accept" /
"Reject" events back to the task effectors.

Strategy semantics (paper section 4.2):

* **AC per Task** — the admission test runs only at a periodic task's
  first arrival; its synthetic-utilization contributions are *reserved for
  the task's lifetime* (never reclaimed between jobs), which is efficient
  but pessimistic.  Aperiodic tasks are always tested per arrival (each
  aperiodic job is an independent single-release task).
* **AC per Job** — every job is tested on arrival; contributions expire at
  the job's absolute deadline (and may be reclaimed earlier by idle
  resetting).  Requires the application to tolerate job skipping (C1).

Admission work executes on a dispatch thread of the task-manager CPU, so
concurrent arrivals serialize and queueing delay is measured honestly.

**Burst batching** (the ``batching`` attribute, driven by a scenario's
``arrival_batching`` flag): instead of deciding one arrival per dispatch
work item, incoming "Task Arrive" events accumulate in an arrival queue
and the first work item to run drains the whole queue through
:meth:`~repro.sched.aub.AubAnalyzer.admissible_batch` — one prune, one
cache refresh, shared hypothetical totals, and a single ledger
``add_batch`` commit for every accepted arrival in the burst.  Each
arrival still pays its own sampled admission cost on the dispatch thread
(CPU accounting is unchanged); what batching amortizes is the analyzer
bookkeeping and the decision latency of arrivals queued behind the first.

Load-balanced configurations batch too: placements are planned and
tested against one analyzer batch session per burst
(:meth:`~repro.sched.aub.AubAnalyzer.batch_session`), whose overlay
plays the role of the interim ledger commits each placement must
observe, so decisions stay bit-identical to the per-arrival path while
the burst commits through a single ledger ``add_batch``.  Only two
cases re-enter the sequential flow mid-burst (after flushing the open
batch segment, so ordering is preserved): a later job of a periodic
task whose first job is still undecided in the same burst, and — under
AC-per-task + LB-per-job — a cached-accept arrival that may *relocate*
the live reservation, a ledger mutation later decisions must see.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ccm.component import AttributeSpec, Component
from repro.ccm.events import (
    AcceptEvent,
    IdleResettingEvent,
    RejectEvent,
    TOPIC_IDLE_RESETTING,
    TOPIC_TASK_ARRIVE,
    TaskArriveEvent,
    accept_topic,
    reject_topic,
)
from repro.ccm.ports import EventSinkPort, EventSourcePort, Facet, Receptacle
from repro.core.cost_model import OP_ADMISSION_TEST, OP_IR_UPDATE, OP_LB_PLAN
from repro.core.runtime import RuntimeEnv
from repro.core.strategies import (
    ACStrategy,
    IRStrategy,
    LBStrategy,
    StrategyCombo,
)
from repro.cpu.thread import WorkItem
from repro.errors import ComponentError
from repro.sched.aub import (
    RESERVED,
    AubAnalyzer,
    BatchCandidate,
    SyntheticUtilizationLedger,
)
from repro.sched.task import Job, TaskSpec


@dataclass
class TaskRecord:
    """Per-task state kept by the admission controller."""

    #: AC-per-Task cached admission decision (None until first decision).
    admitted: Optional[bool] = None
    #: Assignment fixed per task (AC per task, or LB per task).
    assignment: Optional[Dict[int, str]] = None
    jobs_seen: int = 0


@dataclass(frozen=True)
class AdmissionState:
    """Facet object shared with the LB component: the live ledger and
    analyzer (the LB must see the same synthetic utilizations the AC
    admits against)."""

    ledger: SyntheticUtilizationLedger
    analyzer: AubAnalyzer


class AdmissionControllerComponent(Component):
    """AUB-based on-line admission control (strategies: per task/per job)."""

    ATTRIBUTES = {
        "ac_strategy": AttributeSpec(
            str,
            default="J",
            validator=lambda v: v in ("T", "J"),
            doc="T: admission test at first task arrival; J: per job.",
        ),
        "ir_strategy": AttributeSpec(
            str,
            default="N",
            validator=lambda v: v in ("N", "T", "J"),
            doc="Idle resetting scope; must be consistent with ac_strategy.",
        ),
        "lb_strategy": AttributeSpec(
            str,
            default="N",
            validator=lambda v: v in ("N", "T", "J"),
            doc="No-LB/LB-per-task/LB-per-job (the paper's AC attribute).",
        ),
        "batching": AttributeSpec(
            bool,
            default=False,
            doc="Drain simultaneous arrivals into one batched admission "
            "test (admissible_batch) instead of deciding per event.",
        ),
    }

    def __init__(self, name: str, env: RuntimeEnv) -> None:
        super().__init__(name)
        self.env = env
        self.ledger: Optional[SyntheticUtilizationLedger] = None
        self.analyzer: Optional[AubAnalyzer] = None
        self._records: Dict[str, TaskRecord] = {}
        self._source: Optional[EventSourcePort] = None
        self._locator = Receptacle(self, "locator")
        self._thread = None
        #: Arrivals awaiting a batched decision (batching enabled only).
        self._arrival_queue: List[TaskArriveEvent] = []
        self.admitted_jobs = 0
        self.rejected_jobs = 0
        self.idle_resets_applied = 0
        self.batch_calls = 0
        self.batched_arrivals = 0
        # Pre-bound metric children (armed runs only): one None-check on
        # the decision path instead of registry lookups per event.
        self._m_decisions_accept = None
        self._m_decisions_reject = None
        self._m_decision_latency = None
        self._m_queue_depth = None
        self._m_batch_size = None
        self._m_reclaim_size = None

    # ------------------------------------------------------------------
    # Strategy accessors
    # ------------------------------------------------------------------
    @property
    def combo(self) -> StrategyCombo:
        return StrategyCombo(
            ACStrategy(self.get_attribute("ac_strategy")),
            IRStrategy(self.get_attribute("ir_strategy")),
            LBStrategy(self.get_attribute("lb_strategy")),
        )

    @property
    def lb_enabled(self) -> bool:
        return self.get_attribute("lb_strategy") != "N"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_install(self, container) -> None:
        self._source = EventSourcePort(self, "decisions")
        arrive_sink = EventSinkPort(self, "task_arrive", self._on_task_arrive)
        arrive_sink.subscribe(TOPIC_TASK_ARRIVE)
        reset_sink = EventSinkPort(self, "idle_resetting", self._on_idle_reset)
        reset_sink.subscribe(TOPIC_IDLE_RESETTING)

    def provide_state_facet(self) -> Facet:
        """The facet the LB component connects to (shared ledger)."""
        if self.ledger is None:
            self._initialize_state()
        return Facet(self, "admission_state", AdmissionState(self.ledger, self.analyzer))

    def connect_locator(self, facet: Facet) -> None:
        """Wire the receptacle for 'Location' calls on the LB component."""
        self._locator.connect(facet)

    def provide_facet(self, port_name: str) -> Facet:
        if port_name == "admission_state":
            return self.provide_state_facet()
        return super().provide_facet(port_name)

    def connect_receptacle(self, port_name: str, facet: Facet) -> None:
        if port_name == "locator":
            self.connect_locator(facet)
            return
        super().connect_receptacle(port_name, facet)

    def _initialize_state(self) -> None:
        self.ledger = SyntheticUtilizationLedger(self.env.app_nodes)
        self.analyzer = AubAnalyzer(self.ledger)

    def on_activate(self) -> None:
        self.combo.validate()
        if self.lb_enabled and not self._locator.connected:
            raise ComponentError(
                f"AC {self.name!r}: lb_strategy="
                f"{self.get_attribute('lb_strategy')!r} but no LB connected"
            )
        if self.ledger is None:
            self._initialize_state()
        self._thread = self.processor.new_thread(f"{self.name}.dispatch", 0.0)
        registry = self.env.metrics_registry
        if registry is not None:
            decisions = registry.counter(
                "repro_admission_decisions_total",
                "Admission decisions by outcome.",
                ("outcome",),
            )
            self._m_decisions_accept = decisions.labels("accept")
            self._m_decisions_reject = decisions.labels("reject")
            self._m_decision_latency = registry.histogram(
                "repro_admission_decision_seconds",
                "Simulated arrival-to-decision latency per job.",
            ).labels()
            self._m_queue_depth = registry.gauge(
                "repro_admission_queue_depth",
                "High-water mark of the batched arrival queue.",
            ).labels()
            self._m_batch_size = registry.histogram(
                "repro_admission_batch_size",
                "Arrivals decided per batched admission pass.",
                buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0),
            ).labels()
            self._m_reclaim_size = registry.histogram(
                "repro_ledger_reclaim_batch_entries",
                "Ledger entries reclaimed per idle-resetting batch.",
                buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0),
            ).labels()

    # ------------------------------------------------------------------
    # Task Arrive handling
    # ------------------------------------------------------------------
    def _on_task_arrive(self, event: TaskArriveEvent) -> None:
        op = OP_LB_PLAN if self.lb_enabled else OP_ADMISSION_TEST
        cost = self.env.cost_model.sample(op, self.env.cost_rng)
        if self.get_attribute("batching"):
            # Queue the arrival; the work item that completes first drains
            # the whole queue in one batched decision pass, later ones
            # find it empty.  Every arrival still charges its own sampled
            # admission cost to the dispatch thread.
            self._arrival_queue.append(event)
            if self._m_queue_depth is not None:
                self._m_queue_depth.set(
                    max(self._m_queue_depth.value, len(self._arrival_queue))
                )
            self.processor.submit(
                self._thread,
                WorkItem(cost, self._drain_arrivals, label="admit:batch"),
            )
            return
        self.processor.submit(
            self._thread,
            WorkItem(cost, self._decide, event, label=f"admit:{event.job.task.task_id}"),
        )

    def _decide(self, event: TaskArriveEvent) -> None:
        now = self.sim.now
        triage = self._triage(event, now)
        if triage is None:
            return
        record, per_task_ac = triage
        self._admit_fresh(event, record, per_task_ac, now)

    def _triage(
        self, event: TaskArriveEvent, now: float
    ) -> Optional[Tuple[TaskRecord, bool]]:
        """Shared per-arrival triage for the sequential and batched paths:
        deadline expiry, record bookkeeping, and the per-task cached
        decision.  Returns ``None`` when the event was fully handled,
        else ``(record, per_task_ac)`` for a fresh admission test."""
        job = event.job
        task = job.task
        if job.absolute_deadline <= now:
            # Queueing at the AC (or a stale event) consumed the job's
            # whole window; releasing it could not meet the deadline.
            self._send_reject(event, "deadline expired before admission")
            return None
        record = self._records.setdefault(task.task_id, TaskRecord())
        record.jobs_seen += 1
        per_task_ac = self.get_attribute("ac_strategy") == "T" and task.is_periodic
        if per_task_ac and record.admitted is not None:
            # Cached per-task decision: no admission test, but per-job load
            # balancing may still relocate the reserved assignment.
            if not record.admitted:
                self._send_reject(event, "task rejected at first arrival")
                return None
            if self.get_attribute("lb_strategy") == "J":
                self._try_relocate_reserved(task, record)
            self._send_accept(event, record.assignment)
            return None
        return record, per_task_ac

    def _admit_fresh(
        self,
        event: TaskArriveEvent,
        record: TaskRecord,
        per_task_ac: bool,
        now: float,
    ) -> None:
        """Propose an assignment, run the admission test, publish."""
        job = event.job
        task = job.task
        assignment = self._propose_assignment(job, record, now)
        if assignment is None:
            admitted = False
        else:
            admitted = self._test_and_commit(job, assignment, per_task_ac, now)
        # The assignment dict is owned by this decision path (home/LB plans
        # are built fresh, and nothing mutates a stored plan in place), so
        # the record and the Accept event can share it without copying.
        if per_task_ac:
            record.admitted = admitted
            record.assignment = assignment if admitted else None
        if admitted:
            if self.get_attribute("lb_strategy") == "T" and task.is_periodic:
                record.assignment = assignment
            self._send_accept(event, assignment)
        else:
            self._send_reject(event, "AUB condition (1) would be violated")

    # ------------------------------------------------------------------
    # Batched arrival handling
    # ------------------------------------------------------------------
    def _drain_arrivals(self, _payload=None) -> None:
        """Decide every queued arrival in one batched admission pass."""
        events = self._arrival_queue
        if not events:
            return
        self._arrival_queue = []
        self.batch_calls += 1
        self.batched_arrivals += len(events)
        if self._m_batch_size is not None:
            self._m_batch_size.observe(float(len(events)))
        if self.lb_enabled:
            self._drain_arrivals_lb(events)
            return
        now = self.sim.now
        pending: List[Tuple[TaskArriveEvent, TaskRecord, bool]] = []
        #: Periodic tasks whose first (reserving) job is in ``pending``.
        reserving: set = set()
        deferred: List[TaskArriveEvent] = []
        for event in events:
            task = event.job.task
            if task.task_id in reserving:
                # A later job of a periodic task whose first job is being
                # decided in this very batch (AC per task): its outcome is
                # that first job's cached decision, which exists only
                # after the batch commits — defer, exactly as the
                # sequential path would have found the cache populated.
                deferred.append(event)
                continue
            triage = self._triage(event, now)
            if triage is None:
                continue
            record, per_task_ac = triage
            if per_task_ac:
                reserving.add(task.task_id)
            pending.append((event, record, per_task_ac))
        if pending:
            self._admit_batch(pending, now)
        for event in deferred:
            # The batch populated the per-task cache, so this re-enters
            # the normal sequential flow as a cache hit (or, if the first
            # job expired before deciding, as a fresh admission — the
            # same state the sequential path would see).
            self._decide(event)

    def _drain_arrivals_lb(self, events: List[TaskArriveEvent]) -> None:
        """Batched drain for load-balanced combos.

        Placements are planned and tested against one analyzer batch
        session: the session overlay stands in for the interim ledger
        commits the sequential path interleaves between arrivals, so
        plans and decisions are bit-identical to deciding each arrival
        alone.  Two cases must leave the batch to preserve sequential
        ordering — a later job of a periodic task whose first (reserving)
        job sits in the open segment, and, under AC-per-task +
        LB-per-job, a cached-accept arrival that may *relocate* the live
        reservation (a ledger mutation every later decision must
        observe).  Both flush the open segment first and then re-enter
        the sequential flow, which sees exactly the state the per-arrival
        path would have built.
        """
        now = self.sim.now
        relocating = (
            self.get_attribute("ac_strategy") == "T"
            and self.get_attribute("lb_strategy") == "J"
        )
        segment: List[Tuple[TaskArriveEvent, TaskRecord, bool]] = []
        #: Periodic tasks whose first (reserving) job is in ``segment``.
        reserving: set = set()

        def flush() -> None:
            if segment:
                self._admit_segment_lb(segment, now)
                segment.clear()
            reserving.clear()

        for event in events:
            task = event.job.task
            if task.task_id in reserving:
                flush()
                self._decide(event)
                continue
            if relocating and task.is_periodic:
                record = self._records.get(task.task_id)
                if record is not None and record.admitted:
                    # Cached accept that may relocate the reservation.
                    flush()
                    self._decide(event)
                    continue
            triage = self._triage(event, now)
            if triage is None:
                continue
            record, per_task_ac = triage
            if per_task_ac:
                reserving.add(task.task_id)
            segment.append((event, record, per_task_ac))
        flush()

    def _admit_segment_lb(
        self,
        segment: List[Tuple[TaskArriveEvent, TaskRecord, bool]],
        now: float,
    ) -> None:
        """Plan and decide one contiguous run of fresh LB admissions
        through a single analyzer batch session."""
        locator = self._locator()
        lb = self.get_attribute("lb_strategy")
        # Worst-case demand envelope: every stage of every queued arrival
        # counted on each processor it could be placed on.  Placements
        # chosen below always stay inside it (plans pick from eligible
        # sets; pinned assignments were themselves LB plans), which lets
        # the session screen out registered tasks that no placement of
        # this burst can push over the bound.
        demand: Dict[str, float] = {}
        for event, _record, _per_task_ac in segment:
            task = event.job.task
            for subtask in task.subtasks:
                value = task.subtask_utilization(subtask.index)
                for node in subtask.eligible:
                    demand[node] = demand.get(node, 0.0) + value
        session = self.analyzer.batch_session(now, demand)
        decided: List[
            Tuple[TaskArriveEvent, Optional[Dict[int, str]], bool, bool]
        ] = []
        for event, record, per_task_ac in segment:
            job = event.job
            task = job.task
            if lb == "T" and task.is_periodic and record.assignment is not None:
                # Pinned per-task placement: no Location call, just the
                # admission test (the sequential path's test-and-commit).
                assignment = record.assignment
                admitted = session.try_admit(
                    BatchCandidate(
                        task.visited_processors(assignment),
                        [
                            (
                                assignment[s.index],
                                task.subtask_utilization(s.index),
                            )
                            for s in task.subtasks
                        ],
                    )
                )
            else:
                assignment = locator.location_in_batch(job, session)
                admitted = assignment is not None
            # Records update inside the loop (not after the batch): a
            # later arrival in this very segment may depend on them — the
            # LB-per-task pin, the AC-per-task cached decision.
            if per_task_ac:
                record.admitted = admitted
                record.assignment = assignment if admitted else None
            if admitted and lb == "T" and task.is_periodic:
                record.assignment = assignment
            decided.append((event, assignment, per_task_ac, admitted))
        self._finalize_batch(decided, now)

    def _admit_batch(
        self,
        pending: List[Tuple[TaskArriveEvent, TaskRecord, bool]],
        now: float,
    ) -> None:
        """Home-assignment burst admission through ``admissible_batch``."""
        candidates: List[BatchCandidate] = []
        assignments: List[Dict[int, str]] = []
        for event, _record, _per_task_ac in pending:
            task = event.job.task
            assignment = task.home_assignment()
            assignments.append(assignment)
            candidates.append(
                BatchCandidate(
                    task.visited_processors(assignment),
                    [
                        (assignment[s.index], task.subtask_utilization(s.index))
                        for s in task.subtasks
                    ],
                )
            )
        decisions = self.analyzer.admissible_batch(candidates, now)
        decided: List[
            Tuple[TaskArriveEvent, Optional[Dict[int, str]], bool, bool]
        ] = []
        for (event, record, per_task_ac), assignment, admitted in zip(
            pending, assignments, decisions
        ):
            if per_task_ac:
                record.admitted = admitted
                record.assignment = assignment if admitted else None
            decided.append((event, assignment, per_task_ac, admitted))
        self._finalize_batch(decided, now)

    def _finalize_batch(
        self,
        decided: List[Tuple[TaskArriveEvent, Optional[Dict[int, str]], bool, bool]],
        now: float,
    ) -> None:
        """Commit and publish a batch of decisions.

        One ledger commit for the whole burst: stage contributions in
        decision order (bit-identical floats to per-arrival commits),
        one change notification per touched node — then register, expiry
        scheduling, and Accept/Reject publication per arrival.
        """
        add_entries = []
        for event, assignment, per_task_ac, admitted in decided:
            if not admitted:
                continue
            job = event.job
            task = job.task
            job_index = RESERVED if per_task_ac else job.index
            for subtask in task.subtasks:
                add_entries.append(
                    (
                        assignment[subtask.index],
                        (task.task_id, job_index, subtask.index),
                        task.subtask_utilization(subtask.index),
                    )
                )
        if add_entries:
            self.ledger.add_batch(add_entries, now)
        for event, assignment, per_task_ac, admitted in decided:
            job = event.job
            task = job.task
            if not admitted:
                self._send_reject(event, "AUB condition (1) would be violated")
                continue
            job_index = RESERVED if per_task_ac else job.index
            registry_key = (task.task_id, job_index)
            expiry = None if per_task_ac else job.absolute_deadline
            self.analyzer.register(
                registry_key, task.visited_processors(assignment), expiry
            )
            if not per_task_ac:
                self.sim.schedule_at(
                    job.absolute_deadline, self._expire_job, job, assignment
                )
            self._send_accept(event, assignment)

    def _propose_assignment(
        self, job: Job, record: TaskRecord, now: float
    ) -> Optional[Dict[int, str]]:
        """Choose the assignment plan the admission test will evaluate."""
        task = job.task
        lb = self.get_attribute("lb_strategy")
        if lb == "N":
            return task.home_assignment()
        if lb == "T" and task.is_periodic and record.assignment is not None:
            return record.assignment
        locator = self._locator()
        return locator.location(job, now)

    def _test_and_commit(
        self,
        job: Job,
        assignment: Dict[int, str],
        reserved: bool,
        now: float,
    ) -> bool:
        """Run the admission test for ``assignment``; commit if it passes."""
        task = job.task
        visits = task.visited_processors(assignment)
        contribs: Dict[str, float] = {}
        for subtask in task.subtasks:
            node = assignment[subtask.index]
            contribs[node] = contribs.get(node, 0.0) + task.subtask_utilization(
                subtask.index
            )
        if not self.analyzer.admissible(visits, contribs, now):
            return False
        job_index = RESERVED if reserved else job.index
        for subtask in task.subtasks:
            node = assignment[subtask.index]
            self.ledger.add(
                node,
                (task.task_id, job_index, subtask.index),
                task.subtask_utilization(subtask.index),
                now,
            )
        registry_key = (task.task_id, job_index)
        expiry = None if reserved else job.absolute_deadline
        self.analyzer.register(registry_key, visits, expiry)
        if not reserved:
            self.sim.schedule_at(
                job.absolute_deadline, self._expire_job, job, assignment
            )
        return True

    def _expire_job(self, job: Job, assignment: Dict[int, str]) -> None:
        """Deadline expiry: the job leaves the current task set."""
        now = self.sim.now
        task = job.task
        for subtask in task.subtasks:
            node = assignment[subtask.index]
            self.ledger.remove(node, (task.task_id, job.index, subtask.index), now)
        self.analyzer.unregister((task.task_id, job.index))

    def _try_relocate_reserved(self, task: TaskSpec, record: TaskRecord) -> None:
        """AC-per-task + LB-per-job: move the lifetime reservation if the
        LB finds a better admissible placement for this job."""
        locator = self._locator()
        now = self.sim.now
        proposed = locator.location_for_reserved(task, record.assignment, now)
        if proposed is None or proposed == record.assignment:
            return
        old = record.assignment
        for subtask in task.subtasks:
            self.ledger.remove(
                old[subtask.index], (task.task_id, RESERVED, subtask.index), now
            )
        for subtask in task.subtasks:
            self.ledger.add(
                proposed[subtask.index],
                (task.task_id, RESERVED, subtask.index),
                task.subtask_utilization(subtask.index),
                now,
            )
        self.analyzer.register(
            (task.task_id, RESERVED), task.visited_processors(proposed), None
        )
        record.assignment = proposed

    # ------------------------------------------------------------------
    # Decision publication
    # ------------------------------------------------------------------
    def _send_accept(self, event: TaskArriveEvent, assignment: Dict[int, str]) -> None:
        job = event.job
        self.admitted_jobs += 1
        if self._m_decisions_accept is not None:
            self._m_decisions_accept.inc()
            self._m_decision_latency.observe(self.sim.now - job.arrival_time)
        release_node = assignment[0]
        self.tracer.record(
            self.sim.now,
            "ac.accept",
            self.node,
            task=job.task.task_id,
            job=job.index,
            release_node=release_node,
        )
        self._source.push(
            release_node,
            accept_topic(release_node),
            AcceptEvent(
                job=job,
                # Receivers (task effectors) copy on receipt; the decision
                # path owns this dict, so no defensive copy is needed here.
                assignment=assignment,
                arrival_node=event.arrival_node,
                release_node=release_node,
            ),
        )

    def _send_reject(self, event: TaskArriveEvent, reason: str) -> None:
        job = event.job
        self.rejected_jobs += 1
        if self._m_decisions_reject is not None:
            self._m_decisions_reject.inc()
            self._m_decision_latency.observe(self.sim.now - job.arrival_time)
        self.tracer.record(
            self.sim.now,
            "ac.reject",
            self.node,
            task=job.task.task_id,
            job=job.index,
            reason=reason,
        )
        self._source.push(
            event.arrival_node,
            reject_topic(event.arrival_node),
            RejectEvent(job=job, arrival_node=event.arrival_node, reason=reason),
        )

    # ------------------------------------------------------------------
    # Idle Resetting handling
    # ------------------------------------------------------------------
    def _on_idle_reset(self, event: IdleResettingEvent) -> None:
        cost = self.env.cost_model.sample(OP_IR_UPDATE, self.env.cost_rng)
        self.env.overhead.record_ir_ac_side(cost)
        self.processor.submit(
            self._thread,
            WorkItem(cost, self._apply_idle_reset, event, label="idle_reset"),
        )

    def _apply_idle_reset(self, event: IdleResettingEvent) -> None:
        now = self.sim.now
        # One batch-remove per idle period: a single AUB cache refresh no
        # matter how many subjobs the idle processor reclaimed.
        self.idle_resets_applied += self.ledger.remove_batch(
            ((event.node, key) for key in event.entries), now
        )
        if self._m_reclaim_size is not None and event.entries:
            self._m_reclaim_size.observe(float(len(event.entries)))
        self.tracer.record(
            now, "ac.idle_reset", self.node, entries=len(event.entries)
        )

"""Decentralized admission control — the paper's sketched extension.

Paper section 3 adopts a centralized AC/LB architecture but notes:

    "In a distributed architecture the AC components on multiple
    processors may need to coordinate and synchronize with each other in
    order to make correct decisions, because admitting an end-to-end task
    may affect the schedulability of other tasks located on the multiple
    affected processors. ... our real-time component middleware approach
    can be extended to use a more distributed architecture."

This module implements that extension so the trade-off can be measured:
one :class:`DistributedAdmissionControllerComponent` per application
processor, coordinating through a two-phase reserve/commit protocol over
the federated event channel.

Correctness without global state
--------------------------------
A local AC cannot evaluate AUB condition (1) for remote tasks, so commits
convert each admitted task's residual slack into **local utilization
caps**: after admitting task T with post-admission utilizations ``U_j``
over its k visited processors, each participant j stores the cap

    cap_j(T) = f_inverse( f(U_j) + (1 - sum_i f(U_i)) / k )

and thereafter refuses any reservation that would push ``U_j`` above any
live cap.  Every admitted task's condition therefore keeps holding no
matter what other coordinators admit — at the price of conservatism
(slack is partitioned instead of shared) and of two extra network phases
per admission.  The ablation benchmark quantifies both penalties against
the paper's centralized design.

Under arrival batching (``Scenario.arrival_batching``), a coordinator
drains its queued burst into one **piggybacked** round: a single
multi-reservation transaction whose participants vote on every
reservation of the burst against one local snapshot (per-item votes,
per-reservation locks/expiry/abort).  A burst then costs one two-phase
round instead of one per reservation, with decisions bit-identical to
the one-round-per-reservation path (property-tested).

Scope: this extension prototype supports AC-per-job with no idle
resetting and no load balancing (home assignments), the configuration
where the admission mathematics dominates.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import sanitize
from repro.ccm.component import AttributeSpec, Component
from repro.ccm.events import (
    AcceptEvent,
    RejectEvent,
    TOPIC_TASK_ARRIVE,
    TaskArriveEvent,
    accept_topic,
    reject_topic,
)
from repro.ccm.ports import EventSinkPort, EventSourcePort
from repro.core.cost_model import OP_ADMISSION_TEST
from repro.core.runtime import RuntimeEnv
from repro.cpu.thread import WorkItem
from repro.errors import ComponentError
from repro.sched.aub import EPSILON, aub_term, aub_term_inverse
from repro.sched.task import Job

#: Topics of the two-phase coordination protocol.
TOPIC_RESERVE = "dac_reserve"
TOPIC_VOTE = "dac_vote"
TOPIC_COMMIT = "dac_commit"
TOPIC_ABORT = "dac_abort"
#: Piggybacked (multi-reservation) variants: one message per participant
#: per *round* instead of per reservation (arrival batching only).
TOPIC_RESERVE_BATCH = "dac_reserve_batch"
TOPIC_VOTE_BATCH = "dac_vote_batch"
TOPIC_COMMIT_BATCH = "dac_commit_batch"


@dataclass(frozen=True)
class ReserveRequest:
    """Phase 1: coordinator asks a participant to lock utilization."""

    txn: int
    coordinator: str
    job_key: Tuple[str, int]
    delta: float
    expiry: float


@dataclass(frozen=True)
class Vote:
    """Participant's reply: locked (with post-lock utilization) or refused."""

    txn: int
    node: str
    granted: bool
    post_utilization: float = 0.0


@dataclass(frozen=True)
class Outcome:
    """Phase 2: commit (with this participant's cap) or abort."""

    txn: int
    job_key: Tuple[str, int]
    commit: bool
    cap: float = 1.0
    expiry: float = 0.0


@dataclass(frozen=True)
class ReserveItem:
    """One reservation inside a piggybacked multi-reservation round."""

    index: int
    job_key: Tuple[str, int]
    delta: float
    expiry: float


@dataclass(frozen=True)
class BatchReserveRequest:
    """Phase 1 of a piggybacked round: every reservation of the burst
    that involves this participant, in burst order."""

    txn: int
    coordinator: str
    items: Tuple[ReserveItem, ...]


@dataclass(frozen=True)
class BatchVote:
    """Participant reply: one grant (with post-lock utilization) per
    item, aligned with the request's ``items``."""

    txn: int
    node: str
    granted: Tuple[bool, ...]
    post_utilization: Tuple[float, ...]


@dataclass(frozen=True)
class BatchOutcome:
    """Phase 2 of a piggybacked round: per-reservation commit/abort
    outcomes for this participant, aligned with its request ``items``."""

    txn: int
    items: Tuple[Outcome, ...]


@dataclass
class _Transaction:
    """Coordinator-side state of one in-flight admission."""

    job: Job
    event: TaskArriveEvent
    participants: List[str]
    deltas: Dict[str, float]
    votes: Dict[str, Vote] = field(default_factory=dict)
    #: Vote-timeout event handle (chaos runs only; None when disarmed).
    timeout_handle: Optional[object] = None
    #: Reserve rounds already retried after a vote timeout.
    attempt: int = 0
    #: Simulated time the round's reserves went out (observability).
    started: float = 0.0


@dataclass
class _BatchItem:
    """One burst arrival inside a coordinator's piggybacked round."""

    job: Job
    event: TaskArriveEvent
    participants: List[str]
    deltas: Dict[str, float]


@dataclass
class _BatchTransaction:
    """Coordinator-side state of one in-flight piggybacked round."""

    items: List[_BatchItem]
    participants: List[str]
    #: participant -> the burst indices sent to it, in burst order.
    sent: Dict[str, List[int]]
    votes: Dict[str, BatchVote] = field(default_factory=dict)
    #: Vote-timeout event handle (chaos runs only; None when disarmed).
    timeout_handle: Optional[object] = None
    #: Reserve rounds already retried after a vote timeout.
    attempt: int = 0
    #: Simulated time the round's reserves went out (observability).
    started: float = 0.0


class DistributedAdmissionControllerComponent(Component):
    """Per-processor admission controller with two-phase coordination."""

    ATTRIBUTES = {
        "processor_id": AttributeSpec(
            str, required=True, doc="Application processor this AC guards."
        ),
        "batching": AttributeSpec(
            bool,
            default=False,
            doc="Drain queued simultaneous arrivals in one dispatch pass "
            "and piggyback them onto a single multi-reservation "
            "coordination round: participants vote on the whole burst "
            "against one local snapshot (per-item votes, per-reservation "
            "expiry/abort), so a burst costs one two-phase round instead "
            "of one per reservation.",
        ),
        "vote_timeout": AttributeSpec(
            float,
            default=0.25,
            doc="Seconds a coordinator waits for the round's votes before "
            "retrying the missing participants (exponential backoff) and "
            "ultimately aborting.  Timeouts are armed only while the "
            "network carries an armed fault injector — on fault-free "
            "runs every vote arrives and the protocol is byte-for-byte "
            "the original.  <= 0 disables timeouts even under faults.",
        ),
        "max_retries": AttributeSpec(
            int,
            default=2,
            doc="Reserve retries per transaction after the first vote "
            "timeout; the round aborts (releasing every granted "
            "reservation) when they are exhausted.",
        ),
    }

    _txn_counter = itertools.count(1)

    def __init__(self, name: str, env: RuntimeEnv) -> None:
        super().__init__(name)
        self.env = env
        #: Arrivals awaiting a batched coordination pass (batching only).
        self._arrival_queue: List[TaskArriveEvent] = []
        #: Live local contributions: job key -> utilization on this node.
        self._contribs: Dict[Tuple[str, int], float] = {}
        #: Pending phase-1 locks: txn (scalar rounds) or (txn, job key)
        #: (piggybacked rounds) -> locked utilization.
        self._locks: Dict[object, float] = {}
        #: Running committed + locked total, maintained incrementally so
        #: the hot admission path never re-sums the contribution maps.
        self._total: float = 0.0
        #: Live caps from committed tasks: job key -> max allowed U here.
        self._caps: Dict[Tuple[str, int], float] = {}
        #: (cap, job key) min-heap over ``_caps`` with lazy invalidation:
        #: the binding (smallest) cap is read in O(1) amortized instead of
        #: scanning every live cap per reservation.
        self._cap_heap: List[Tuple[float, Tuple[str, int]]] = []
        self._transactions: Dict[int, _Transaction] = {}
        self._batch_transactions: Dict[int, _BatchTransaction] = {}
        self._source: Optional[EventSourcePort] = None
        self._thread = None
        self.admitted_jobs = 0
        self.rejected_jobs = 0
        self.reserve_messages = 0
        #: Two-phase rounds initiated: one per transaction on the scalar
        #: path, one per drained burst on the piggybacked path.
        self.coordination_rounds = 0
        self.batch_calls = 0
        self.batched_arrivals = 0
        # -- fault tolerance (active only under an armed fault injector) --
        #: Recorded granted votes per txn, resent verbatim on duplicate
        #: reserves so a retry after a lost vote never double-locks.
        self._granted_votes: Dict[int, object] = {}
        #: Expiry-backstop event handles for phase-1 locks, keyed like
        #: ``_locks``; cancelled when the round's outcome arrives.
        self._lock_expiry: Dict[object, object] = {}
        #: Fail-silent crash flag (see :meth:`crash`/:meth:`recover`).
        self._crashed = False
        self.vote_timeouts = 0
        self.retries_sent = 0
        self.aborted_transactions = 0
        self.crash_count = 0
        self.recovery_count = 0
        # Re-read from attributes at activation.
        self._vote_timeout = 0.25
        self._max_retries = 2
        # Pre-bound metric children (armed runs only; see on_activate).
        self._m_decisions_accept = None
        self._m_decisions_reject = None
        self._m_decision_latency = None
        self._m_round_trip = None
        #: Unsharded mirror of committed contributions, cross-checked by
        #: :meth:`verify_ledger` (REPRO_SANITIZE=1 only).
        self._shadow: Optional[sanitize.LedgerShadow] = (
            sanitize.LedgerShadow() if sanitize.enabled() else None
        )

    # ------------------------------------------------------------------
    # Local utilization view
    # ------------------------------------------------------------------
    @property
    def utilization(self) -> float:
        """Committed + locked synthetic utilization on this processor."""
        return self._total

    def _min_live_cap(self) -> float:
        heap = self._cap_heap
        while heap:
            cap, key = heap[0]
            if self._caps.get(key) == cap:
                return cap
            heapq.heappop(heap)
        return math.inf

    def _locally_admissible(self, delta: float) -> bool:
        projected = self._total + delta
        if projected >= 1.0 - EPSILON:
            return False
        return projected <= self._min_live_cap() + EPSILON

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_install(self, container) -> None:
        self._source = EventSourcePort(self, "coordination")
        EventSinkPort(self, "task_arrive", self._on_task_arrive).subscribe(
            TOPIC_TASK_ARRIVE
        )
        EventSinkPort(self, "reserve", self._on_reserve).subscribe(TOPIC_RESERVE)
        EventSinkPort(self, "vote", self._on_vote).subscribe(TOPIC_VOTE)
        EventSinkPort(self, "outcome", self._on_outcome).subscribe(TOPIC_COMMIT)
        EventSinkPort(self, "reserve_batch", self._on_batch_reserve).subscribe(
            TOPIC_RESERVE_BATCH
        )
        EventSinkPort(self, "vote_batch", self._on_batch_vote).subscribe(
            TOPIC_VOTE_BATCH
        )
        EventSinkPort(self, "outcome_batch", self._on_batch_outcome).subscribe(
            TOPIC_COMMIT_BATCH
        )

    def on_activate(self) -> None:
        if self.get_attribute("processor_id") != self.node:
            raise ComponentError(
                f"distributed AC {self.name!r}: processor_id mismatch"
            )
        self._thread = self.processor.new_thread(f"{self.name}.dispatch", 0.0)
        self._vote_timeout = float(self.get_attribute("vote_timeout"))
        self._max_retries = int(self.get_attribute("max_retries"))
        registry = self.env.metrics_registry
        if registry is not None:
            decisions = registry.counter(
                "repro_admission_decisions_total",
                "Admission decisions by outcome.",
                ("outcome",),
            )
            self._m_decisions_accept = decisions.labels("accept")
            self._m_decisions_reject = decisions.labels("reject")
            self._m_decision_latency = registry.histogram(
                "repro_admission_decision_seconds",
                "Simulated arrival-to-decision latency per job.",
            ).labels()
            self._m_round_trip = registry.histogram(
                "repro_vote_round_trip_seconds",
                "Reserve-to-last-vote round-trip time per coordination "
                "round, labeled by coordinator node.",
                ("node",),
            ).labels(self.node)

    # ------------------------------------------------------------------
    # Fault tolerance
    # ------------------------------------------------------------------
    def _chaos_armed(self) -> bool:
        """True when the network carries an armed fault injector.

        Vote timeouts, retries and lock-expiry backstops arm only then:
        on a fault-free network every vote and outcome arrives, so the
        recovery machinery would only schedule events it always cancels.
        The injector's window set is fixed before the run starts, so this
        is constant for a whole run and both modes are deterministic.
        """
        if self._vote_timeout <= 0:
            return False
        injector = self.env.network.fault_injector
        return injector is not None and injector.armed

    @property
    def crashed(self) -> bool:
        return self._crashed

    def crash(self) -> None:
        """Fail-silent crash: resolve and quarantine all local AC state.

        The network layer already suppresses this node's messages during
        its crash window; this method handles the admission bookkeeping.
        Every in-flight transaction this node coordinates aborts — the
        arrival-node TE holding each job is local, so the reject is pure
        local accounting, keeping arrival conservation intact.  Remote
        participants' locks for those rounds are freed by their expiry
        backstops.  The participant-side ledger shard (locks,
        contributions, caps) is quarantined: cleared now, so a recovered
        node re-admits from an empty shard.  Subtasks of already-released
        jobs keep executing — the fault model crashes the coordination
        layer, not the CPU (cf. docs/CHAOS.md).
        """
        if self._crashed:
            return
        self._crashed = True
        self.crash_count += 1
        for txn in sorted(self._transactions):
            transaction = self._transactions[txn]
            self._cancel_vote_timeout(transaction)
            self.aborted_transactions += 1
            self._reject(transaction.event, "coordinator crashed")
        self._transactions.clear()
        for txn in sorted(self._batch_transactions):
            transaction = self._batch_transactions[txn]
            self._cancel_vote_timeout(transaction)
            self.aborted_transactions += 1
            for item in transaction.items:
                self._reject(item.event, "coordinator crashed")
        self._batch_transactions.clear()
        for event in self._arrival_queue:
            self._reject(event, "node crashed")
        self._arrival_queue = []
        for key in list(self._lock_expiry):
            self._cancel_lock_expiry(key)
        self._locks.clear()
        self._granted_votes.clear()
        if self._shadow is not None:
            for key in self._contribs:
                self._shadow.remove(self.node, key)
        self._contribs.clear()
        self._caps.clear()
        self._cap_heap.clear()
        self._total = 0.0

    def recover(self) -> None:
        """Re-admit a crashed node with an empty ledger shard."""
        if not self._crashed:
            return
        self._crashed = False
        self.recovery_count += 1

    def verify_ledger(self) -> None:
        """Cross-check the incremental ledger bookkeeping from scratch.

        Recomputes the running total from the live locks and
        contributions (the chaos suite's no-leak invariant) and, under
        ``REPRO_SANITIZE=1``, verifies the contribution map against the
        unsharded :class:`~repro.sanitize.LedgerShadow` mirror.
        """
        committed = math.fsum(self._contribs.values()) if self._contribs else 0.0
        if self._shadow is not None:
            self._shadow.verify_shard(self.node, self._contribs, committed)
        locked = math.fsum(self._locks.values()) if self._locks else 0.0
        drift = abs(self._total - (locked + committed))
        if drift > sanitize.TOTAL_DRIFT_TOLERANCE:
            raise sanitize.SanitizeViolation(
                f"distributed AC {self.node!r}: running total "
                f"{self._total!r} drifted {drift!r} from the recomputed "
                f"locked+committed sum {locked + committed!r}"
            )

    def _arm_vote_timeout(self, txn: int, attempt: int, batch: bool):
        """Schedule the vote-timeout event for one round (chaos only)."""
        if not self._chaos_armed():
            return None
        callback = self._on_batch_vote_timeout if batch else self._on_vote_timeout
        return self.sim.schedule(
            self._vote_timeout * (2.0 ** attempt), callback, txn
        )

    @staticmethod
    def _cancel_vote_timeout(transaction) -> None:
        if transaction.timeout_handle is not None:
            transaction.timeout_handle.cancel()
            transaction.timeout_handle = None

    def _arm_lock_expiry(self, key: object, expiry: float) -> None:
        """Backstop: free an orphaned phase-1 lock at its job's deadline.

        Armed only under chaos; cancelled when the round's outcome
        arrives.  If the coordinator crashed (or its abort was lost),
        the lock — and the vote recorded for resends — are released
        here, so no reservation outlives the job it was for.
        """
        if not self._chaos_armed():
            return
        self._lock_expiry[key] = self.sim.schedule_at(
            max(self.sim.now, expiry), self._expire_lock, key
        )

    def _cancel_lock_expiry(self, key: object) -> None:
        handle = self._lock_expiry.pop(key, None)
        if handle is not None:
            handle.cancel()

    def _expire_lock(self, key: object) -> None:
        self._lock_expiry.pop(key, None)
        locked = self._locks.pop(key, None)
        if locked is None:
            return
        self._total -= locked
        if not self._locks and not self._contribs:
            self._total = 0.0
        # The recorded vote claims this lock; a later duplicate reserve
        # must re-evaluate instead of resending it.
        txn = key[0] if isinstance(key, tuple) else key
        self._granted_votes.pop(txn, None)

    # ------------------------------------------------------------------
    # Coordinator role
    # ------------------------------------------------------------------
    def _on_task_arrive(self, event: TaskArriveEvent) -> None:
        if self._crashed:
            # A crashed node admits nothing; reject immediately (local
            # accounting — the TE holding the job is on this node) so
            # every arrival still resolves exactly once.
            self._reject(event, "node crashed")
            return
        cost = self.env.cost_model.sample(OP_ADMISSION_TEST, self.env.cost_rng)
        if self.get_attribute("batching"):
            # Queue the arrival; the first work item to complete drains
            # every queued arrival in one pass (each still pays its own
            # sampled admission cost on the dispatch thread).
            self._arrival_queue.append(event)
            self.processor.submit(
                self._thread, WorkItem(cost, self._drain_arrivals)
            )
            return
        self.processor.submit(
            self._thread, WorkItem(cost, self._coordinate, event)
        )

    def _drain_arrivals(self, _payload=None) -> None:
        """Pack the queued burst into one piggybacked coordination round.

        One multi-reservation transaction replaces one two-phase round
        per reservation: each participant receives a single
        :class:`BatchReserveRequest` carrying every reservation of the
        burst that involves it (in burst order) and votes on the batch
        against one local snapshot.  Per-reservation semantics —
        expiry, abort, caps — are unchanged; decisions are bit-identical
        to running one round per reservation, because the sequential
        rounds' reserve requests all land before any outcome returns (so
        each vote already sees the locks of the reservations ahead of
        it, exactly as the packed vote loop does).
        """
        events = self._arrival_queue
        if not events or self._crashed:
            # crash() already rejected and flushed the queue.
            return
        self._arrival_queue = []
        self.batch_calls += 1
        self.batched_arrivals += len(events)
        now = self.sim.now
        items: List[_BatchItem] = []
        for event in events:
            job = event.job
            if job.absolute_deadline <= now:
                self._reject(event, "deadline expired before admission")
                continue
            task = job.task
            assignment = task.home_assignment()
            deltas: Dict[str, float] = {}
            for subtask in task.subtasks:
                node = assignment[subtask.index]
                deltas[node] = deltas.get(node, 0.0) + task.subtask_utilization(
                    subtask.index
                )
            items.append(
                _BatchItem(
                    job=job,
                    event=event,
                    participants=sorted(deltas),
                    deltas=deltas,
                )
            )
        if not items:
            return
        txn = next(self._txn_counter)
        sent: Dict[str, List[int]] = {}
        for index, item in enumerate(items):
            for node in item.participants:
                sent.setdefault(node, []).append(index)
        participants = sorted(sent)
        transaction = _BatchTransaction(
            items=items, participants=participants, sent=sent, started=now
        )
        self._batch_transactions[txn] = transaction
        self.coordination_rounds += 1
        # Armed before the reserves go out: local participants vote
        # synchronously during the push loop and may complete (and
        # cancel) the round before the loop ends.
        transaction.timeout_handle = self._arm_vote_timeout(txn, 0, batch=True)
        for node in participants:
            request = BatchReserveRequest(
                txn=txn,
                coordinator=self.node,
                items=tuple(
                    ReserveItem(
                        index=i,
                        job_key=items[i].job.key,
                        delta=items[i].deltas[node],
                        expiry=items[i].job.absolute_deadline,
                    )
                    for i in sent[node]
                ),
            )
            self.reserve_messages += 1
            self._source.push(node, TOPIC_RESERVE_BATCH, request)

    def _coordinate(self, event: TaskArriveEvent) -> None:
        if self._crashed:
            # The node crashed while the admission cost elapsed.
            self._reject(event, "node crashed")
            return
        job = event.job
        task = job.task
        now = self.sim.now
        if job.absolute_deadline <= now:
            self._reject(event, "deadline expired before admission")
            return
        assignment = task.home_assignment()
        deltas: Dict[str, float] = {}
        for subtask in task.subtasks:
            node = assignment[subtask.index]
            deltas[node] = deltas.get(node, 0.0) + task.subtask_utilization(
                subtask.index
            )
        txn = next(self._txn_counter)
        transaction = _Transaction(
            job=job,
            event=event,
            participants=sorted(deltas),
            deltas=deltas,
            started=now,
        )
        self._transactions[txn] = transaction
        self.coordination_rounds += 1
        # Armed before the reserves go out (see _drain_arrivals).
        transaction.timeout_handle = self._arm_vote_timeout(txn, 0, batch=False)
        for node in transaction.participants:
            request = ReserveRequest(
                txn=txn,
                coordinator=self.node,
                job_key=job.key,
                delta=deltas[node],
                expiry=job.absolute_deadline,
            )
            self.reserve_messages += 1
            self._source.push(node, TOPIC_RESERVE, request)

    def _on_vote(self, vote: Vote) -> None:
        if self._crashed:
            return
        transaction = self._transactions.get(vote.txn)
        if transaction is None:
            return
        transaction.votes[vote.node] = vote
        if len(transaction.votes) < len(transaction.participants):
            return
        self._cancel_vote_timeout(transaction)
        del self._transactions[vote.txn]
        self._finish_transaction(vote.txn, transaction)

    def _on_vote_timeout(self, txn: int) -> None:
        """The scalar round ``txn`` is missing votes past the deadline."""
        transaction = self._transactions.get(txn)
        if transaction is None:
            return
        self.vote_timeouts += 1
        transaction.timeout_handle = None
        if transaction.attempt < self._max_retries:
            transaction.attempt += 1
            job = transaction.job
            for node in transaction.participants:
                if node in transaction.votes:
                    continue
                # Participants memoize granted votes, so a duplicate
                # reserve is answered idempotently (no double-lock).
                self.retries_sent += 1
                self.reserve_messages += 1
                self._source.push(
                    node,
                    TOPIC_RESERVE,
                    ReserveRequest(
                        txn=txn,
                        coordinator=self.node,
                        job_key=job.key,
                        delta=transaction.deltas[node],
                        expiry=job.absolute_deadline,
                    ),
                )
            transaction.timeout_handle = self._arm_vote_timeout(
                txn, transaction.attempt, batch=False
            )
            return
        # Out of retries: abort, releasing every granted reservation.
        # Participants whose vote was lost in flight still hold a lock,
        # so the abort goes to every participant (a participant that
        # never locked ignores it); a lost abort is backstopped by the
        # participant's lock expiry.
        del self._transactions[txn]
        self.aborted_transactions += 1
        for node in transaction.participants:
            self._source.push(
                node,
                TOPIC_COMMIT,
                Outcome(txn=txn, job_key=transaction.job.key, commit=False),
            )
        self._reject(transaction.event, "coordination timed out")

    def _finish_transaction(self, txn: int, transaction: _Transaction) -> None:
        if self._m_round_trip is not None:
            self._m_round_trip.observe(self.sim.now - transaction.started)
        votes = transaction.votes
        all_granted = all(v.granted for v in votes.values())
        condition_sum = 0.0
        job = transaction.job
        assignment = job.task.home_assignment()
        # Retried rounds can outlast the job's deadline; committing then
        # would pair an instantly-expiring reservation with a released
        # job.  Chaos-gated: without faults a round always completes in
        # a few network hops, well inside any deadline.
        expired = (
            transaction.attempt > 0 or self._chaos_armed()
        ) and job.absolute_deadline <= self.sim.now
        if all_granted and not expired:
            task = job.task
            post = {node: votes[node].post_utilization for node in votes}
            condition_sum = sum(
                aub_term(post[assignment[s.index]]) for s in task.subtasks
            )
            all_granted = condition_sum <= 1.0 + EPSILON
        if not all_granted or expired:
            for node in transaction.participants:
                self._source.push(
                    node,
                    TOPIC_COMMIT,
                    Outcome(txn=txn, job_key=transaction.job.key, commit=False),
                )
            self._reject(
                transaction.event,
                "deadline expired during coordination"
                if expired
                else "reserve phase refused",
            )
            return
        # Partition the residual slack equally among visited processors
        # and convert each share into a local utilization cap.
        k = len(transaction.participants)
        slack_share = (1.0 - condition_sum) / k
        for node in transaction.participants:
            post_u = transaction.votes[node].post_utilization
            cap = aub_term_inverse(aub_term(post_u) + max(0.0, slack_share))
            self._source.push(
                node,
                TOPIC_COMMIT,
                Outcome(
                    txn=txn,
                    job_key=transaction.job.key,
                    commit=True,
                    cap=cap,
                    expiry=transaction.job.absolute_deadline,
                ),
            )
        self.admitted_jobs += 1
        if self._m_decisions_accept is not None:
            self._m_decisions_accept.inc()
            self._m_decision_latency.observe(self.sim.now - job.arrival_time)
        release_node = assignment[0]
        self._source.push(
            release_node,
            accept_topic(release_node),
            AcceptEvent(
                job=job,
                assignment=assignment,
                arrival_node=transaction.event.arrival_node,
                release_node=release_node,
            ),
        )

    def _on_batch_vote(self, vote: BatchVote) -> None:
        if self._crashed:
            return
        transaction = self._batch_transactions.get(vote.txn)
        if transaction is None:
            return
        transaction.votes[vote.node] = vote
        if len(transaction.votes) < len(transaction.participants):
            return
        self._cancel_vote_timeout(transaction)
        del self._batch_transactions[vote.txn]
        self._finish_batch_transaction(vote.txn, transaction)

    def _on_batch_vote_timeout(self, txn: int) -> None:
        """The piggybacked round ``txn`` is missing votes past the
        deadline; same retry/abort ladder as the scalar rounds."""
        transaction = self._batch_transactions.get(txn)
        if transaction is None:
            return
        self.vote_timeouts += 1
        transaction.timeout_handle = None
        if transaction.attempt < self._max_retries:
            transaction.attempt += 1
            items = transaction.items
            for node in transaction.participants:
                if node in transaction.votes:
                    continue
                self.retries_sent += 1
                self.reserve_messages += 1
                self._source.push(
                    node,
                    TOPIC_RESERVE_BATCH,
                    BatchReserveRequest(
                        txn=txn,
                        coordinator=self.node,
                        items=tuple(
                            ReserveItem(
                                index=i,
                                job_key=items[i].job.key,
                                delta=items[i].deltas[node],
                                expiry=items[i].job.absolute_deadline,
                            )
                            for i in transaction.sent[node]
                        ),
                    ),
                )
            transaction.timeout_handle = self._arm_vote_timeout(
                txn, transaction.attempt, batch=True
            )
            return
        del self._batch_transactions[txn]
        self.aborted_transactions += 1
        for node in transaction.participants:
            self._source.push(
                node,
                TOPIC_COMMIT_BATCH,
                BatchOutcome(
                    txn=txn,
                    items=tuple(
                        Outcome(
                            txn=txn,
                            job_key=transaction.items[i].job.key,
                            commit=False,
                        )
                        for i in transaction.sent[node]
                    ),
                ),
            )
        for item in transaction.items:
            self._reject(item.event, "coordination timed out")

    def _finish_batch_transaction(
        self, txn: int, transaction: _BatchTransaction
    ) -> None:
        """Decide every reservation of the round in burst order; the math
        per item is the scalar :meth:`_finish_transaction` verbatim."""
        if self._m_round_trip is not None:
            self._m_round_trip.observe(self.sim.now - transaction.started)
        n_items = len(transaction.items)
        # Re-key the per-participant vote vectors by burst index.
        grants: List[Dict[str, bool]] = [{} for _ in range(n_items)]
        posts: List[Dict[str, float]] = [{} for _ in range(n_items)]
        for node, vote in transaction.votes.items():
            for pos, index in enumerate(transaction.sent[node]):
                grants[index][node] = vote.granted[pos]
                posts[index][node] = vote.post_utilization[pos]
        outcomes: Dict[str, List[Outcome]] = {
            node: [] for node in transaction.participants
        }
        # See _finish_transaction: retried rounds can outlast deadlines.
        check_expiry = transaction.attempt > 0 or self._chaos_armed()
        for index, item in enumerate(transaction.items):
            job = item.job
            task = job.task
            assignment = task.home_assignment()
            all_granted = all(
                grants[index].get(node, False) for node in item.participants
            )
            expired = check_expiry and job.absolute_deadline <= self.sim.now
            condition_sum = 0.0
            if all_granted and not expired:
                post = posts[index]
                condition_sum = sum(
                    aub_term(post[assignment[s.index]]) for s in task.subtasks
                )
                all_granted = condition_sum <= 1.0 + EPSILON
            if not all_granted or expired:
                for node in item.participants:
                    outcomes[node].append(
                        Outcome(txn=txn, job_key=job.key, commit=False)
                    )
                self._reject(
                    item.event,
                    "deadline expired during coordination"
                    if expired
                    else "reserve phase refused",
                )
                continue
            # Partition the residual slack equally among visited
            # processors, exactly as the scalar round does.
            k = len(item.participants)
            slack_share = (1.0 - condition_sum) / k
            for node in item.participants:
                post_u = posts[index][node]
                cap = aub_term_inverse(aub_term(post_u) + max(0.0, slack_share))
                outcomes[node].append(
                    Outcome(
                        txn=txn,
                        job_key=job.key,
                        commit=True,
                        cap=cap,
                        expiry=job.absolute_deadline,
                    )
                )
            self.admitted_jobs += 1
            if self._m_decisions_accept is not None:
                self._m_decisions_accept.inc()
                self._m_decision_latency.observe(self.sim.now - job.arrival_time)
            release_node = assignment[0]
            self._source.push(
                release_node,
                accept_topic(release_node),
                AcceptEvent(
                    job=job,
                    assignment=assignment,
                    arrival_node=item.event.arrival_node,
                    release_node=release_node,
                ),
            )
        for node in transaction.participants:
            self._source.push(
                node,
                TOPIC_COMMIT_BATCH,
                BatchOutcome(txn=txn, items=tuple(outcomes[node])),
            )

    def _reject(self, event: TaskArriveEvent, reason: str) -> None:
        self.rejected_jobs += 1
        if self._m_decisions_reject is not None:
            self._m_decisions_reject.inc()
            self._m_decision_latency.observe(self.sim.now - event.job.arrival_time)
        self._source.push(
            event.arrival_node,
            reject_topic(event.arrival_node),
            RejectEvent(
                job=event.job, arrival_node=event.arrival_node, reason=reason
            ),
        )

    # ------------------------------------------------------------------
    # Participant role
    # ------------------------------------------------------------------
    def _on_reserve(self, request: ReserveRequest) -> None:
        if self._crashed:
            return
        cost = self.env.cost_model.sample(OP_ADMISSION_TEST, self.env.cost_rng)
        self.processor.submit(
            self._thread, WorkItem(cost, self._vote_on, request)
        )

    def _vote_on(self, request: ReserveRequest) -> None:
        if self._crashed:
            # Crashed mid-admission-cost; the coordinator's timeout
            # (or our lock expiry, had we locked earlier) recovers.
            return
        recorded = self._granted_votes.get(request.txn)
        if recorded is not None:
            # Duplicate reserve: our granted vote was lost in flight.
            # Resend it verbatim — the lock is already held, so
            # re-evaluating would double-count the delta.
            self._source.push(request.coordinator, TOPIC_VOTE, recorded)
            return
        granted = self._locally_admissible(request.delta)
        if granted:
            self._locks[request.txn] = request.delta
            self._total += request.delta
            self._arm_lock_expiry(request.txn, request.expiry)
        vote = Vote(
            txn=request.txn,
            node=self.node,
            granted=granted,
            post_utilization=self.utilization if granted else 0.0,
        )
        if granted:
            self._granted_votes[request.txn] = vote
        self._source.push(request.coordinator, TOPIC_VOTE, vote)

    def _on_batch_reserve(self, request: BatchReserveRequest) -> None:
        if self._crashed:
            return
        # One admission-test cost per reservation, as the scalar rounds
        # charge — piggybacking saves messages, not admission math.
        cost = sum(
            self.env.cost_model.sample(OP_ADMISSION_TEST, self.env.cost_rng)
            for _ in request.items
        )
        self.processor.submit(
            self._thread, WorkItem(cost, self._vote_on_batch, request)
        )

    def _vote_on_batch(self, request: BatchReserveRequest) -> None:
        """Per-item votes against one local snapshot: each granted item's
        lock is visible to the items after it, exactly as the sequential
        one-round-per-reservation path (whose reserve requests all land
        before any outcome returns) evaluates them."""
        if self._crashed:
            return
        recorded = self._granted_votes.get(request.txn)
        if recorded is not None:
            # Duplicate reserve after a lost vote: resend verbatim (the
            # granted items' locks are already held).
            self._source.push(request.coordinator, TOPIC_VOTE_BATCH, recorded)
            return
        granted: List[bool] = []
        post: List[float] = []
        for item in request.items:
            key = (request.txn, item.job_key)
            if key in self._locks:
                # Held from an earlier attempt whose recorded vote was
                # dropped when a sibling item's lock expired: grant
                # without re-locking.
                granted.append(True)
                post.append(self.utilization)
                continue
            ok = self._locally_admissible(item.delta)
            if ok:
                self._locks[key] = item.delta
                self._total += item.delta
                self._arm_lock_expiry(key, item.expiry)
            granted.append(ok)
            post.append(self.utilization if ok else 0.0)
        vote = BatchVote(
            txn=request.txn,
            node=self.node,
            granted=tuple(granted),
            post_utilization=tuple(post),
        )
        if any(granted):
            self._granted_votes[request.txn] = vote
        self._source.push(request.coordinator, TOPIC_VOTE_BATCH, vote)

    def _on_outcome(self, outcome: Outcome) -> None:
        if self._crashed:
            return
        self._granted_votes.pop(outcome.txn, None)
        locked = self._locks.pop(outcome.txn, None)
        if locked is None:
            return
        self._cancel_lock_expiry(outcome.txn)
        self._apply_outcome(outcome, locked)

    def _on_batch_outcome(self, batch: BatchOutcome) -> None:
        if self._crashed:
            return
        self._granted_votes.pop(batch.txn, None)
        for outcome in batch.items:
            key = (batch.txn, outcome.job_key)
            locked = self._locks.pop(key, None)
            if locked is None:
                continue
            self._cancel_lock_expiry(key)
            self._apply_outcome(outcome, locked)

    def _apply_outcome(self, outcome: Outcome, locked: float) -> None:
        if not outcome.commit:
            self._total -= locked
            if not self._locks and not self._contribs:
                self._total = 0.0
            return
        # The lock's share simply changes bucket (locked -> committed), so
        # the running total is unchanged.
        value = self._contribs.get(outcome.job_key, 0.0) + locked
        self._contribs[outcome.job_key] = value
        if self._shadow is not None:
            self._shadow.add(self.node, outcome.job_key, value)
        previous_cap = self._caps.get(outcome.job_key)
        cap = outcome.cap if previous_cap is None else min(previous_cap, outcome.cap)
        self._caps[outcome.job_key] = cap
        heapq.heappush(self._cap_heap, (cap, outcome.job_key))
        self.sim.schedule_at(
            max(self.sim.now, outcome.expiry), self._expire, outcome.job_key
        )

    def _expire(self, job_key: Tuple[str, int]) -> None:
        value = self._contribs.pop(job_key, None)
        if value is not None:
            if self._shadow is not None:
                self._shadow.remove(self.node, job_key)
            self._total -= value
            if not self._locks and not self._contribs:
                # Snap to exactly zero so float residue cannot accumulate
                # across commit/expire cycles (mirrors the central ledger).
                self._total = 0.0
        self._caps.pop(job_key, None)


class DistributedMiddlewareSystem:
    """A deployment using per-processor admission controllers.

    Reuses the :class:`~repro.core.middleware.MiddlewareSystem` substrate
    (processors, network, TEs, subtask components) but replaces the
    central AC/LB pair with one distributed AC per application processor.
    Fixed configuration: AC per job, no idle resetting, no load balancing
    (see module docstring).
    """

    def __init__(self, workload, seed: int = 0, cost_model=None,
                 delay_model=None, aperiodic_interarrival_factor: float = 2.0,
                 arrival_batching: bool = False, vote_timeout: float = 0.25,
                 max_retries: int = 2, metrics_registry=None):
        from repro.core.middleware import MiddlewareSystem
        from repro.core.strategies import StrategyCombo

        self._base = MiddlewareSystem(
            workload,
            StrategyCombo.from_label("J_N_N"),
            cost_model=cost_model,
            seed=seed,
            delay_model=delay_model,
            aperiodic_interarrival_factor=aperiodic_interarrival_factor,
            auto_deploy=False,
            metrics_registry=metrics_registry,
        )
        self.metrics_registry = metrics_registry
        env = self._base.env
        containers = self._base.containers
        # Task effectors pointed at their local controllers.
        for node in workload.app_nodes:
            te_name = f"TE-{node}"
            from repro.core.task_effector import TaskEffectorComponent

            te = TaskEffectorComponent(te_name, env)
            te.set_configuration(
                {
                    "processor_id": node,
                    "release_mode": "per_job",
                    "ac_node": node,
                }
            )
            containers[node].install(te)
        self.acs: Dict[str, DistributedAdmissionControllerComponent] = {}
        for node in workload.app_nodes:
            ac = DistributedAdmissionControllerComponent(f"DAC-{node}", env)
            ac.set_configuration(
                {
                    "processor_id": node,
                    "batching": arrival_batching,
                    "vote_timeout": vote_timeout,
                    "max_retries": max_retries,
                }
            )
            containers[node].install(ac)
            self.acs[node] = ac
        self._deploy_subtasks(workload, env, containers)
        for container in containers.values():
            container.activate_all()
        self.env = env
        self.sim = self._base.sim
        self.metrics = self._base.metrics
        self.network = self._base.network
        self.rngs = self._base.rngs
        self.workload = workload
        self._vote_timeout = vote_timeout
        self._max_retries = max_retries

    # ------------------------------------------------------------------
    # Chaos hooks (see repro.net.fault and docs/CHAOS.md)
    # ------------------------------------------------------------------
    def install_fault_injector(self, injector) -> None:
        """Install the fault injector consulted on every remote send."""
        self.network.install_fault_injector(injector)

    def crash_node(self, node: str) -> None:
        """Fail-silent crash of ``node``'s admission controller now."""
        self.acs[node].crash()

    def recover_node(self, node: str) -> None:
        """Re-admit ``node`` (empty ledger shard) after a crash."""
        self.acs[node].recover()

    def _deploy_subtasks(self, workload, env, containers) -> None:
        from repro.core.subtask import FISubtaskComponent, LastSubtaskComponent
        from repro.sched.edms import edms_priority

        for task in workload.tasks:
            priority = edms_priority(task)
            last_index = task.n_subtasks - 1
            for subtask in task.subtasks:
                cls = (
                    LastSubtaskComponent
                    if subtask.index == last_index
                    else FISubtaskComponent
                )
                # Home placement only (no LB in this extension).
                component = cls(f"{task.task_id}.s{subtask.index}@{subtask.home}", env)
                component.set_configuration(
                    {
                        "task_id": task.task_id,
                        "subtask_index": subtask.index,
                        "execution_time": subtask.execution_time,
                        "priority": priority,
                        "ir_mode": "N",
                    }
                )
                containers[subtask.home].install(component)

    def run(self, duration: float, drain: bool = True):
        """Run the workload; returns the base SystemResults but with the
        distributed controllers' state summarized."""
        from repro.workloads.arrivals import build_arrival_plan

        plan = build_arrival_plan(
            self.workload,
            duration,
            self._base.rngs.stream("arrivals"),
            self._base.aperiodic_interarrival_factor,
        )
        arrived = self._base.schedule_arrivals(plan)
        injector = self.network.fault_injector
        chaos = injector is not None and injector.armed
        end = duration
        if drain:
            end += max(t.deadline for t in self.workload.tasks)
            if chaos and self._vote_timeout > 0:
                # A transaction started just before `duration` can climb
                # the whole retry/backoff ladder before aborting; give
                # timed-out rounds room to resolve inside the drain so
                # every arrival still ends accepted or rejected.
                end += self._vote_timeout * (2.0 ** (self._max_retries + 1))
        self.sim.run(until=end)
        if sanitize.enabled():
            for node in sorted(self.acs):
                self.acs[node].verify_ledger()
        fault_metrics = injector.metrics if injector is not None else None
        if self.metrics_registry is not None:
            self._publish_final_metrics()
        return DistributedRunResults(
            duration=end,
            metrics=self.metrics,
            arrived_jobs=arrived,
            admitted_jobs=sum(ac.admitted_jobs for ac in self.acs.values()),
            rejected_jobs=sum(ac.rejected_jobs for ac in self.acs.values()),
            reserve_messages=sum(ac.reserve_messages for ac in self.acs.values()),
            coordination_rounds=sum(
                ac.coordination_rounds for ac in self.acs.values()
            ),
            messages_sent=self.network.messages_sent,
            final_utilization={n: ac.utilization for n, ac in self.acs.items()},
            messages_dropped=(
                fault_metrics.messages_dropped if fault_metrics else 0
            ),
            messages_delay_spiked=(
                fault_metrics.messages_delay_spiked if fault_metrics else 0
            ),
            vote_timeouts=sum(ac.vote_timeouts for ac in self.acs.values()),
            retries_sent=sum(ac.retries_sent for ac in self.acs.values()),
            transactions_aborted=sum(
                ac.aborted_transactions for ac in self.acs.values()
            ),
        )

    def _publish_final_metrics(self) -> None:
        """Aggregate coordination counters and final shard levels, one
        series per coordinator node.  Only reached when armed."""
        registry = self.metrics_registry
        counters = (
            ("repro_coordination_rounds_total",
             "Two-phase coordination rounds initiated.",
             lambda ac: ac.coordination_rounds),
            ("repro_reserve_messages_total",
             "Reserve requests sent (initial sends plus retries).",
             lambda ac: ac.reserve_messages),
            ("repro_vote_timeouts_total",
             "Coordination rounds that hit a vote timeout.",
             lambda ac: ac.vote_timeouts),
            ("repro_vote_retries_total",
             "Reserve retries sent after vote timeouts.",
             lambda ac: ac.retries_sent),
            ("repro_transactions_aborted_total",
             "Coordination rounds aborted after exhausting retries.",
             lambda ac: ac.aborted_transactions),
        )
        for name, help_text, getter in counters:
            family = registry.counter(name, help_text, ("node",))
            for node in sorted(self.acs):
                family.labels(node).inc(getter(self.acs[node]))
        shard = registry.gauge(
            "repro_ledger_shard_utilization",
            "Final synthetic utilization per ledger shard (node).",
            ("node",),
        )
        for node in sorted(self.acs):
            shard.labels(node).set(self.acs[node].utilization)


@dataclass
class DistributedRunResults:
    """Results of one distributed-AC run."""

    duration: float
    metrics: object
    arrived_jobs: int
    admitted_jobs: int
    rejected_jobs: int
    reserve_messages: int
    messages_sent: int
    final_utilization: Dict[str, float]
    #: Two-phase rounds initiated across all coordinators (piggybacked
    #: rounds count once per burst, not once per reservation).
    coordination_rounds: int = 0
    #: Chaos layer: remote sends suppressed / delay-stretched by the
    #: fault injector (zero on fault-free runs).
    messages_dropped: int = 0
    messages_delay_spiked: int = 0
    #: Fault-tolerance activity: vote timeouts fired, reserve retries
    #: sent, and transactions aborted (timeout or coordinator crash).
    vote_timeouts: int = 0
    retries_sent: int = 0
    transactions_aborted: int = 0

    @property
    def accepted_utilization_ratio(self) -> float:
        return self.metrics.accepted_utilization_ratio

    @property
    def deadline_misses(self) -> int:
        return self.metrics.latency.deadline_misses

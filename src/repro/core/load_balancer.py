"""Load Balancing (LB) component.

One LB instance runs on the task-manager processor next to the AC.  It
receives "Location" method calls (facet/receptacle) from the AC and
returns an assignment plan that balances synthetic utilization: each
subtask goes to the eligible processor (home or replica, criterion C3)
with the lowest synthetic utilization at decision time — the paper's
heuristic.  When accepting a new task only that task's assignment is
decided; already-admitted tasks are never moved (paper section 4.4),
except that under AC-per-task + LB-per-job the reservation of the *same*
task may be relocated when one of its jobs arrives.

The LB shares the AC's live ledger/analyzer through the
``admission_state`` facet, so its plans are admissible exactly when the
AC's subsequent bookkeeping says they are.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.ccm.component import AttributeSpec, Component
from repro.ccm.ports import Facet, Receptacle
from repro.core.runtime import RuntimeEnv
from repro.errors import ComponentError
from repro.sched.aub import RESERVED, BatchAdmissionSession, BatchCandidate
from repro.sched.task import Job, TaskSpec


class LoadBalancerComponent(Component):
    """Lowest-synthetic-utilization placement over replicated components."""

    ATTRIBUTES = {
        "strategy": AttributeSpec(
            str,
            default="T",
            validator=lambda v: v in ("N", "T", "J"),
            doc="Mirror of the deployment's LB strategy (informational; the "
            "AC component drives when Location calls happen).",
        ),
    }

    def __init__(self, name: str, env: RuntimeEnv) -> None:
        super().__init__(name)
        self.env = env
        self._state = Receptacle(self, "admission_state")
        self.location_calls = 0
        self.plans_returned = 0
        self.reallocations_proposed = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def provide_location_facet(self) -> Facet:
        """The facet the AC's ``locator`` receptacle connects to."""
        return Facet(self, "location", self)

    def connect_admission_state(self, facet: Facet) -> None:
        self._state.connect(facet)

    def provide_facet(self, port_name: str) -> Facet:
        if port_name == "location":
            return self.provide_location_facet()
        return super().provide_facet(port_name)

    def connect_receptacle(self, port_name: str, facet: Facet) -> None:
        if port_name == "admission_state":
            self.connect_admission_state(facet)
            return
        super().connect_receptacle(port_name, facet)

    def on_activate(self) -> None:
        if not self._state.connected:
            raise ComponentError(
                f"LB {self.name!r}: admission_state receptacle not connected"
            )

    # ------------------------------------------------------------------
    # Location interface (called synchronously by the AC)
    # ------------------------------------------------------------------
    def location(self, job: Job, now: float) -> Optional[Dict[int, str]]:
        """Propose an admissible assignment for ``job``, or None.

        Greedy heuristic: stage by stage, pick the eligible processor with
        the lowest synthetic utilization (counting utilization this plan
        has already placed), then verify the AUB condition for the whole
        system under the plan.
        """
        self.location_calls += 1
        state = self._state()
        task = job.task
        assignment, contribs = self._greedy_plan(task, state.ledger)
        visits = task.visited_processors(assignment)
        if not state.analyzer.admissible(visits, contribs, now):
            return None
        self.plans_returned += 1
        return assignment

    def location_in_batch(
        self, job: Job, session: BatchAdmissionSession
    ) -> Optional[Dict[int, str]]:
        """Batch counterpart of :meth:`location` for a drained burst.

        Plans against the session's overlay view — the live ledger plus
        every placement this burst has already accepted — so the greedy
        scores see exactly the utilizations the sequential path's interim
        ledger commits would have produced.  The plan is tested once
        through the session (the sequential path tests it twice, in
        ``location()`` and again in the AC's test-and-commit, but under
        an unchanged ledger both tests agree, so decisions stay
        bit-identical) and committed into the overlay on success.
        Returns the admissible assignment, or None.
        """
        self.location_calls += 1
        task = job.task
        assignment, _added = self._greedy_plan(task, session)
        candidate = BatchCandidate(
            task.visited_processors(assignment),
            [
                (assignment[s.index], task.subtask_utilization(s.index))
                for s in task.subtasks
            ],
        )
        if not session.try_admit(candidate):
            return None
        self.plans_returned += 1
        return assignment

    def location_for_reserved(
        self, task: TaskSpec, current: Dict[int, str], now: float
    ) -> Optional[Dict[int, str]]:
        """Propose moving an already-reserved task's assignment.

        Used for AC-per-task + LB-per-job.  Returns an admissible new
        assignment evaluated as a *delta* against the existing reservation
        (contributions move between processors), or None when no
        admissible improvement exists.
        """
        self.location_calls += 1
        state = self._state()
        assignment, delta = self._greedy_plan(
            task, state.ledger, discount=current
        )
        if assignment == current:
            return None
        # The plan's contribution map is owned by this call, so the move
        # deltas (new placement minus current reservation) fold in place.
        for subtask in task.subtasks:
            node = current[subtask.index]
            delta[node] = delta.get(node, 0.0) - task.subtask_utilization(
                subtask.index
            )
        visits = task.visited_processors(assignment)
        if not state.analyzer.admissible(
            visits, delta, now, exclude=(task.task_id, RESERVED)
        ):
            return None
        self.reallocations_proposed += 1
        return assignment

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _greedy_plan(
        self,
        task: TaskSpec,
        ledger,
        discount: Optional[Dict[int, str]] = None,
    ):
        """Stage-by-stage lowest-utilization placement.

        ``ledger`` is any utilization source exposing ``utilization(node)``
        — the live ledger on the sequential path, a
        :class:`~repro.sched.aub.BatchAdmissionSession` (ledger plus
        batch overlay) on the batched path.  ``discount`` maps subtask
        index -> node currently holding that subtask's reservation; the
        reservation's utilization is subtracted when scoring that node so
        a relocation decision is not biased against keeping the current
        placement.
        """
        assignment: Dict[int, str] = {}
        added: Dict[str, float] = {}
        for subtask in task.subtasks:
            u = task.subtask_utilization(subtask.index)
            current = None if discount is None else discount.get(subtask.index)
            best = None
            best_score = None
            for node in subtask.eligible:
                base = ledger.utilization(node) + added.get(node, 0.0)
                if node == current:
                    base -= u
                score = (base, node)
                if best is None or score < best_score:
                    best = node
                    best_score = score
            assignment[subtask.index] = best
            added[best] = added.get(best, 0.0) + u
        return assignment, added

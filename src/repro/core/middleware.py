"""MiddlewareSystem: assemble and run a complete distributed deployment.

This facade builds the paper's Figure 1 architecture for a given workload
and strategy combination: a task-manager processor hosting the AC and LB
components, application processors each hosting a TE and an IR component,
and one F/I or Last Subtask component per (task, stage, eligible
processor).  It then drives the workload's arrival plan through the task
effectors and collects results.

It is the runtime substrate that both the declarative ``repro.api``
surface and the DAnCE-lite deployment pipeline target.  Direct
construction (``MiddlewareSystem(workload, combo, ...)``) is retained as
a deprecated back-compat path: new code should build a
:class:`repro.api.Scenario` and run it through
:class:`repro.api.Session`, which validates the full parameter set,
serializes to JSON, and returns a typed
:class:`~repro.api.session.RunResult` instead of the loosely-shaped
:class:`SystemResults`.  See ``docs/API.md`` for the migration table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.ccm.container import Container
from repro.core.admission_controller import AdmissionControllerComponent
from repro.core.cost_model import CostModel
from repro.core.idle_resetter import IdleResetterComponent
from repro.core.load_balancer import LoadBalancerComponent
from repro.core.runtime import RuntimeEnv
from repro.core.strategies import ACStrategy, LBStrategy, StrategyCombo
from repro.core.subtask import FISubtaskComponent, LastSubtaskComponent
from repro.core.task_effector import TaskEffectorComponent
from repro.cpu.processor import Processor
from repro.errors import ConfigurationError
from repro.metrics.overhead import OverheadAccounting
from repro.metrics.ratio import MetricsCollector
from repro.metrics.registry import MetricsRegistry
from repro.net.federation import FederatedEventChannel
from repro.net.latency import DelayModel
from repro.net.network import Network
from repro.sched.edms import edms_priority
from repro.sched.task import Job, TaskSpec
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.tracing import Tracer
from repro.workloads.arrivals import ArrivalPlan, build_arrival_plan
from repro.workloads.model import Workload


@dataclass
class SystemResults:
    """Everything an experiment needs from one completed run."""

    combo_label: str
    duration: float
    metrics: MetricsCollector
    overhead: OverheadAccounting
    cpu_utilization: Dict[str, float]
    final_synthetic_utilization: Dict[str, float]
    events_executed: int
    messages_sent: int
    arrived_jobs: int

    @property
    def accepted_utilization_ratio(self) -> float:
        return self.metrics.accepted_utilization_ratio

    @property
    def deadline_misses(self) -> int:
        return self.metrics.latency.deadline_misses


class MiddlewareSystem:
    """A fully wired middleware deployment over a simulated testbed."""

    def __init__(
        self,
        workload: Workload,
        combo: StrategyCombo,
        cost_model: Optional[CostModel] = None,
        seed: int = 0,
        trace: bool = False,
        delay_model: Optional[DelayModel] = None,
        aperiodic_interarrival_factor: float = 2.0,
        auto_deploy: bool = True,
        arrival_batching: bool = False,
        metrics_registry: Optional[MetricsRegistry] = None,
    ) -> None:
        combo.validate()
        self.workload = workload
        self.combo = combo
        self.cost_model = cost_model or CostModel()
        self.aperiodic_interarrival_factor = aperiodic_interarrival_factor
        #: Batched hot path: simultaneous arrivals are delivered to the
        #: task effectors as one kernel batch, and the AC drains its
        #: arrival queue through admissible_batch (home placement) or a
        #: batch placement session (load-balanced combos).
        self.arrival_batching = arrival_batching
        self.sim = Simulator()
        self.rngs = RngRegistry(seed)
        self.tracer = Tracer(enabled=trace)
        self.network = Network(self.sim, self.rngs.stream("network"), delay_model)
        self.federation = FederatedEventChannel(self.network)
        self.metrics = MetricsCollector()
        self.overhead = OverheadAccounting()
        #: Observability registry (None = unarmed; see docs/OBSERVABILITY.md).
        self.metrics_registry = metrics_registry
        self.processors: Dict[str, Processor] = {}
        self.containers: Dict[str, Container] = {}

        self.env = RuntimeEnv(
            sim=self.sim,
            network=self.network,
            federation=self.federation,
            combo=combo,
            cost_model=self.cost_model,
            rngs=self.rngs,
            metrics=self.metrics,
            overhead=self.overhead,
            tracer=self.tracer,
            manager_node=workload.manager_node,
            app_nodes=list(workload.app_nodes),
            metrics_registry=metrics_registry,
            tasks={t.task_id: t for t in workload.tasks},
        )
        self._build_infrastructure()
        self.ac: Optional[AdmissionControllerComponent] = None
        self.lb: Optional[LoadBalancerComponent] = None
        if auto_deploy:
            self._deploy_services()
            self._deploy_application()
            self._activate()
        self._ran = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_infrastructure(self) -> None:
        for node in (self.workload.manager_node,) + tuple(self.workload.app_nodes):
            processor = Processor(self.sim, node)
            self.processors[node] = processor
            self.federation.add_node(node)
            self.containers[node] = Container(processor, self.federation, self.tracer)

    def _deploy_services(self) -> None:
        manager = self.containers[self.workload.manager_node]
        self.ac = AdmissionControllerComponent("Central-AC", self.env)
        self.ac.set_configuration(  # type: ignore[union-attr]
            {
                "ac_strategy": self.combo.ac.value,
                "ir_strategy": self.combo.ir.value,
                "lb_strategy": self.combo.lb.value,
                "batching": self.arrival_batching,
            }
        )
        manager.install(self.ac)
        if self.combo.lb is not LBStrategy.NONE:
            self.lb = LoadBalancerComponent("Central-LB", self.env)
            self.lb.set_configuration({"strategy": self.combo.lb.value})
            manager.install(self.lb)
            self.lb.connect_admission_state(self.ac.provide_state_facet())
            self.ac.connect_locator(self.lb.provide_location_facet())

        # The TE holds every job for an AC round trip unless both the
        # admission decision and the placement are fixed per task.
        if (
            self.combo.ac is ACStrategy.PER_TASK
            and self.combo.lb is not LBStrategy.PER_JOB
        ):
            release_mode = "per_task"
        else:
            release_mode = "per_job"

        for node in self.workload.app_nodes:
            container = self.containers[node]
            te = TaskEffectorComponent(f"TE-{node}", self.env)
            te.set_configuration(
                {"processor_id": node, "release_mode": release_mode}
            )
            container.install(te)
            ir = IdleResetterComponent(f"IR-{node}", self.env)
            ir.set_configuration(
                {"processor_id": node, "strategy": self.combo.ir.value}
            )
            container.install(ir)

    def _deploy_application(self) -> None:
        ir_facets = {
            node: self.containers[node].lookup(f"IR-{node}").provide_complete_facet()
            for node in self.workload.app_nodes
        }
        for task in self.workload.tasks:
            priority = edms_priority(task)
            last_index = task.n_subtasks - 1
            for subtask in task.subtasks:
                cls = (
                    LastSubtaskComponent
                    if subtask.index == last_index
                    else FISubtaskComponent
                )
                for node in subtask.eligible:
                    name = f"{task.task_id}.s{subtask.index}@{node}"
                    component = cls(name, self.env)
                    component.set_configuration(
                        {
                            "task_id": task.task_id,
                            "subtask_index": subtask.index,
                            "execution_time": subtask.execution_time,
                            "priority": priority,
                            "ir_mode": self.combo.ir.value,
                        }
                    )
                    self.containers[node].install(component)
                    component.connect_ir(ir_facets[node])

    def _activate(self) -> None:
        for container in self.containers.values():
            container.activate_all()

    def finish_deployment(self) -> None:
        """Activate all containers after an external (DAnCE-lite) deployment
        populated them; requires an AC component to have been installed."""
        if self.ac is None:
            raise ConfigurationError(
                "finish_deployment: no admission controller was installed"
            )
        self._activate()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def schedule_arrivals(self, plan: ArrivalPlan) -> int:
        """Schedule every arrival in ``plan``; returns the job count.

        With ``arrival_batching`` the kernel coalesces same-timestamp
        arrivals into one batched delivery, so a wave of simultaneous
        releases reaches the task effectors (and, downstream, the AC's
        batched admission queue) as a single burst.
        """
        count = 0
        if self.arrival_batching:
            for arrival_time, task_id, job_index in plan.events():
                task = self.env.tasks[task_id]
                self.sim.schedule_batch(
                    arrival_time,
                    self._arrive_batch,
                    (task, job_index, arrival_time),
                )
                count += 1
            return count
        for arrival_time, task_id, job_index in plan.events():
            task = self.env.tasks[task_id]
            self.sim.schedule_at(
                arrival_time, self._arrive, task, job_index, arrival_time
            )
            count += 1
        return count

    def _arrive(self, task: TaskSpec, job_index: int, arrival_time: float) -> None:
        arrival_node = task.subtasks[0].home
        job = Job(
            task=task,
            index=job_index,
            arrival_time=arrival_time,
            arrival_node=arrival_node,
        )
        self.env.task_effectors[arrival_node].task_arrived(job)

    def _arrive_batch(self, payloads) -> None:
        """Batched kernel delivery: one call per burst of simultaneous
        arrivals (payloads are ``(task, job_index, arrival_time)``)."""
        for task, job_index, arrival_time in payloads:
            self._arrive(task, job_index, arrival_time)

    def run(self, duration: float, drain: bool = True) -> SystemResults:
        """Generate arrivals over ``duration`` seconds and run the system.

        With ``drain=True`` the simulation continues past the arrival
        horizon by the longest task deadline, so late-arriving jobs can
        complete and their contributions expire.
        """
        if self._ran:
            raise ConfigurationError("this system instance already ran")
        self._ran = True
        plan = build_arrival_plan(
            self.workload,
            duration,
            self.rngs.stream("arrivals"),
            self.aperiodic_interarrival_factor,
        )
        arrived = self.schedule_arrivals(plan)
        end = duration
        if drain:
            end += max(t.deadline for t in self.workload.tasks)
        self.sim.run(until=end)
        return self._results(end, arrived)

    def run_plan(self, plan: ArrivalPlan, drain: bool = True) -> SystemResults:
        """Run a pre-built arrival plan (for paired strategy comparisons
        on identical traces)."""
        if self._ran:
            raise ConfigurationError("this system instance already ran")
        self._ran = True
        arrived = self.schedule_arrivals(plan)
        end = plan.horizon
        if drain:
            end += max(t.deadline for t in self.workload.tasks)
        self.sim.run(until=end)
        return self._results(end, arrived)

    def _results(self, end: float, arrived: int) -> SystemResults:
        # Under REPRO_SANITIZE=1 the registry proxies every stream; a
        # run may not end with a draw some component took behind them.
        self.env.audit_rngs()
        if self.metrics_registry is not None:
            self._publish_final_metrics(end)
        return SystemResults(
            combo_label=self.combo.label,
            duration=end,
            metrics=self.metrics,
            overhead=self.overhead,
            cpu_utilization={
                node: proc.utilization(end)
                for node, proc in self.processors.items()
            },
            final_synthetic_utilization=self.ac.ledger.snapshot(),
            events_executed=self.sim.events_executed,
            messages_sent=self.network.messages_sent,
            arrived_jobs=arrived,
        )

    def _publish_final_metrics(self, end: float) -> None:
        """End-of-run levels: shard utilization, CPU utilization, kernel
        and network volume.  Only reached when the run is armed."""
        registry = self.metrics_registry
        assert registry is not None and self.ac is not None
        shard = registry.gauge(
            "repro_ledger_shard_utilization",
            "Final synthetic utilization per ledger shard (node).",
            ("node",),
        )
        for node, utilization in sorted(self.ac.ledger.snapshot().items()):
            shard.labels(node).set(utilization)
        entries = registry.gauge(
            "repro_ledger_shard_entries",
            "Live contribution entries per ledger shard (node).",
            ("node",),
        )
        for node in sorted(self.ac.ledger.nodes):
            entries.labels(node).set(self.ac.ledger.contribution_count(node))
        if self.ac.analyzer is not None:
            registry.counter(
                "repro_admission_tests_total",
                "AUB admission tests evaluated by the analyzer.",
            ).labels().inc(self.ac.analyzer.tests_performed)
            registry.counter(
                "repro_analyzer_batch_sessions_total",
                "Burst-admission sessions opened by the analyzer.",
            ).labels().inc(self.ac.analyzer.batch_sessions)
        cpu = registry.gauge(
            "repro_cpu_utilization",
            "Busy fraction of each simulated processor over the run.",
            ("node",),
        )
        for node in sorted(self.processors):
            cpu.labels(node).set(self.processors[node].utilization(end))
        registry.counter(
            "repro_kernel_events_total", "Simulation kernel events executed."
        ).labels().inc(self.sim.events_executed)
        registry.counter(
            "repro_network_messages_total", "Messages sent over the simulated network."
        ).labels().inc(self.network.messages_sent)

"""First/Intermediate (F/I) and Last Subtask components.

Each deployed instance executes one subtask of one end-to-end task on one
processor (original or duplicate), on a dispatching thread at a fixed
priority (the task's end-to-end deadline — EDMS).  The F/I component has
an extra "Trigger" event source that initiates the next subtask; the Last
Subtask component instead records job completion.  Both call the local IR
component's "Complete" facet when a subjob finishes.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.ccm.component import AttributeSpec, Component
from repro.ccm.events import TriggerEvent, trigger_topic
from repro.ccm.ports import EventSinkPort, EventSourcePort, Facet, Receptacle
from repro.core.runtime import RuntimeEnv
from repro.cpu.thread import WorkItem
from repro.errors import ComponentError
from repro.sched.task import Job, JobStatus


class _SubtaskComponentBase(Component):
    """Shared machinery of the F/I and Last Subtask components."""

    ATTRIBUTES = {
        "task_id": AttributeSpec(str, required=True, doc="Owning end-to-end task."),
        "subtask_index": AttributeSpec(
            int, required=True, validator=lambda v: v >= 0,
            doc="Stage position in the task chain.",
        ),
        "execution_time": AttributeSpec(
            float, required=True, validator=lambda v: v > 0,
            doc="Worst-case execution time of one subjob, seconds.",
        ),
        "priority": AttributeSpec(
            float, required=True,
            doc="Dispatch priority; EDMS uses the end-to-end deadline "
            "(smaller = more urgent).",
        ),
        "ir_mode": AttributeSpec(
            str,
            default="N",
            validator=lambda v: v in ("N", "T", "J"),
            doc="No-IR / IR-per-task / IR-per-job: whether completions are "
            "reported to the local Idle Resetting component.",
        ),
    }

    #: Subclasses set: does this component trigger a successor stage?
    IS_LAST = False

    def __init__(self, name: str, env: RuntimeEnv) -> None:
        super().__init__(name)
        self.env = env
        self._thread = None
        self._complete_port = Receptacle(self, "ir_complete")
        self.subjobs_executed = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def connect_ir(self, facet: Facet) -> None:
        """Wire the receptacle for Complete calls on the local IR."""
        self._complete_port.connect(facet)

    def connect_receptacle(self, port_name: str, facet: Facet) -> None:
        if port_name == "ir_complete":
            self.connect_ir(facet)
            return
        super().connect_receptacle(port_name, facet)

    def on_activate(self) -> None:
        task_id = self.get_attribute("task_id")
        index = self.get_attribute("subtask_index")
        self._thread = self.processor.new_thread(
            f"{self.name}.dispatch", self.get_attribute("priority")
        )
        if index > 0:
            sink = EventSinkPort(self, "trigger_in", self._on_trigger)
            sink.subscribe(trigger_topic(task_id, index))
        self.env.subtask_instances[(task_id, index, self.node)] = self

    # ------------------------------------------------------------------
    # Subjob execution
    # ------------------------------------------------------------------
    def release(self, job: Job, assignment: Dict[int, str]) -> None:
        """Dispatch one subjob of ``job`` on this component's thread."""
        index = self.get_attribute("subtask_index")
        if assignment.get(index) != self.node:
            raise ComponentError(
                f"{self.name!r}: job {job.key} assigned stage {index} to "
                f"{assignment.get(index)!r}, not this node {self.node!r}"
            )
        cost = self.get_attribute("execution_time")
        self.processor.submit(
            self._thread,
            WorkItem(
                cost,
                self._subjob_finished,
                payload=(job, assignment),
                label=f"{self.name}.subjob",
            ),
        )

    def _on_trigger(self, event: TriggerEvent) -> None:
        self.release(event.job, event.assignment)

    def _subjob_finished(self, payload) -> None:
        job, assignment = payload
        now = self.sim.now
        index = self.get_attribute("subtask_index")
        job.subjob_finish_times[index] = now
        self.subjobs_executed += 1
        self.tracer.record(
            now,
            "subtask.complete",
            self.node,
            task=job.task.task_id,
            job=job.index,
            stage=index,
        )
        if self._complete_port.connected and self.get_attribute("ir_mode") != "N":
            self._complete_port().complete(job, index)
        self._after_subjob(job, assignment, index)

    def _after_subjob(self, job: Job, assignment: Dict[int, str], index: int) -> None:
        raise NotImplementedError


class FISubtaskComponent(_SubtaskComponentBase):
    """First or intermediate stage: publishes a Trigger to the successor."""

    IS_LAST = False

    def __init__(self, name: str, env: RuntimeEnv) -> None:
        super().__init__(name, env)
        self._trigger_out: Optional[EventSourcePort] = None

    def on_install(self, container) -> None:
        self._trigger_out = EventSourcePort(self, "trigger_out")

    def _after_subjob(self, job: Job, assignment: Dict[int, str], index: int) -> None:
        next_index = index + 1
        next_node = assignment[next_index]
        self._trigger_out.push(
            next_node,
            trigger_topic(job.task.task_id, next_index),
            TriggerEvent(job=job, next_index=next_index, assignment=assignment),
        )


class LastSubtaskComponent(_SubtaskComponentBase):
    """Final stage: records end-to-end job completion (no Trigger port)."""

    IS_LAST = True

    def _after_subjob(self, job: Job, assignment: Dict[int, str], index: int) -> None:
        job.status = JobStatus.COMPLETED
        job.completed_at = self.sim.now
        self.env.metrics.on_completion(job)
        self.tracer.record(
            self.sim.now,
            "job.complete",
            self.node,
            task=job.task.task_id,
            job=job.index,
            response=job.response_time,
        )

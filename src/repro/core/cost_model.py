"""Service operation cost model (paper Figures 7 and 8).

The paper attributes the end-to-end service delay to eight numbered
operations (Figure 7):

1. hold the task, push event (TE)
2. communication delay (network; see :mod:`repro.net.latency`)
3. generate acceptable deployment plan (LB)
4. apply the admission test (AC)
5. release the task (TE, same processor)
6. release the duplicate task (TE, re-allocated processor)
7. report completed subtask (IR, idle-time work)
8. update synthetic utilization (AC side of IR)

Default costs are calibrated so the decomposition sums reproduce the
paper's Figure 8 means on their 2.5 GHz KURT-Linux testbed:

====================================  ===========================  =====
Path                                  Decomposition                mean
====================================  ===========================  =====
AC without LB                         1 + 2 + 4 + 2 + 5            1114
AC with LB (no re-allocation)         1 + 2 + 3 + 2 + 5            1116
AC with LB (re-allocation)            1 + 2 + 3 + 2 + 6            1201
IR (on AC side)                       8                              17
IR (other part)                       7 + 2                         662
Communication delay                   2                             322
====================================  ===========================  =====

(all microseconds; with the default mean communication delay of 322 us the
operation costs below solve the system exactly: 150 + 322 + 200 + 322 +
120 = 1114, etc.)

Per-sample jitter is triangular with a configurable relative half-width so
the measured maxima land near the paper's max column.  ``CostModel.zero()``
yields an overhead-free model for pure-theory experiments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict

from repro.errors import ConfigurationError
from repro.sim.kernel import USEC

#: Operation names, usable as trace categories.
OP_HOLD_AND_PUSH = "hold_and_push"        # (1)
OP_LB_PLAN = "lb_plan"                    # (3)
OP_ADMISSION_TEST = "admission_test"      # (4)
OP_RELEASE = "release"                    # (5)
OP_RELEASE_DUPLICATE = "release_duplicate"  # (6)
OP_IR_REPORT = "ir_report"                # (7)
OP_IR_UPDATE = "ir_update"                # (8)

_OPERATIONS = (
    OP_HOLD_AND_PUSH,
    OP_LB_PLAN,
    OP_ADMISSION_TEST,
    OP_RELEASE,
    OP_RELEASE_DUPLICATE,
    OP_IR_REPORT,
    OP_IR_UPDATE,
)


@dataclass(frozen=True)
class CostModel:
    """Mean costs (seconds) of the numbered service operations."""

    hold_and_push: float = 150 * USEC
    lb_plan: float = 202 * USEC
    admission_test: float = 200 * USEC
    release: float = 120 * USEC
    release_duplicate: float = 205 * USEC
    ir_report: float = 340 * USEC
    ir_update: float = 17 * USEC
    #: Relative half-width of the per-sample triangular jitter; 0 disables.
    jitter: float = 0.08

    def __post_init__(self) -> None:
        for name in _OPERATIONS:
            value = getattr(self, name)
            if value < 0:
                raise ConfigurationError(f"cost {name} must be >= 0, got {value}")
        if not 0 <= self.jitter < 1:
            raise ConfigurationError(
                f"jitter must be in [0, 1), got {self.jitter}"
            )

    def mean(self, operation: str) -> float:
        """The mean cost of ``operation`` (one of the OP_* names)."""
        if operation not in _OPERATIONS:
            raise ConfigurationError(f"unknown operation {operation!r}")
        return getattr(self, operation)

    def sample(self, operation: str, rng: random.Random) -> float:
        """Draw one jittered cost sample for ``operation``."""
        mean = self.mean(operation)
        if self.jitter == 0 or mean == 0:
            return mean
        return rng.triangular(
            mean * (1.0 - self.jitter), mean * (1.0 + self.jitter), mean
        )

    def as_dict(self) -> Dict[str, float]:
        return {name: getattr(self, name) for name in _OPERATIONS}

    @classmethod
    def zero(cls) -> "CostModel":
        """An overhead-free model: all service operations cost nothing.

        Useful for pure admission-theory experiments where middleware
        overhead would only blur the analysis.
        """
        return cls(
            hold_and_push=0.0,
            lb_plan=0.0,
            admission_test=0.0,
            release=0.0,
            release_duplicate=0.0,
            ir_report=0.0,
            ir_update=0.0,
            jitter=0.0,
        )

    def scaled(self, factor: float) -> "CostModel":
        """A copy with every operation cost multiplied by ``factor``
        (models faster/slower task-manager hardware)."""
        if factor < 0:
            raise ConfigurationError(f"scale factor must be >= 0, got {factor}")
        return replace(
            self,
            **{name: getattr(self, name) * factor for name in _OPERATIONS},
        )

"""Task Effector (TE) component.

One TE instance runs on each application processor (paper Figure 1).  When
a task arrives, the TE puts it into a waiting queue and pushes a "Task
Arrive" event to the AC component; the job is held until an "Accept" event
releases it (or a "Reject" discards it).

The ``release_mode`` attribute is the paper's Per-job/Per-task attribute:
under ``per_task``, once a periodic task has been admitted (and its
assignment fixed), subsequent jobs are released immediately on arrival
without consulting the AC.  The middleware builder sets ``per_task``
exactly when the admission controller runs per task *and* load balancing
is not per job — with per-job load balancing every job still travels
through the AC so the LB can reconsider its placement.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.ccm.component import AttributeSpec, Component
from repro.ccm.events import (
    AcceptEvent,
    RejectEvent,
    TOPIC_TASK_ARRIVE,
    TaskArriveEvent,
    accept_topic,
    reject_topic,
)
from repro.ccm.ports import EventSinkPort, EventSourcePort
from repro.core.cost_model import (
    OP_HOLD_AND_PUSH,
    OP_RELEASE,
    OP_RELEASE_DUPLICATE,
)
from repro.core.runtime import RuntimeEnv
from repro.core.strategies import LBStrategy
from repro.errors import ComponentError
from repro.sched.task import Job, JobStatus


class TaskEffectorComponent(Component):
    """Holds arriving jobs until the admission controller decides."""

    ATTRIBUTES = {
        "processor_id": AttributeSpec(
            str, required=True, doc="Name of the hosting application processor."
        ),
        "release_mode": AttributeSpec(
            str,
            default="per_job",
            validator=lambda v: v in ("per_job", "per_task"),
            mutable=True,
            doc="per_task: admitted periodic tasks release later jobs "
            "immediately; per_job: every job awaits an Accept event.",
        ),
        "ac_node": AttributeSpec(
            str,
            default="",
            doc="Processor hosting this TE's admission controller; empty "
            "means the central task manager.  The decentralized AC "
            "extension points each TE at its local controller.",
        ),
    }

    def __init__(self, name: str, env: RuntimeEnv) -> None:
        super().__init__(name)
        self.env = env
        #: Jobs held awaiting an admission decision, keyed by job key.
        self.waiting: Dict[Tuple[str, int], Job] = {}
        #: Cached per-task decisions: task_id -> (admitted, assignment).
        self._task_cache: Dict[str, Tuple[bool, Optional[Dict[int, str]]]] = {}
        self._source: Optional[EventSourcePort] = None
        self.jobs_held = 0
        self.jobs_released = 0
        self.jobs_rejected = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_install(self, container) -> None:
        self._source = EventSourcePort(self, "decision_request")
        accept_sink = EventSinkPort(self, "accept", self._on_accept)
        accept_sink.subscribe(accept_topic(container.node))
        reject_sink = EventSinkPort(self, "reject", self._on_reject)
        reject_sink.subscribe(reject_topic(container.node))

    def on_activate(self) -> None:
        if self.get_attribute("processor_id") != self.node:
            raise ComponentError(
                f"TE {self.name!r}: processor_id attribute "
                f"{self.get_attribute('processor_id')!r} does not match "
                f"deployment node {self.node!r}"
            )
        self.env.task_effectors[self.node] = self

    # ------------------------------------------------------------------
    # Arrival handling (invoked by the workload driver)
    # ------------------------------------------------------------------
    def task_arrived(self, job: Job) -> None:
        """A job of ``job.task`` arrived on this processor."""
        now = self.sim.now
        self.env.metrics.on_arrival(job)
        self.tracer.record(
            now, "te.arrive", self.node, task=job.task.task_id, job=job.index
        )
        task = job.task
        if task.is_periodic and self.get_attribute("release_mode") == "per_task":
            cached = self._task_cache.get(task.task_id)
            if cached is not None:
                self._release_from_cache(job, cached)
                return
        self.waiting[job.key] = job
        self.jobs_held += 1
        push_cost = self.env.cost_model.sample(OP_HOLD_AND_PUSH, self.env.cost_rng)
        self.sim.schedule(push_cost, self._push_task_arrive, job)

    def _push_task_arrive(self, job: Job) -> None:
        # The job may have been resolved while the hold/push cost elapsed
        # (not possible in the current protocol, but cheap to guard).
        if job.key not in self.waiting:
            return
        destination = self.get_attribute("ac_node") or self.env.manager_node
        self._source.push(
            destination,
            TOPIC_TASK_ARRIVE,
            TaskArriveEvent(job=job, arrival_node=self.node),
        )

    def _release_from_cache(
        self, job: Job, cached: Tuple[bool, Optional[Dict[int, str]]]
    ) -> None:
        admitted, assignment = cached
        if not admitted:
            job.status = JobStatus.REJECTED
            self.jobs_rejected += 1
            self.env.metrics.on_rejection(job)
            return
        assert assignment is not None
        release_node = assignment[0]
        if release_node == self.node:
            cost = self.env.cost_model.sample(OP_RELEASE, self.env.cost_rng)
            self.sim.schedule(cost, self._do_release, job, assignment)
        else:
            # The task was re-allocated at admission time; forward the
            # release to the duplicate's TE (one network hop).
            remote = self.env.task_effectors[release_node]
            cost = self.env.cost_model.sample(
                OP_RELEASE_DUPLICATE, self.env.cost_rng
            )
            self.env.network.send(
                self.node,
                release_node,
                "te_forward_release",
                (job, assignment),
                lambda message: remote._forwarded_release(message.payload, cost),
            )

    def _forwarded_release(self, payload, cost: float) -> None:
        job, assignment = payload
        self.sim.schedule(cost, self._do_release, job, assignment)

    # ------------------------------------------------------------------
    # Decision events from the admission controller
    # ------------------------------------------------------------------
    def _on_accept(self, event: AcceptEvent) -> None:
        job = event.job
        if event.arrival_node == self.node:
            self.waiting.pop(job.key, None)
        else:
            # Re-allocated release: the arrival-node TE must drop its held
            # copy and learn the cached decision.  This cross-node call is
            # bookkeeping only (zero virtual time); the duplicate TE holds
            # the task state it needs.
            arrival_te = self.env.task_effectors.get(event.arrival_node)
            if arrival_te is not None:
                arrival_te._note_remote_decision(event)
        self._maybe_cache(job, admitted=True, assignment=dict(event.assignment))
        op = OP_RELEASE_DUPLICATE if event.reallocated else OP_RELEASE
        cost = self.env.cost_model.sample(op, self.env.cost_rng)
        self.sim.schedule(cost, self._finish_accept, event)

    def _finish_accept(self, event: AcceptEvent) -> None:
        job = event.job
        delay = self.sim.now - job.arrival_time
        lb_enabled = self.env.combo.lb is not LBStrategy.NONE
        self.env.overhead.record_admission_path(
            delay, lb_enabled=lb_enabled, reallocated=event.reallocated
        )
        self._do_release(job, dict(event.assignment))

    def _do_release(self, job: Job, assignment: Dict[int, str]) -> None:
        now = self.sim.now
        job.status = JobStatus.RELEASED
        job.released_at = now
        job.release_node = self.node
        job.assignment = dict(assignment)
        self.jobs_released += 1
        self.env.metrics.on_release(job)
        self.tracer.record(
            now, "te.release", self.node, task=job.task.task_id, job=job.index
        )
        instance = self.env.subtask_instance(job.task.task_id, 0, self.node)
        instance.release(job, assignment)

    def _on_reject(self, event: RejectEvent) -> None:
        job = event.job
        self.waiting.pop(job.key, None)
        job.status = JobStatus.REJECTED
        self.jobs_rejected += 1
        self.env.metrics.on_rejection(job)
        self._maybe_cache(job, admitted=False, assignment=None)
        self.tracer.record(
            self.sim.now,
            "te.reject",
            self.node,
            task=job.task.task_id,
            job=job.index,
            reason=event.reason,
        )

    def _note_remote_decision(self, event: AcceptEvent) -> None:
        """Called by the release-node TE when a held job was re-allocated."""
        self.waiting.pop(event.job.key, None)
        self._maybe_cache(
            event.job, admitted=True, assignment=dict(event.assignment)
        )

    def _maybe_cache(
        self, job: Job, admitted: bool, assignment: Optional[Dict[int, str]]
    ) -> None:
        if not job.task.is_periodic:
            return
        if self.get_attribute("release_mode") != "per_task":
            return
        self._task_cache.setdefault(job.task.task_id, (admitted, assignment))

"""repro — Reconfigurable real-time middleware for distributed CPS.

A production-quality Python reproduction of Zhang, Gill & Lu,
"Reconfigurable Real-Time Middleware for Distributed Cyber-Physical
Systems with Aperiodic Events" (WUCSE-2008-5 / ICDCS 2008).

Quickstart — the ``repro.api`` declarative surface
--------------------------------------------------
>>> from repro.api import Scenario, Session
>>> scenario = (
...     Scenario.builder()
...     .random_workload(seed=1)
...     .combo("J_J_J")
...     .duration(20.0)
...     .build()
... )
>>> result = Session(scenario).run()
>>> 0.0 <= result.accepted_utilization_ratio <= 1.0
True

Scenarios are frozen, validated, and JSON-round-trip serializable
(``scenario.to_json_str()``), strategies resolve by name through
``repro.api.default_registry()``, and grids of scenarios fan out over
all cores via ``repro.api.ExperimentSuite`` with bit-identical results
for any worker count.

Direct ``MiddlewareSystem(workload, combo)`` construction remains
supported as a deprecated back-compat path — see ``docs/API.md`` for
the migration table.  See ``examples/`` for full scenarios and
``benchmarks/`` for the reproductions of the paper's figures and
tables.
"""

from repro.api import (
    ExperimentSuite,
    RunResult,
    Scenario,
    Session,
    WorkloadSource,
    default_registry,
    run_scenario,
)
from repro.core.cost_model import CostModel
from repro.core.middleware import MiddlewareSystem, SystemResults
from repro.core.strategies import (
    ACStrategy,
    IRStrategy,
    LBStrategy,
    StrategyCombo,
    valid_combinations,
)
from repro.errors import ReproError
from repro.sched.task import Job, SubtaskSpec, TaskKind, TaskSpec
from repro.workloads.model import Workload

__version__ = "2.0.0"

__all__ = [
    # Declarative public surface
    "Scenario",
    "Session",
    "RunResult",
    "ExperimentSuite",
    "WorkloadSource",
    "default_registry",
    "run_scenario",
    # Building blocks
    "CostModel",
    "MiddlewareSystem",
    "SystemResults",
    "ACStrategy",
    "IRStrategy",
    "LBStrategy",
    "StrategyCombo",
    "valid_combinations",
    "ReproError",
    "Job",
    "SubtaskSpec",
    "TaskKind",
    "TaskSpec",
    "Workload",
]

"""repro — Reconfigurable real-time middleware for distributed CPS.

A production-quality Python reproduction of Zhang, Gill & Lu,
"Reconfigurable Real-Time Middleware for Distributed Cyber-Physical
Systems with Aperiodic Events" (WUCSE-2008-5 / ICDCS 2008).

Quickstart
----------
>>> import random
>>> from repro import MiddlewareSystem, StrategyCombo
>>> from repro.workloads import generate_random_workload
>>> workload = generate_random_workload(random.Random(1))
>>> system = MiddlewareSystem(workload, StrategyCombo.from_label("J_J_J"))
>>> results = system.run(duration=20.0)
>>> 0.0 <= results.accepted_utilization_ratio <= 1.0
True

See ``examples/`` for full scenarios and ``benchmarks/`` for the
reproductions of the paper's figures and tables.
"""

from repro.core.cost_model import CostModel
from repro.core.middleware import MiddlewareSystem, SystemResults
from repro.core.strategies import (
    ACStrategy,
    IRStrategy,
    LBStrategy,
    StrategyCombo,
    valid_combinations,
)
from repro.errors import ReproError
from repro.sched.task import Job, SubtaskSpec, TaskKind, TaskSpec
from repro.workloads.model import Workload

__version__ = "1.0.0"

__all__ = [
    "CostModel",
    "MiddlewareSystem",
    "SystemResults",
    "ACStrategy",
    "IRStrategy",
    "LBStrategy",
    "StrategyCombo",
    "valid_combinations",
    "ReproError",
    "Job",
    "SubtaskSpec",
    "TaskKind",
    "TaskSpec",
    "Workload",
]

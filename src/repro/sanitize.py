"""Runtime determinism sanitizer (``REPRO_SANITIZE=1``).

The static pass (``tools/repro_lint``) catches non-determinism *patterns*;
this module **proves the invariants at runtime** on every CI run.  With
``REPRO_SANITIZE=1`` in the environment (read through :mod:`repro.env`,
the designated entry point), four independent cross-checks arm
themselves at the hook points named below.  Each failure raises
:class:`SanitizeViolation` with the exact divergence, so a regression is
caught at the first corrupted value instead of surfacing runs later as a
parity mismatch.

1. **Pickle round-trip canary** (:func:`pickle_canary`, hooked into
   :func:`repro.experiments.runner.run_cells`): every cell function and
   cell tuple must survive ``dumps -> loads -> dumps`` with
   **bit-identical bytes** before it is dispatched.  A payload that
   re-serializes differently (a set whose rebuilt iteration order moved,
   an object with ambient state in ``__reduce__``) would compute
   different floats depending on which process unpickled it.

2. **Ledger shadow** (:class:`LedgerShadow`, hooked into
   :class:`repro.sched.aub.SyntheticUtilizationLedger`): every
   ``add``/``remove``/``add_batch``/``remove_batch`` is mirrored into an
   unsharded shadow map, and the touched shards are cross-checked —
   identical key sets, identical per-contribution values, totals within
   float-drift tolerance of an order-independent ``fsum``.

3. **Analyzer cache audit** (:func:`check_analyzer_cache`, hooked into
   :class:`repro.sched.aub.AubAnalyzer` admission entry points): every
   cached per-node ``f(U_j)`` term and every clean cached per-task
   condition total must equal a fresh recompute bit-for-bit.

4. **RNG draw attribution** (:class:`RngDrawLedger`, hooked into
   :class:`repro.sim.rng.RngRegistry`): every draw must go through a
   named stream; the ledger counts draws per stream and
   :meth:`RngDrawLedger.audit` fails if any underlying generator's state
   moved without an attributed draw being recorded (someone drew from a
   stream behind the wrapper's back).

Overhead is deliberately unbounded-but-logged: the sanitizer exists for
the CI ``sanitize`` leg and for debugging, not for production runs (the
tier-1 suite runs ~2x slower under it; see docs/LINTING.md for current
numbers).  When ``REPRO_SANITIZE`` is unset every hook collapses to one
``is None``/bool check, and results are bit-identical with the sanitizer
on or off — it only *observes*.
"""

from __future__ import annotations

import math
import pickle
from typing import Any, Dict, Iterable, List, Tuple

from repro.env import sanitize_enabled

__all__ = [
    "SanitizeViolation",
    "enabled",
    "pickle_canary",
    "LedgerShadow",
    "RngDrawLedger",
]

#: Absolute slack allowed between a shard's incrementally maintained
#: total and the order-independent ``fsum`` of its contributions.  The
#: incremental total is a running +=/-= sum, so it can drift from the
#: compensated sum by accumulated rounding — but never beyond ulp-scale
#: noise for realistic contribution counts.
TOTAL_DRIFT_TOLERANCE = 1e-9


class SanitizeViolation(AssertionError):
    """A runtime determinism invariant did not hold.

    Subclasses ``AssertionError`` so an armed invariant reads like the
    assertion it is; carries the full divergence in the message.
    """


def enabled() -> bool:
    """Whether the sanitizer is armed (``$REPRO_SANITIZE``, via repro.env)."""
    return sanitize_enabled()


# ----------------------------------------------------------------------
# 1. Pickle round-trip canary
# ----------------------------------------------------------------------
def pickle_canary(obj: Any, what: str) -> None:
    """Assert ``obj`` pickles, unpickles, and re-pickles bit-identically.

    ``dumps(loads(dumps(obj)))`` must reproduce the first serialization
    exactly: the worker that unpickles a cell holds an object graph whose
    re-serialization — and therefore whose observable structure — is
    identical to the parent's.  Raises :class:`SanitizeViolation` on an
    unpicklable payload or on divergent bytes.
    """
    try:
        first = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise SanitizeViolation(
            f"sanitize: {what} is not picklable and cannot cross a process "
            f"boundary: {exc!r}"
        ) from exc
    try:
        clone = pickle.loads(first)
        second = pickle.dumps(clone, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise SanitizeViolation(
            f"sanitize: {what} failed to round-trip through pickle: {exc!r}"
        ) from exc
    if first != second:
        raise SanitizeViolation(
            f"sanitize: {what} does not re-serialize bit-identically "
            f"({len(first)} vs {len(second)} bytes); its structure depends "
            "on which process built it (unordered container or ambient "
            "state in __reduce__)"
        )


# ----------------------------------------------------------------------
# 2. Unsharded ledger shadow
# ----------------------------------------------------------------------
class LedgerShadow:
    """Unsharded mirror of a :class:`SyntheticUtilizationLedger`.

    The production ledger shards contributions per node and maintains
    per-shard running totals incrementally.  The shadow keeps the naive
    structure the shards replaced — one flat ``(node, key) -> value``
    map — and re-derives every invariant from scratch on each
    cross-check, so a bookkeeping bug in the sharded fast path (a key
    leaked between shards, a total that drifted from its contributions)
    is caught at the mutation that introduced it.
    """

    __slots__ = ("_contribs",)

    def __init__(self) -> None:
        self._contribs: Dict[Tuple[str, Tuple[str, int, int]], float] = {}

    # -- mirrored mutations -------------------------------------------
    def add(self, node: str, key: Tuple[str, int, int], value: float) -> None:
        self._contribs[(node, key)] = value

    def remove(self, node: str, key: Tuple[str, int, int]) -> None:
        self._contribs.pop((node, key), None)

    # -- cross-check ---------------------------------------------------
    def verify_shard(
        self,
        node: str,
        contribs: Dict[Tuple[str, int, int], float],
        total: float,
    ) -> None:
        """Check one shard against the shadow; raise on any divergence."""
        expected = {
            key: value
            for (shadow_node, key), value in self._contribs.items()
            if shadow_node == node
        }
        if set(contribs) != set(expected):
            missing = sorted(set(expected) - set(contribs))
            extra = sorted(set(contribs) - set(expected))
            raise SanitizeViolation(
                f"sanitize: ledger shard {node!r} diverged from the "
                f"unsharded shadow: missing keys {missing[:5]}, "
                f"unexpected keys {extra[:5]}"
            )
        for key, value in expected.items():
            if contribs[key] != value:
                raise SanitizeViolation(
                    f"sanitize: ledger shard {node!r} contribution {key} "
                    f"is {contribs[key]!r}, shadow recorded {value!r}"
                )
        fresh = math.fsum(expected.values()) if expected else 0.0
        if abs(total - fresh) > TOTAL_DRIFT_TOLERANCE:
            raise SanitizeViolation(
                f"sanitize: ledger shard {node!r} total {total!r} drifted "
                f"from the recomputed sum {fresh!r} of its "
                f"{len(expected)} contributions"
            )


# ----------------------------------------------------------------------
# 4. RNG draw attribution
# ----------------------------------------------------------------------
class RngDrawLedger:
    """Per-stream draw counts plus post-draw generator fingerprints.

    Each attributed draw records the stream name and the generator's
    state afterwards.  :meth:`audit` then compares every stream's live
    state against the last attributed fingerprint: a mismatch means the
    generator advanced without the draw being attributed — exactly the
    ambient-draw coupling the named-stream design exists to prevent.
    """

    __slots__ = ("counts", "_fingerprints")

    def __init__(self) -> None:
        #: stream name -> number of attributed draw calls
        self.counts: Dict[str, int] = {}
        #: stream name -> generator state after the last attributed draw
        self._fingerprints: Dict[str, Any] = {}

    def record(self, name: str, state: Any) -> None:
        self.counts[name] = self.counts.get(name, 0) + 1
        self._fingerprints[name] = state

    def baseline(self, name: str, state: Any) -> None:
        """Fingerprint a freshly created stream (zero draws so far)."""
        self.counts.setdefault(name, 0)
        self._fingerprints[name] = state

    def audit(self, states: Iterable[Tuple[str, Any]]) -> None:
        """Assert no stream advanced past its last attributed draw."""
        unattributed: List[str] = []
        for name, state in states:
            if self._fingerprints.get(name) != state:
                unattributed.append(name)
        if unattributed:
            raise SanitizeViolation(
                "sanitize: unattributed RNG draws detected on stream(s) "
                f"{sorted(unattributed)}: the generator state moved without "
                "a draw being recorded — draw through the named stream "
                "returned by RngRegistry.stream(), never the raw Random"
            )

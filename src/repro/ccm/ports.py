"""Component ports: event sources/sinks and facets/receptacles.

Event ports ride on the federated event channel
(:class:`repro.net.federation.FederatedEventChannel`): a source pushes a
payload to a topic, point-to-point to a destination node; a sink subscribes
a handler on its own node.  Facet/receptacle ports model the synchronous
method collaborations in the paper's Figure 3 (AC -> LB "Location" calls,
subtask -> IR "Complete" calls), which are always node-local in the paper's
deployment.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, TYPE_CHECKING

from repro.errors import PortError

if TYPE_CHECKING:  # pragma: no cover
    from repro.ccm.component import Component


class EventSourcePort:
    """A publishes port: push events to a topic on a destination node."""

    def __init__(self, owner: "Component", name: str) -> None:
        self.owner = owner
        self.name = name
        self.pushed = 0

    def push(self, destination: str, topic: str, payload: Any) -> None:
        """Push ``payload`` point-to-point to ``topic`` on ``destination``."""
        container = self.owner.container
        if container is None:
            raise PortError(
                f"event source {self.name!r} of {self.owner.name!r}: not installed"
            )
        self.pushed += 1
        container.federation.send(container.node, destination, topic, payload)

    def broadcast(self, topic: str, payload: Any) -> None:
        """Publish ``payload`` to every subscriber of ``topic``."""
        container = self.owner.container
        if container is None:
            raise PortError(
                f"event source {self.name!r} of {self.owner.name!r}: not installed"
            )
        self.pushed += 1
        container.federation.publish(container.node, topic, payload)


class EventSinkPort:
    """A consumes port: a handler subscribed to a topic on the local node."""

    def __init__(self, owner: "Component", name: str, handler: Callable[[Any], None]) -> None:
        self.owner = owner
        self.name = name
        self.handler = handler
        self.received = 0
        self._subscribed_topic: Optional[str] = None

    def subscribe(self, topic: str) -> None:
        container = self.owner.container
        if container is None:
            raise PortError(
                f"event sink {self.name!r} of {self.owner.name!r}: not installed"
            )
        self._subscribed_topic = topic
        container.federation.subscribe(container.node, topic, self._on_event)

    @property
    def topic(self) -> Optional[str]:
        return self._subscribed_topic

    def _on_event(self, payload: Any) -> None:
        self.received += 1
        self.handler(payload)


class Facet:
    """A provides port: a named object offering methods to receptacles."""

    def __init__(self, owner: "Component", name: str, obj: Any) -> None:
        self.owner = owner
        self.name = name
        self.obj = obj


class Receptacle:
    """A uses port: holds a reference to a connected facet."""

    def __init__(self, owner: "Component", name: str) -> None:
        self.owner = owner
        self.name = name
        self._facet: Optional[Facet] = None

    def connect(self, facet: Facet) -> None:
        if self._facet is not None:
            raise PortError(
                f"receptacle {self.name!r} of {self.owner.name!r} already connected"
            )
        self._facet = facet

    @property
    def connected(self) -> bool:
        return self._facet is not None

    def __call__(self) -> Any:
        """Dereference the connected facet's object."""
        if self._facet is None:
            raise PortError(
                f"receptacle {self.name!r} of {self.owner.name!r} is not connected"
            )
        return self._facet.obj

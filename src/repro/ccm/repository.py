"""Component implementation repository.

Deployment plans reference component implementations by name (the paper's
XML descriptors name implementation artifacts); the repository resolves
those names to Python component classes at deployment time.  A default
repository pre-registered with the six paper components is provided by
:func:`repro.config.dance.default_repository`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Type

from repro.ccm.component import Component
from repro.errors import DeploymentError


class ComponentRepository:
    """Maps implementation names to component classes or factories."""

    def __init__(self) -> None:
        self._factories: Dict[str, Callable[[str], Component]] = {}

    def register(self, impl_name: str, factory: Callable[[str], Component]) -> None:
        """Register ``factory`` (class or callable taking the instance name)."""
        if impl_name in self._factories:
            raise DeploymentError(f"implementation {impl_name!r} already registered")
        self._factories[impl_name] = factory

    def register_class(self, impl_name: str, cls: Type[Component]) -> None:
        self.register(impl_name, cls)

    def create(self, impl_name: str, instance_name: str) -> Component:
        """Instantiate the implementation ``impl_name`` as ``instance_name``."""
        try:
            factory = self._factories[impl_name]
        except KeyError:
            raise DeploymentError(
                f"unknown component implementation {impl_name!r}; "
                f"known: {sorted(self._factories)}"
            ) from None
        component = factory(instance_name)
        if not isinstance(component, Component):
            raise DeploymentError(
                f"factory for {impl_name!r} returned {type(component).__name__}, "
                "expected a Component"
            )
        return component

    def __contains__(self, impl_name: str) -> bool:
        return impl_name in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._factories))

    def __len__(self) -> int:
        return len(self._factories)

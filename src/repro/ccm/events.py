"""Event payload types exchanged between middleware components.

These correspond one-to-one to the events in the paper's Figure 3:
"Task Arrive" (TE -> AC), "Accept" (AC -> TE), "Trigger" (F/I Subtask ->
next subtask), "Idle Resetting" (IR -> AC).  A "Reject" event is added so
task effectors can clean up held jobs; the paper leaves the rejection path
implicit.

Topic-name constants are defined here so publishers and subscribers cannot
drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sched.task import Job

#: Topic: task effector announces an arrived job to the admission controller.
TOPIC_TASK_ARRIVE = "task_arrive"

#: Topic: admission controller authorizes release of a held job.
TOPIC_ACCEPT = "accept"

#: Topic: admission controller refuses a held job.
TOPIC_REJECT = "reject"

#: Topic: a subtask component triggers its successor subtask.
TOPIC_TRIGGER = "trigger"

#: Topic: idle resetter reports completed subjobs to the admission controller.
TOPIC_IDLE_RESETTING = "idle_resetting"


@dataclass(frozen=True)
class TaskArriveEvent:
    """A job arrived at a task effector and awaits an admission decision."""

    job: "Job"
    arrival_node: str


@dataclass(frozen=True)
class AcceptEvent:
    """Admission granted; release the job using ``assignment``.

    ``assignment`` maps subtask index -> processor name.  ``reallocated``
    is true when the first subtask runs on a different node than the one
    the job arrived on (the paper's "task re-allocation" via a duplicate).
    """

    job: "Job"
    assignment: Dict[int, str]
    arrival_node: str
    release_node: str

    @property
    def reallocated(self) -> bool:
        return self.release_node != self.arrival_node


@dataclass(frozen=True)
class RejectEvent:
    """Admission denied; the job (or whole task) is skipped."""

    job: "Job"
    arrival_node: str
    reason: str = ""


@dataclass(frozen=True)
class TriggerEvent:
    """Completion of subtask ``index`` releases subtask ``index + 1``."""

    job: "Job"
    next_index: int
    assignment: Dict[int, str]


@dataclass(frozen=True)
class IdleResettingEvent:
    """Completed-subjob contributions that can be reset on the AC side.

    One event carries **one processor idle period's whole reclaim batch**:
    ``node`` is the idle processor and ``entries`` the ledger keys
    ``(task_id, job_index, subtask_index)`` of contributions on it whose
    deadline has not yet expired.  The AC applies the batch with a single
    ledger ``remove_batch`` — one AUB cache refresh per idle period
    instead of one per subjob.
    """

    node: str
    entries: Tuple[Tuple[str, int, int], ...]


def trigger_topic(task_id: str, next_index: int) -> str:
    """The point-to-point topic a subtask instance listens on.

    Each deployed subtask component instance subscribes on its own node to
    ``trigger/<task>/<position>``; the sender addresses the node chosen by
    the job's assignment plan.
    """
    return f"{TOPIC_TRIGGER}/{task_id}/{next_index}"


def accept_topic(node: str) -> str:
    """Topic the task effector on ``node`` listens to for Accept events."""
    return f"{TOPIC_ACCEPT}/{node}"


def reject_topic(node: str) -> str:
    """Topic the task effector on ``node`` listens to for Reject events."""
    return f"{TOPIC_REJECT}/{node}"

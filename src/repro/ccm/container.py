"""Containers: the execution environment binding components to a node.

A container lives on exactly one processor and provides its components
access to the simulation kernel, the processor (for dispatch threads), the
event-channel federation and the tracer.  This mirrors CIAO's
container-per-node architecture in the paper's Figure 3.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ccm.component import Component
from repro.cpu.processor import Processor
from repro.errors import ComponentError
from repro.net.federation import FederatedEventChannel
from repro.sim.kernel import Simulator
from repro.sim.tracing import Tracer


class Container:
    """Execution environment for components on one processor."""

    def __init__(
        self,
        processor: Processor,
        federation: FederatedEventChannel,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.processor = processor
        self.federation = federation
        # Note: explicit None check — an empty Tracer is falsy (__len__).
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.components: List[Component] = []
        self._by_name: Dict[str, Component] = {}

    @property
    def node(self) -> str:
        return self.processor.name

    @property
    def sim(self) -> Simulator:
        return self.processor.sim

    def install(self, component: Component) -> Component:
        """Install ``component`` into this container and run its hook."""
        if component.container is not None:
            raise ComponentError(
                f"component {component.name!r} is already installed"
            )
        if component.name in self._by_name:
            raise ComponentError(
                f"container on {self.node!r} already hosts a component "
                f"named {component.name!r}"
            )
        component.container = self
        self.components.append(component)
        self._by_name[component.name] = component
        component.on_install(self)
        return component

    def lookup(self, name: str) -> Component:
        try:
            return self._by_name[name]
        except KeyError:
            raise ComponentError(
                f"no component named {name!r} on node {self.node!r}"
            ) from None

    def activate_all(self) -> None:
        """Activate every installed component (deployment final step)."""
        for component in self.components:
            if not component.activated:
                component.activate()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Container node={self.node!r} components={len(self.components)}>"

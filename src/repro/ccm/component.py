"""Component base class with declared, validated attributes.

Components declare their configurable attributes as a class-level
``ATTRIBUTES`` mapping of name -> :class:`AttributeSpec`.  Deployment plans
configure attributes through the standard ``set_configuration`` interface
(the Configurator step in the paper's Figure 4); invalid names or values
raise :class:`~repro.errors.AttributeConfigError` at deployment time, which
is one half of the paper's "invalid configurations cannot be chosen by
mistake" guarantee (the other half lives in
:mod:`repro.config.validation`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, TYPE_CHECKING

from repro.errors import AttributeConfigError, ComponentError

if TYPE_CHECKING:  # pragma: no cover
    from repro.ccm.container import Container


@dataclass(frozen=True)
class AttributeSpec:
    """Declaration of one configurable component attribute.

    Attributes
    ----------
    type:
        Expected Python type; values are checked with ``isinstance`` (bool
        is rejected where int is expected, to catch config typos).
    default:
        Value used when a deployment plan does not set the attribute.
        ``required=True`` attributes have no default.
    validator:
        Optional predicate; a falsy result rejects the value.
    mutable:
        Whether the attribute may be changed after activation (the paper's
        TE attributes "may be modified at run-time").
    """

    type: type
    default: Any = None
    required: bool = False
    validator: Optional[Callable[[Any], bool]] = None
    mutable: bool = False
    doc: str = ""


class Component:
    """Base class for all CCM-lite components."""

    #: Subclasses override: declared configurable attributes.
    ATTRIBUTES: Dict[str, AttributeSpec] = {}

    def __init__(self, name: str) -> None:
        self.name = name
        self.container: Optional["Container"] = None
        self._activated = False
        self._attributes: Dict[str, Any] = {}
        for attr_name, spec in self.ATTRIBUTES.items():
            if not spec.required:
                self._attributes[attr_name] = spec.default

    # ------------------------------------------------------------------
    # Attribute machinery (configProperty / Configurator)
    # ------------------------------------------------------------------
    def set_attribute(self, name: str, value: Any) -> None:
        """Set one configurable attribute, validating name and value."""
        spec = self.ATTRIBUTES.get(name)
        if spec is None:
            raise AttributeConfigError(
                f"{type(self).__name__} {self.name!r} has no attribute {name!r}; "
                f"known attributes: {sorted(self.ATTRIBUTES)}"
            )
        if self._activated and not spec.mutable:
            raise AttributeConfigError(
                f"attribute {name!r} of {self.name!r} is immutable after activation"
            )
        if spec.type is int and isinstance(value, bool):
            raise AttributeConfigError(
                f"attribute {name!r} of {self.name!r} expects int, got bool"
            )
        if not isinstance(value, spec.type):
            raise AttributeConfigError(
                f"attribute {name!r} of {self.name!r} expects "
                f"{spec.type.__name__}, got {type(value).__name__}"
            )
        if spec.validator is not None and not spec.validator(value):
            raise AttributeConfigError(
                f"value {value!r} rejected for attribute {name!r} of {self.name!r}"
            )
        self._attributes[name] = value

    def get_attribute(self, name: str) -> Any:
        if name not in self.ATTRIBUTES:
            raise AttributeConfigError(
                f"{type(self).__name__} {self.name!r} has no attribute {name!r}"
            )
        return self._attributes.get(name)

    def set_configuration(self, properties: Mapping[str, Any]) -> None:
        """Standard Configurator interface used by the deployment engine."""
        for key, value in properties.items():
            self.set_attribute(key, value)

    def check_required_attributes(self) -> None:
        """Raise if any required attribute is still unset."""
        for attr_name, spec in self.ATTRIBUTES.items():
            if spec.required and attr_name not in self._attributes:
                raise AttributeConfigError(
                    f"required attribute {attr_name!r} of {self.name!r} was never set"
                )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_install(self, container: "Container") -> None:
        """Hook: component placed into its container (ports may be wired)."""

    def on_activate(self) -> None:
        """Hook: deployment complete, the system is about to run."""

    def activate(self) -> None:
        if self.container is None:
            raise ComponentError(f"component {self.name!r} is not installed")
        self.check_required_attributes()
        self.on_activate()
        self._activated = True

    @property
    def activated(self) -> bool:
        return self._activated

    # ------------------------------------------------------------------
    # Generic port wiring (used by the DAnCE-lite deployment pipeline)
    # ------------------------------------------------------------------
    def provide_facet(self, port_name: str):
        """Return the named facet; components with facets override this."""
        raise ComponentError(
            f"{type(self).__name__} {self.name!r} provides no facet "
            f"{port_name!r}"
        )

    def connect_receptacle(self, port_name: str, facet: Any) -> None:
        """Connect the named receptacle; components with receptacles
        override this."""
        raise ComponentError(
            f"{type(self).__name__} {self.name!r} has no receptacle "
            f"{port_name!r}"
        )

    # ------------------------------------------------------------------
    # Convenience accessors (valid once installed)
    # ------------------------------------------------------------------
    @property
    def node(self) -> str:
        """Name of the processor this component is deployed on."""
        self._require_container()
        return self.container.node

    @property
    def sim(self):
        self._require_container()
        return self.container.sim

    @property
    def processor(self):
        self._require_container()
        return self.container.processor

    @property
    def tracer(self):
        self._require_container()
        return self.container.tracer

    def _require_container(self) -> None:
        if self.container is None:
            raise ComponentError(f"component {self.name!r} is not installed")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = self.container.node if self.container else "uninstalled"
        return f"<{type(self).__name__} {self.name!r} on {where}>"

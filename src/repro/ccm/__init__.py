"""CCM-lite component model (the CIAO substrate).

A minimal but faithful rendition of the Lightweight CORBA Component Model
architecture the paper builds on:

* :class:`~repro.ccm.component.Component` — unit of implementation with
  declared, validated **attributes** (``configProperty`` in the paper's
  XML plans) and a standard ``set_configuration`` Configurator interface.
* :mod:`repro.ccm.ports` — **event source/sink** ports (push-style events
  through the federated event channel) and **facet/receptacle** ports
  (synchronous method collaboration, e.g. the AC component's "Location"
  calls on the LB component).
* :class:`~repro.ccm.container.Container` — execution environment binding
  components to a processor and the event-channel federation.
* :class:`~repro.ccm.repository.ComponentRepository` — maps implementation
  names from deployment plans to Python component classes.
"""

from repro.ccm.component import AttributeSpec, Component
from repro.ccm.container import Container
from repro.ccm.ports import EventSinkPort, EventSourcePort, Facet, Receptacle
from repro.ccm.repository import ComponentRepository

__all__ = [
    "AttributeSpec",
    "Component",
    "Container",
    "EventSinkPort",
    "EventSourcePort",
    "Facet",
    "Receptacle",
    "ComponentRepository",
]

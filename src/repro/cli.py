"""Command-line interface: ``python -m repro <command>``.

Commands
--------
figure5 / figure6 / figure8 / table1 / ablation
    Regenerate a paper table or figure and print it.
analyze <workload-spec>
    Offline AUB feasibility report for a workload specification file.
configure <workload-spec> [--answers C1,C3,C2,TOL] [--xml-out PATH]
    Run the front-end configuration engine: map characteristics to
    strategies, emit (and optionally save) the XML deployment plan.
run <workload-spec> [--combo LABEL] [--duration SEC] [--seed N]
    Deploy a workload (via DAnCE-lite) and run it, printing metrics.
combos
    List the 15 valid strategy combinations.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.config.characteristics import ApplicationCharacteristics
from repro.config.engine import ConfigurationEngine
from repro.config.workload_spec import load_workload
from repro.core.strategies import StrategyCombo, valid_combinations
from repro.errors import ReproError
from repro.experiments import (
    run_aub_vs_deferrable,
    run_figure5,
    run_figure6,
    run_figure8,
    run_table1,
)
from repro.experiments.table1 import format_rows
from repro.sched.offline import analyze_workload, format_report


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reconfigurable real-time middleware reproduction "
        "(Zhang, Gill & Lu, WUCSE-2008-5).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, doc in (
        ("figure5", "random workloads, 15 combos (paper section 7.1)"),
        ("figure6", "imbalanced workloads, LB comparison (section 7.2)"),
    ):
        p = sub.add_parser(name, help=doc)
        p.add_argument("--sets", type=int, default=10)
        p.add_argument("--duration", type=float, default=60.0)
        p.add_argument("--seed", type=int, default=2008)

    p8 = sub.add_parser("figure8", help="service overhead table (section 7.3)")
    p8.add_argument("--duration", type=float, default=300.0)
    p8.add_argument("--seed", type=int, default=2008)

    sub.add_parser("table1", help="criteria-to-strategy mapping")

    pa = sub.add_parser("ablation", help="AUB vs Deferrable Server admission")
    pa.add_argument("--sets", type=int, default=10)
    pa.add_argument("--duration", type=float, default=120.0)
    pa.add_argument("--seed", type=int, default=2008)

    pan = sub.add_parser("analyze", help="offline AUB feasibility report")
    pan.add_argument("workload")

    pc = sub.add_parser("configure", help="front-end configuration engine")
    pc.add_argument("workload")
    pc.add_argument(
        "--answers",
        help="comma-separated answers: job_skipping,replicated,"
        "state_persistence,tolerance (e.g. N,Y,Y,PT)",
    )
    pc.add_argument("--xml-out", help="write the deployment plan XML here")

    pr = sub.add_parser("run", help="deploy and run a workload spec")
    pr.add_argument("workload")
    pr.add_argument("--combo", default="T_T_T")
    pr.add_argument("--duration", type=float, default=60.0)
    pr.add_argument("--seed", type=int, default=0)

    sub.add_parser("combos", help="list the 15 valid strategy combinations")
    return parser


def _parse_answers(raw: Optional[str]) -> Optional[ApplicationCharacteristics]:
    if raw is None:
        return None
    parts = [p.strip() for p in raw.split(",")]
    if len(parts) != 4:
        raise ReproError(
            "--answers needs 4 comma-separated values: "
            "job_skipping,replicated,state_persistence,tolerance"
        )
    return ApplicationCharacteristics.from_answers(
        {
            "job_skipping": parts[0],
            "replicated_components": parts[1],
            "state_persistence": parts[2],
            "overhead_tolerance": parts[3],
        }
    )


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    command = args.command

    if command == "figure5":
        result = run_figure5(
            n_sets=args.sets, duration=args.duration, seed=args.seed
        )
        print(result.format())
        print(f"IR-strategy means: {result.by_ir_strategy()}")
    elif command == "figure6":
        result = run_figure6(
            n_sets=args.sets, duration=args.duration, seed=args.seed
        )
        print(result.format())
        print(f"LB-strategy means: {result.lb_means()}")
    elif command == "figure8":
        result = run_figure8(duration=args.duration, seed=args.seed)
        print(result.format())
    elif command == "table1":
        print(format_rows(run_table1()))
    elif command == "ablation":
        result = run_aub_vs_deferrable(
            n_sets=args.sets, duration=args.duration, seed=args.seed
        )
        print(result.format())
    elif command == "analyze":
        workload = load_workload(args.workload)
        print(format_report(analyze_workload(workload)))
    elif command == "configure":
        engine = ConfigurationEngine()
        result = engine.configure(
            load_workload(args.workload), _parse_answers(args.answers)
        )
        print(f"strategy combination: {result.combo.label}")
        for note in result.notes:
            print(f"note: {note}")
        if args.xml_out:
            with open(args.xml_out, "w") as handle:
                handle.write(result.xml)
            print(f"deployment plan written to {args.xml_out}")
        else:
            print(result.xml)
    elif command == "run":
        engine = ConfigurationEngine()
        result = engine.configure(
            load_workload(args.workload),
            combo=StrategyCombo.from_label(args.combo),
        )
        system = engine.deploy(result, seed=args.seed)
        run = system.run(duration=args.duration)
        for key, value in run.metrics.summary().items():
            print(f"{key}: {value}")
        print(f"accepted_utilization_ratio: {run.accepted_utilization_ratio:.4f}")
    elif command == "combos":
        for combo in valid_combinations():
            print(combo.label)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())

"""Command-line interface: ``python -m repro <command>``.

Commands
--------
figure5 / figure6 / figure8 / table1 / ablation / sensitivity / disturbance
    Regenerate a paper table/figure (or a beyond-the-paper sweep) and
    print it; ``--json PATH`` additionally exports the data
    machine-readably, ``--workers N`` bounds the parallel fan-out.
scenario export PATH ...
    Build a declarative :class:`repro.api.Scenario` from flags and write
    it as JSON.
scenario run PATH [--json OUT]
    Load a scenario JSON file, run it through a Session, print (and
    optionally export) the typed RunResult.
analyze <workload-spec>
    Offline AUB feasibility report for a workload specification file.
configure <workload-spec> [--answers C1,C3,C2,TOL] [--xml-out PATH]
    Run the front-end configuration engine: map characteristics to
    strategies, emit (and optionally save) the XML deployment plan.
run <workload-spec> [--combo LABEL] [--duration SEC] [--seed N]
    Deploy a workload (via DAnCE-lite) and run it, printing metrics.
metrics <scenario.json> [--out PATH] [--json OUT]
    Run a scenario armed with the metrics registry and dump the
    Prometheus text exposition (see docs/OBSERVABILITY.md).
combos
    List the 15 valid strategy combinations (the registry's names).

All experiment and run commands construct their runs through the
``repro.api`` scenario surface.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, List, Optional

from repro.api import Scenario, Session, default_registry
from repro.config.characteristics import ApplicationCharacteristics
from repro.config.engine import ConfigurationEngine
from repro.config.workload_spec import load_workload
from repro.core.strategies import valid_combinations
from repro.errors import ReproError
from repro.experiments import (
    run_aub_vs_deferrable,
    run_chaos_suite,
    run_disturbance_suite,
    run_figure5,
    run_figure6,
    run_figure8,
    run_table1,
    sweep_load,
    sweep_network_delay,
    sweep_overhead,
)
from repro.experiments.table1 import format_rows, rows_to_json
from repro.sched.offline import analyze_workload, format_report


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reconfigurable real-time middleware reproduction "
        "(Zhang, Gill & Lu, WUCSE-2008-5).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def _experiment_parser(name: str, doc: str) -> argparse.ArgumentParser:
        p = sub.add_parser(name, help=doc)
        p.add_argument("--workers", type=int, default=None,
                       help="parallel worker processes (default: all cores)")
        p.add_argument("--json", metavar="PATH", default=None,
                       help="also write the result data as JSON")
        return p

    for name, doc in (
        ("figure5", "random workloads, 15 combos (paper section 7.1)"),
        ("figure6", "imbalanced workloads, LB comparison (section 7.2)"),
    ):
        p = _experiment_parser(name, doc)
        p.add_argument("--sets", type=int, default=10)
        p.add_argument("--duration", type=float, default=60.0)
        p.add_argument("--seed", type=int, default=2008)

    p8 = _experiment_parser("figure8", "service overhead table (section 7.3)")
    p8.add_argument("--duration", type=float, default=300.0)
    p8.add_argument("--seed", type=int, default=2008)

    _experiment_parser("table1", "criteria-to-strategy mapping")

    pa = _experiment_parser("ablation", "AUB vs Deferrable Server admission")
    pa.add_argument("--sets", type=int, default=10)
    pa.add_argument("--duration", type=float, default=120.0)
    pa.add_argument("--seed", type=int, default=2008)

    ps = _experiment_parser(
        "sensitivity", "load/overhead/delay sweeps (beyond the paper)"
    )
    ps.add_argument("--duration", type=float, default=60.0)
    ps.add_argument("--seed", type=int, default=2008)
    ps.add_argument("--combo", default="J_J_J")

    pd = _experiment_parser(
        "disturbance", "burst + slowdown probes of the AUB guarantee"
    )
    pd.add_argument("--duration", type=float, default=60.0)
    pd.add_argument("--seed", type=int, default=2008)

    pch = _experiment_parser(
        "chaos", "availability under crash/partition/loss faults"
    )
    pch.add_argument("--duration", type=float, default=30.0)
    pch.add_argument("--seed", type=int, default=2008)
    pch.add_argument("--loss", type=float, default=0.2,
                     help="message loss probability for the loss cell")

    # -- declarative scenario surface ----------------------------------
    pscen = sub.add_parser(
        "scenario", help="export/run declarative scenario JSON files"
    )
    scen_sub = pscen.add_subparsers(dest="scenario_command", required=True)

    pse = scen_sub.add_parser("export", help="write a scenario JSON file")
    pse.add_argument("path", help="output JSON path ('-' for stdout)")
    group = pse.add_mutually_exclusive_group(required=True)
    group.add_argument("--workload", help="workload specification file")
    group.add_argument(
        "--random-seed", type=int, default=None,
        help="generate the workload (section 7.1 recipe) from this seed",
    )
    pse.add_argument("--imbalanced", action="store_true",
                     help="use the section 7.2 imbalanced generator")
    pse.add_argument("--combo", default=None,
                     help="strategy combo name (default: T_T_T, or J_N_N "
                          "with --distributed)")
    pse.add_argument("--duration", type=float, default=60.0)
    pse.add_argument("--seed", type=int, default=0)
    pse.add_argument("--factor", type=float, default=2.0,
                     help="aperiodic interarrival factor")
    pse.add_argument("--distributed", action="store_true",
                     help="target the distributed-AC engine")
    pse.add_argument("--burst", metavar="TIME:JOBS", default=None,
                     help="inject an aperiodic burst disturbance")
    pse.add_argument("--slowdown", metavar="TIME:FACTOR", default=None,
                     help="inject a processor slowdown disturbance")
    pse.add_argument("--label", default=None)

    psr = scen_sub.add_parser("run", help="run a scenario JSON file")
    psr.add_argument("path", help="scenario JSON path")
    psr.add_argument("--json", metavar="PATH", default=None,
                     help="write the RunResult as JSON")
    psr.add_argument("--via-dance", action="store_true",
                     help="deploy through the DAnCE-lite XML plan pipeline")

    pan = sub.add_parser("analyze", help="offline AUB feasibility report")
    pan.add_argument("workload")

    pc = sub.add_parser("configure", help="front-end configuration engine")
    pc.add_argument("workload")
    pc.add_argument(
        "--answers",
        help="comma-separated answers: job_skipping,replicated,"
        "state_persistence,tolerance (e.g. N,Y,Y,PT)",
    )
    pc.add_argument("--xml-out", help="write the deployment plan XML here")
    pc.add_argument("--scenario-out",
                    help="write the configured run as scenario JSON here")

    pr = sub.add_parser("run", help="deploy and run a workload spec")
    pr.add_argument("workload")
    pr.add_argument("--combo", default="T_T_T")
    pr.add_argument("--duration", type=float, default=60.0)
    pr.add_argument("--seed", type=int, default=0)
    pr.add_argument("--json", metavar="PATH", default=None,
                    help="write the RunResult as JSON")

    pm = sub.add_parser(
        "metrics",
        help="run a scenario armed with the metrics registry and dump "
             "the Prometheus text exposition",
    )
    pm.add_argument("path", help="scenario JSON path")
    pm.add_argument("--via-dance", action="store_true",
                    help="deploy through the DAnCE-lite XML plan pipeline")
    pm.add_argument("--out", metavar="PATH", default=None,
                    help="write the exposition here instead of stdout")
    pm.add_argument("--json", metavar="PATH", default=None,
                    help="also write the armed RunResult as JSON")

    sub.add_parser("combos", help="list the 15 valid strategy combinations")
    return parser


def _parse_answers(raw: Optional[str]) -> Optional[ApplicationCharacteristics]:
    if raw is None:
        return None
    parts = [p.strip() for p in raw.split(",")]
    if len(parts) != 4:
        raise ReproError(
            "--answers needs 4 comma-separated values: "
            "job_skipping,replicated,state_persistence,tolerance"
        )
    return ApplicationCharacteristics.from_answers(
        {
            "job_skipping": parts[0],
            "replicated_components": parts[1],
            "state_persistence": parts[2],
            "overhead_tolerance": parts[3],
        }
    )


def _write_json(path: Optional[str], payload: Any) -> None:
    if path is None:
        return
    text = json.dumps(payload, indent=2, sort_keys=True)
    if path == "-":
        print(text)
    else:
        with open(path, "w") as handle:
            handle.write(text + "\n")
        print(f"JSON written to {path}")


def _parse_pair(raw: str, flag: str, int_value: bool = False) -> tuple:
    parts = raw.split(":")
    if len(parts) != 2:
        raise ReproError(f"{flag} expects TIME:VALUE, got {raw!r}")
    try:
        return float(parts[0]), (int(parts[1]) if int_value else float(parts[1]))
    except ValueError:
        raise ReproError(f"{flag} expects numeric TIME:VALUE, got {raw!r}") from None


def _scenario_export(args) -> None:
    builder = Scenario.builder()
    if args.workload is not None:
        if args.imbalanced:
            raise ReproError(
                "--imbalanced selects a generator recipe and conflicts "
                "with an explicit --workload spec file"
            )
        builder.workload(load_workload(args.workload))
    elif args.imbalanced:
        builder.imbalanced_workload(seed=args.random_seed)
    else:
        builder.random_workload(seed=args.random_seed)
    builder.duration(args.duration).seed(args.seed)
    builder.interarrival_factor(args.factor)
    if args.distributed:
        builder.distributed()  # defaults the combo to J_N_N
    if args.combo is not None:
        builder.combo(args.combo)
    if args.burst is not None:
        time, jobs = _parse_pair(args.burst, "--burst", int_value=True)
        builder.burst(time=time, jobs=jobs)
    if args.slowdown is not None:
        time, factor = _parse_pair(args.slowdown, "--slowdown")
        builder.slowdown(time=time, factor=factor)
    if args.label is not None:
        builder.label(args.label)
    scenario = builder.build()
    if args.path == "-":
        print(scenario.to_json_str())
    else:
        scenario.save(args.path)
        print(f"scenario written to {args.path}")


def _print_run_result(result) -> None:
    for key, value in result.summary().items():
        print(f"{key}: {value}")
    print(f"accepted_utilization_ratio: {result.accepted_utilization_ratio:.4f}")


def _scenario_run(args) -> None:
    scenario = Scenario.load(args.path)
    print(f"scenario: {scenario.effective_label} "
          f"(engine={scenario.engine}, duration={scenario.duration:.0f}s)")
    result = Session(scenario, via_dance=args.via_dance).run()
    _print_run_result(result)
    _write_json(args.json, result.to_json())


def _metrics_run(args) -> None:
    from repro.api import MetricsRegistry

    scenario = Scenario.load(args.path)
    registry = MetricsRegistry()
    result = Session(
        scenario, via_dance=args.via_dance, metrics=registry
    ).run()
    exposition = registry.expose()
    if args.out is None:
        sys.stdout.write(exposition)
    else:
        with open(args.out, "w") as handle:
            handle.write(exposition)
        print(f"exposition written to {args.out}")
    _write_json(args.json, result.to_json())


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    command = args.command

    if command == "figure5":
        result = run_figure5(
            n_sets=args.sets, duration=args.duration, seed=args.seed,
            n_workers=args.workers,
        )
        print(result.format())
        print(f"IR-strategy means: {result.by_ir_strategy()}")
        _write_json(args.json, result.to_json())
    elif command == "figure6":
        result = run_figure6(
            n_sets=args.sets, duration=args.duration, seed=args.seed,
            n_workers=args.workers,
        )
        print(result.format())
        print(f"LB-strategy means: {result.lb_means()}")
        _write_json(args.json, result.to_json())
    elif command == "figure8":
        result = run_figure8(
            duration=args.duration, seed=args.seed, n_workers=args.workers
        )
        print(result.format())
        _write_json(args.json, result.to_json())
    elif command == "table1":
        rows = run_table1(n_workers=args.workers or 1)
        print(format_rows(rows))
        _write_json(
            args.json, {"experiment": "table1", "rows": rows_to_json(rows)}
        )
    elif command == "ablation":
        result = run_aub_vs_deferrable(
            n_sets=args.sets, duration=args.duration, seed=args.seed,
            n_workers=args.workers,
        )
        print(result.format())
        _write_json(args.json, result.to_json())
    elif command == "sensitivity":
        combo = default_registry().combo(args.combo)
        load = sweep_load(
            combo=combo, duration=args.duration, seed=args.seed,
            n_workers=args.workers,
        )
        overhead = sweep_overhead(
            combo=combo, duration=args.duration, seed=args.seed,
            n_workers=args.workers,
        )
        delay = sweep_network_delay(
            combo=combo, duration=args.duration, seed=args.seed,
            n_workers=args.workers,
        )
        for sweep in (load, overhead):
            print(f"{sweep.parameter} [{sweep.combo_label}]:")
            for x, ratio in sweep.points:
                print(f"  {x:>10g}  ratio={ratio:.4f}")
        print(f"network delay [{combo.label}]:")
        for point in delay:
            print(
                f"  {point.delay:>10g}  ratio="
                f"{point.accepted_utilization_ratio:.4f}  "
                f"mean_response={point.mean_response:.6f}  "
                f"misses={point.deadline_misses}"
            )
        _write_json(
            args.json,
            {
                "experiment": "sensitivity",
                "load": load.to_json(),
                "overhead": overhead.to_json(),
                "delay": [p.to_json() for p in delay],
            },
        )
    elif command == "disturbance":
        results = run_disturbance_suite(
            duration=args.duration, seed=args.seed, n_workers=args.workers
        )
        for res in results:
            print(
                f"{res.scenario}: ratio={res.accepted_utilization_ratio:.4f} "
                f"misses={res.deadline_misses} released={res.released_jobs} "
                f"rejected={res.rejected_jobs} detail={res.detail}"
            )
        _write_json(
            args.json,
            {
                "experiment": "disturbance",
                "results": [r.to_json() for r in results],
            },
        )
    elif command == "chaos":
        results = run_chaos_suite(
            duration=args.duration, seed=args.seed,
            loss_probability=args.loss, n_workers=args.workers,
        )
        for res in results:
            print(
                f"{res.scenario}: availability={res.availability:.4f} "
                f"released={res.released_jobs}/{res.arrived_jobs} "
                f"dropped={res.messages_dropped} "
                f"timeouts={res.vote_timeouts} "
                f"aborted={res.transactions_aborted}"
            )
        _write_json(
            args.json,
            {
                "experiment": "chaos",
                "results": [r.to_json() for r in results],
            },
        )
    elif command == "scenario":
        if args.scenario_command == "export":
            _scenario_export(args)
        else:
            _scenario_run(args)
    elif command == "analyze":
        workload = load_workload(args.workload)
        print(format_report(analyze_workload(workload)))
    elif command == "configure":
        engine = ConfigurationEngine()
        result = engine.configure(
            load_workload(args.workload), _parse_answers(args.answers)
        )
        print(f"strategy combination: {result.combo.label}")
        for note in result.notes:
            print(f"note: {note}")
        if args.scenario_out:
            engine.scenario(result).save(args.scenario_out)
            print(f"scenario written to {args.scenario_out}")
        if args.xml_out:
            with open(args.xml_out, "w") as handle:
                handle.write(result.xml)
            print(f"deployment plan written to {args.xml_out}")
        elif not args.scenario_out:
            print(result.xml)
    elif command == "run":
        engine = ConfigurationEngine()
        result = engine.configure(
            load_workload(args.workload),
            combo=default_registry().combo(args.combo),
        )
        scenario = engine.scenario(
            result, duration=args.duration, seed=args.seed
        )
        run = Session(scenario, via_dance=True).run()
        _print_run_result(run)
        _write_json(args.json, run.to_json())
    elif command == "metrics":
        _metrics_run(args)
    elif command == "combos":
        for combo in valid_combinations():
            print(combo.label)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())

"""Deterministic, mergeable metrics registry with Prometheus exposition.

The engines (middleware, distributed AC, sharded ledger, analyzer batch
sessions) publish into a :class:`MetricsRegistry` only when a run is
*armed* — i.e. the caller passed a registry in.  Unarmed runs take no
metrics branches at all, so admission decisions and legacy
``RunResult`` JSON stay bit-identical to the seed (the same parity
contract the ``REPRO_SANITIZE`` sanitizer enforces).

Determinism contract (see docs/OBSERVABILITY.md):

* :meth:`MetricsRegistry.snapshot` freezes the registry into a
  :class:`MetricsSnapshot` — a frozen value object with total ordering
  over families and series, so two registries holding the same state
  expose byte-identical text.
* :meth:`MetricsSnapshot.merge` is commutative and associative:
  counters add exact event counts, gauges take the elementwise maximum,
  histograms take the multiset union of their samples
  (:class:`repro.metrics.histogram.HistogramSnapshot`).  Folding
  per-cell snapshots returned by ``run_cells`` therefore yields a
  bit-identical aggregate for any worker count.
* Exposition follows the Prometheus text format: ``# HELP``/``# TYPE``
  headers, cumulative ``le`` buckets, ``_sum``/``_count`` per series.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.metrics.histogram import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    HistogramSnapshot,
)

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "MetricsSnapshot",
    "MetricFamilySnapshot",
]

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _check_name(name: str) -> str:
    if not _METRIC_NAME.match(name):
        raise ValueError(f"invalid metric name: {name!r}")
    return name


def _check_labelnames(labelnames: Sequence[str]) -> Tuple[str, ...]:
    out = tuple(labelnames)
    for label in out:
        if not _LABEL_NAME.match(label) or label.startswith("__"):
            raise ValueError(f"invalid label name: {label!r}")
    if len(set(out)) != len(out):
        raise ValueError(f"duplicate label names: {out!r}")
    return out


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    """Prometheus-style number rendering: integral floats drop the dot."""
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_labels(
    labelnames: Sequence[str],
    labelvalues: Sequence[str],
    extra: Tuple[Tuple[str, str], ...] = (),
) -> str:
    pairs = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(labelnames, labelvalues)
    ]
    pairs.extend(f'{name}="{_escape_label_value(value)}"' for name, value in extra)
    if not pairs:
        return ""
    return "{" + ",".join(pairs) + "}"


class Counter:
    """Monotonically increasing event count for one label combination."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount!r}")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Point-in-time level (queue depth, shard utilization) for one series."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value) + 0.0

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value


@dataclass
class _Family:
    """One named metric with a fixed label schema and many child series."""

    name: str
    help: str
    kind: str
    labelnames: Tuple[str, ...]
    buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
    children: Dict[Tuple[str, ...], Union[Counter, Gauge, Histogram]] = field(
        default_factory=dict
    )

    def labels(self, *labelvalues: str) -> Union[Counter, Gauge, Histogram]:
        if len(labelvalues) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames!r}, "
                f"got {len(labelvalues)} value(s)"
            )
        key = tuple(str(v) for v in labelvalues)
        child = self.children.get(key)
        if child is None:
            if self.kind == "counter":
                child = Counter()
            elif self.kind == "gauge":
                child = Gauge()
            else:
                child = Histogram(buckets=self.buckets)
            self.children[key] = child
        return child

    def snapshot(self) -> "MetricFamilySnapshot":
        series: List[Tuple[Tuple[str, ...], Union[float, HistogramSnapshot]]] = []
        for key in sorted(self.children):
            child = self.children[key]
            if isinstance(child, Histogram):
                series.append((key, child.snapshot()))
            else:
                series.append((key, child.value))
        return MetricFamilySnapshot(
            name=self.name,
            help=self.help,
            kind=self.kind,
            labelnames=self.labelnames,
            buckets=self.buckets if self.kind == "histogram" else (),
            series=tuple(series),
        )


@dataclass(frozen=True)
class MetricFamilySnapshot:
    """Frozen value of one family: ordered (labelvalues, value) series."""

    name: str
    help: str
    kind: str
    labelnames: Tuple[str, ...]
    buckets: Tuple[float, ...]
    series: Tuple[Tuple[Tuple[str, ...], Union[float, HistogramSnapshot]], ...]

    def merge(self, other: "MetricFamilySnapshot") -> "MetricFamilySnapshot":
        if (
            self.name != other.name
            or self.kind != other.kind
            or self.labelnames != other.labelnames
            or self.buckets != other.buckets
        ):
            raise ValueError(
                f"cannot merge incompatible families {self.name!r} / {other.name!r}"
            )
        merged: Dict[Tuple[str, ...], Union[float, HistogramSnapshot]] = dict(
            self.series
        )
        for key, value in other.series:
            if key not in merged:
                merged[key] = value
            elif self.kind == "counter":
                merged[key] = float(merged[key]) + float(value)  # exact event counts
            elif self.kind == "gauge":
                merged[key] = max(float(merged[key]), float(value))
            else:
                assert isinstance(value, HistogramSnapshot)
                prior = merged[key]
                assert isinstance(prior, HistogramSnapshot)
                merged[key] = prior.merge(value)
        series = tuple((key, merged[key]) for key in sorted(merged))
        return MetricFamilySnapshot(
            name=self.name,
            help=self.help,
            kind=self.kind,
            labelnames=self.labelnames,
            buckets=self.buckets,
            series=series,
        )

    def expose(self) -> str:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} {self.kind}"]
        for labelvalues, value in self.series:
            if self.kind == "histogram":
                assert isinstance(value, HistogramSnapshot)
                counts = value.bucket_counts()
                bounds = [_format_value(b) for b in value.buckets] + ["+Inf"]
                for bound, count in zip(bounds, counts):
                    labels = _render_labels(
                        self.labelnames, labelvalues, (("le", bound),)
                    )
                    lines.append(f"{self.name}_bucket{labels} {count}")
                labels = _render_labels(self.labelnames, labelvalues)
                lines.append(f"{self.name}_sum{labels} {_format_value(value.total)}")
                lines.append(f"{self.name}_count{labels} {value.count}")
            else:
                labels = _render_labels(self.labelnames, labelvalues)
                lines.append(f"{self.name}{labels} {_format_value(float(value))}")
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "name": self.name,
            "help": self.help,
            "kind": self.kind,
            "labelnames": list(self.labelnames),
            "series": [
                {
                    "labels": list(key),
                    "value": value.to_json()
                    if isinstance(value, HistogramSnapshot)
                    else value,
                }
                for key, value in self.series
            ],
        }
        if self.kind == "histogram":
            payload["buckets"] = list(self.buckets)
        return payload

    @staticmethod
    def from_json(payload: Mapping[str, Any]) -> "MetricFamilySnapshot":
        kind = payload["kind"]
        if kind not in ("counter", "gauge", "histogram"):
            raise ValueError(f"unknown metric kind: {kind!r}")
        series: List[Tuple[Tuple[str, ...], Union[float, HistogramSnapshot]]] = []
        for row in payload["series"]:
            key = tuple(str(v) for v in row["labels"])
            if kind == "histogram":
                series.append((key, HistogramSnapshot.from_json(row["value"])))
            else:
                series.append((key, float(row["value"])))
        return MetricFamilySnapshot(
            name=_check_name(payload["name"]),
            help=str(payload["help"]),
            kind=kind,
            labelnames=_check_labelnames(payload["labelnames"]),
            buckets=tuple(float(b) for b in payload.get("buckets", ())),
            series=tuple(sorted(series, key=lambda item: item[0])),
        )


@dataclass(frozen=True)
class MetricsSnapshot:
    """Frozen multi-family snapshot; the mergeable unit of observability.

    Families are ordered by name; merge is commutative/associative per
    family (counters add, gauges max, histograms multiset-union), so
    folding snapshots in ``run_cells`` submission order is bit-identical
    for any worker count.
    """

    families: Tuple[MetricFamilySnapshot, ...] = ()

    def family(self, name: str) -> MetricFamilySnapshot:
        for fam in self.families:
            if fam.name == name:
                return fam
        raise KeyError(name)

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        merged: Dict[str, MetricFamilySnapshot] = {
            fam.name: fam for fam in self.families
        }
        for fam in other.families:
            prior = merged.get(fam.name)
            merged[fam.name] = fam if prior is None else prior.merge(fam)
        return MetricsSnapshot(
            families=tuple(merged[name] for name in sorted(merged))
        )

    def expose(self) -> str:
        """Prometheus text exposition; trailing newline per the format spec."""
        if not self.families:
            return ""
        return "\n".join(fam.expose() for fam in self.families) + "\n"

    def to_json(self) -> Dict[str, Any]:
        return {"families": [fam.to_json() for fam in self.families]}

    @staticmethod
    def from_json(payload: Mapping[str, Any]) -> "MetricsSnapshot":
        families = tuple(
            sorted(
                (MetricFamilySnapshot.from_json(row) for row in payload["families"]),
                key=lambda fam: fam.name,
            )
        )
        names = [fam.name for fam in families]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate metric families in payload: {names!r}")
        return MetricsSnapshot(families=families)


class MetricsRegistry:
    """Get-or-create registry the engines publish into when armed.

    Re-registering a name with a different kind, help string, label
    schema, or bucket layout raises ``ValueError`` — series identity is
    the full schema, not just the name.
    """

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}

    def _get_or_create(
        self,
        name: str,
        help: str,
        kind: str,
        labelnames: Sequence[str],
        buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> _Family:
        _check_name(name)
        names = _check_labelnames(labelnames)
        family = self._families.get(name)
        if family is None:
            family = _Family(
                name=name, help=help, kind=kind, labelnames=names, buckets=buckets
            )
            self._families[name] = family
            return family
        if (
            family.kind != kind
            or family.help != help
            or family.labelnames != names
            or (kind == "histogram" and family.buckets != buckets)
        ):
            raise ValueError(
                f"metric {name!r} already registered with a different schema"
            )
        return family

    def counter(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> _Family:
        return self._get_or_create(name, help, "counter", labelnames)

    def gauge(self, name: str, help: str, labelnames: Sequence[str] = ()) -> _Family:
        return self._get_or_create(name, help, "gauge", labelnames)

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> _Family:
        return self._get_or_create(
            name, help, "histogram", labelnames, tuple(float(b) for b in buckets)
        )

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            families=tuple(
                self._families[name].snapshot() for name in sorted(self._families)
            )
        )

    def expose(self) -> str:
        return self.snapshot().expose()

"""Service-overhead decomposition (paper Figures 7 and 8).

The paper measures, per admitted job, the interval between arrival at a
task effector and release of the (possibly duplicated) first subtask, and
attributes it to the numbered operations of Figure 7.  On their testbed,
re-allocation intervals could not be measured directly (insufficient clock
synchronization across machines); our simulator's virtual clocks are
perfectly synchronized, so all paths are measured end-to-end directly.

Rows reproduce Figure 8:

* ``ac_without_lb``       — ops 1+2+4+2+5 (LB disabled)
* ``ac_with_lb_no_realloc`` — ops 1+2+3+2+5
* ``ac_with_lb_realloc``  — ops 1+2+3+2+6
* ``lb_no_realloc`` / ``lb_realloc`` — the paper reports the LB service's
  share of the same paths separately; the values coincide with the AC rows
  up to measurement noise, and we mirror that by attributing the identical
  intervals minus the admission-test-vs-plan cost difference.
* ``ir_ac_side``          — op 8 samples
* ``ir_other_part``       — ops 7+2 samples
* ``communication_delay`` — op 2 samples (from the network layer)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sim.kernel import USEC
from repro.sim.monitor import StatSeries

ROW_AC_WITHOUT_LB = "ac_without_lb"
ROW_AC_WITH_LB_NO_REALLOC = "ac_with_lb_no_realloc"
ROW_AC_WITH_LB_REALLOC = "ac_with_lb_realloc"
ROW_LB_NO_REALLOC = "lb_no_realloc"
ROW_LB_REALLOC = "lb_realloc"
ROW_IR_AC_SIDE = "ir_ac_side"
ROW_IR_OTHER = "ir_other_part"
ROW_COMM = "communication_delay"

ALL_ROWS = (
    ROW_AC_WITHOUT_LB,
    ROW_AC_WITH_LB_NO_REALLOC,
    ROW_AC_WITH_LB_REALLOC,
    ROW_LB_NO_REALLOC,
    ROW_LB_REALLOC,
    ROW_IR_AC_SIDE,
    ROW_IR_OTHER,
    ROW_COMM,
)

#: Figure 8 values from the paper, microseconds (mean, max), for
#: paper-vs-measured comparisons in EXPERIMENTS.md.
PAPER_FIGURE8_USEC: Dict[str, tuple] = {
    ROW_AC_WITHOUT_LB: (1114, 1248),
    ROW_AC_WITH_LB_NO_REALLOC: (1116, 1253),
    ROW_AC_WITH_LB_REALLOC: (1201, 1327),
    ROW_LB_NO_REALLOC: (1113, 1250),
    ROW_LB_REALLOC: (1198, 1319),
    ROW_IR_AC_SIDE: (17, 18),
    ROW_IR_OTHER: (662, 683),
    ROW_COMM: (322, 361),
}


@dataclass(frozen=True)
class OverheadRow:
    """One row of the Figure 8 table, in microseconds."""

    name: str
    mean_usec: float
    max_usec: float
    samples: int

    def as_tuple(self) -> tuple:
        return (self.name, self.mean_usec, self.max_usec, self.samples)


class OverheadAccounting:
    """Collects per-path delay samples and renders Figure 8 rows."""

    def __init__(self) -> None:
        self._series: Dict[str, StatSeries] = {row: StatSeries() for row in ALL_ROWS}

    # ------------------------------------------------------------------
    # Sample intake (called by middleware components)
    # ------------------------------------------------------------------
    def record_admission_path(
        self, delay: float, lb_enabled: bool, reallocated: bool
    ) -> None:
        """Record one arrival-to-release interval, classified by path."""
        if not lb_enabled:
            self._series[ROW_AC_WITHOUT_LB].add(delay)
            return
        if reallocated:
            self._series[ROW_AC_WITH_LB_REALLOC].add(delay)
            self._series[ROW_LB_REALLOC].add(delay)
        else:
            self._series[ROW_AC_WITH_LB_NO_REALLOC].add(delay)
            self._series[ROW_LB_NO_REALLOC].add(delay)

    def record_ir_ac_side(self, delay: float) -> None:
        self._series[ROW_IR_AC_SIDE].add(delay)

    def record_ir_other(self, delay: float) -> None:
        self._series[ROW_IR_OTHER].add(delay)

    def record_communication(self, delay: float) -> None:
        self._series[ROW_COMM].add(delay)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def series(self, row: str) -> StatSeries:
        return self._series[row]

    def row(self, name: str) -> Optional[OverheadRow]:
        """The named row in microseconds, or None if no samples landed."""
        series = self._series[name]
        if series.count == 0:
            return None
        return OverheadRow(
            name=name,
            mean_usec=series.mean / USEC,
            max_usec=series.maximum / USEC,
            samples=series.count,
        )

    def rows(self) -> List[OverheadRow]:
        """All rows that collected at least one sample, in table order."""
        out = []
        for name in ALL_ROWS:
            row = self.row(name)
            if row is not None:
                out.append(row)
        return out

    def max_service_delay_usec(self) -> float:
        """The largest mean across admission paths — the paper's headline
        "all delays induced by our components are less than 2 ms"."""
        candidates = [
            row.max_usec
            for row in self.rows()
            if row.name not in (ROW_IR_OTHER, ROW_COMM, ROW_IR_AC_SIDE)
        ]
        return max(candidates) if candidates else 0.0

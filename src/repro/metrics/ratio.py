"""Accepted utilization ratio — the paper's primary performance metric.

    "The performance metric we used in these evaluations is the accepted
    utilization ratio, i.e., the total utilization of jobs actually
    released divided by the total utilization of all jobs arriving."

A job's utilization is the sum of its subtask utilizations ``C_ij / D_i``.
The collector also tracks per-task-kind breakdowns and job counts, which
the experiments use for sanity assertions (e.g. periodic jobs of an
admitted task under AC-per-Task are all released).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.metrics.latency import LatencyMetrics
from repro.sched.task import Job, TaskKind


@dataclass
class KindCounters:
    """Arrival/release/rejection counters for one task kind."""

    arrived_jobs: int = 0
    released_jobs: int = 0
    rejected_jobs: int = 0
    arrived_utilization: float = 0.0
    released_utilization: float = 0.0


class MetricsCollector:
    """Accumulates arrival/release/rejection/completion statistics."""

    def __init__(self) -> None:
        self.per_kind: Dict[TaskKind, KindCounters] = {
            kind: KindCounters() for kind in TaskKind
        }
        self.latency = LatencyMetrics()
        self.completed_jobs = 0
        self._rejections_by_task: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Event hooks (called by the middleware components)
    # ------------------------------------------------------------------
    def on_arrival(self, job: Job) -> None:
        counters = self.per_kind[job.task.kind]
        counters.arrived_jobs += 1
        counters.arrived_utilization += job.utilization

    def on_release(self, job: Job) -> None:
        counters = self.per_kind[job.task.kind]
        counters.released_jobs += 1
        counters.released_utilization += job.utilization

    def on_rejection(self, job: Job) -> None:
        counters = self.per_kind[job.task.kind]
        counters.rejected_jobs += 1
        task_id = job.task.task_id
        self._rejections_by_task[task_id] = (
            self._rejections_by_task.get(task_id, 0) + 1
        )

    def on_completion(self, job: Job) -> None:
        self.completed_jobs += 1
        self.latency.on_completion(job)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def arrived_jobs(self) -> int:
        return sum(c.arrived_jobs for c in self.per_kind.values())

    @property
    def released_jobs(self) -> int:
        return sum(c.released_jobs for c in self.per_kind.values())

    @property
    def rejected_jobs(self) -> int:
        return sum(c.rejected_jobs for c in self.per_kind.values())

    @property
    def arrived_utilization(self) -> float:
        return sum(c.arrived_utilization for c in self.per_kind.values())

    @property
    def released_utilization(self) -> float:
        return sum(c.released_utilization for c in self.per_kind.values())

    @property
    def accepted_utilization_ratio(self) -> float:
        """The paper's metric; 1.0 for an empty run (nothing to reject)."""
        if self.arrived_utilization == 0:
            return 1.0
        return self.released_utilization / self.arrived_utilization

    def kind_ratio(self, kind: TaskKind) -> float:
        counters = self.per_kind[kind]
        if counters.arrived_utilization == 0:
            return 1.0
        return counters.released_utilization / counters.arrived_utilization

    def rejections_for(self, task_id: str) -> int:
        return self._rejections_by_task.get(task_id, 0)

    def summary(self) -> Dict[str, float]:
        """Flat summary dict used by experiment reports."""
        return {
            "arrived_jobs": self.arrived_jobs,
            "released_jobs": self.released_jobs,
            "rejected_jobs": self.rejected_jobs,
            "accepted_utilization_ratio": self.accepted_utilization_ratio,
            "completed_jobs": self.completed_jobs,
            "deadline_misses": self.latency.deadline_misses,
            "mean_response_time": self.latency.response_times.mean,
        }

"""Deterministic fixed-bucket latency histogram.

The production-observability layer (docs/OBSERVABILITY.md) needs a
histogram that is

* **exact** — p50/p95/p99 come from the retained sample multiset via the
  nearest-rank rule, not from bucket interpolation;
* **mergeable** — merging two histograms is a multiset union, so the
  result is bit-identical regardless of merge order or how samples were
  partitioned across ``run_cells`` workers (the same contract
  :class:`repro.api.StatSnapshot` honours, and what lint rule RL011
  polices in merge paths);
* **exposable** — cumulative ``le`` bucket counts in the Prometheus
  text exposition format are *derived* from the sorted samples with
  :func:`bisect.bisect_right`, so the buckets can never drift from the
  quantiles.

Totals are computed with :func:`math.fsum` over the *sorted* samples, so
``sum`` is a pure function of the multiset — two histograms holding the
same samples expose byte-identical text no matter the observe order.
"""

from __future__ import annotations

import math
from bisect import bisect_right, insort
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Histogram",
    "HistogramSnapshot",
]

# Prometheus' standard duration buckets, extended down to microseconds:
# admission decisions are measured in the tens of microseconds, and the
# stock 5ms lower edge would dump every sample into one bucket.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-6,
    5e-6,
    1e-5,
    5e-5,
    1e-4,
    5e-4,
    0.001,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def _validate_buckets(buckets: Sequence[float]) -> Tuple[float, ...]:
    out = tuple(float(b) + 0.0 for b in buckets)
    if not out:
        raise ValueError("histogram needs at least one bucket boundary")
    for lo, hi in zip(out, out[1:]):
        if not lo < hi:
            raise ValueError(f"bucket boundaries must strictly increase: {out!r}")
    for b in out:
        if not math.isfinite(b):
            raise ValueError("bucket boundaries must be finite (+Inf is implicit)")
    return out


def _nearest_rank(ordered: Sequence[float], q: float) -> float:
    """Exact nearest-rank quantile over an ascending sample sequence."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if not ordered:
        raise ValueError("quantile of an empty histogram")
    rank = math.ceil(q * len(ordered))
    return ordered[max(0, rank - 1)]


@dataclass(frozen=True)
class HistogramSnapshot:
    """Immutable value snapshot of a :class:`Histogram`.

    Stores the full ascending sample tuple: quantiles stay exact after
    JSON round-trips and merges, and bucket counts are re-derived rather
    than carried as separable (and thus corruptible) state.
    """

    buckets: Tuple[float, ...]
    samples: Tuple[float, ...]

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return math.fsum(self.samples)

    @property
    def min(self) -> float:
        if not self.samples:
            raise ValueError("min of an empty histogram")
        return self.samples[0]

    @property
    def max(self) -> float:
        if not self.samples:
            raise ValueError("max of an empty histogram")
        return self.samples[-1]

    def mean(self) -> float:
        if not self.samples:
            raise ValueError("mean of an empty histogram")
        return self.total / len(self.samples)

    def quantile(self, q: float) -> float:
        return _nearest_rank(self.samples, q)

    def bucket_counts(self) -> Tuple[int, ...]:
        """Cumulative counts per ``le`` boundary, +Inf bucket last."""
        cumulative = tuple(
            bisect_right(self.samples, bound) for bound in self.buckets
        )
        return cumulative + (len(self.samples),)

    def merge(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        if self.buckets != other.buckets:
            raise ValueError(
                "cannot merge histograms with different bucket layouts: "
                f"{self.buckets!r} vs {other.buckets!r}"
            )
        merged = sorted(self.samples + other.samples)
        return HistogramSnapshot(buckets=self.buckets, samples=tuple(merged))

    def to_json(self) -> Dict[str, Any]:
        return {"buckets": list(self.buckets), "samples": list(self.samples)}

    @staticmethod
    def from_json(payload: Mapping[str, Any]) -> "HistogramSnapshot":
        buckets = _validate_buckets(payload["buckets"])
        samples = tuple(sorted(float(s) + 0.0 for s in payload["samples"]))
        for s in samples:
            if not math.isfinite(s):
                raise ValueError("histogram samples must be finite")
        return HistogramSnapshot(buckets=buckets, samples=samples)


@dataclass
class Histogram:
    """Mutable exact histogram; :meth:`snapshot` freezes the state.

    Samples are kept sorted on insert (:func:`bisect.insort`), so every
    read path — quantiles, buckets, fsum totals — sees the canonical
    ascending order and is independent of observation order.
    """

    buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
    _samples: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.buckets = _validate_buckets(self.buckets)

    def observe(self, value: float) -> None:
        value = float(value) + 0.0  # normalise -0.0 without a float ==
        if not math.isfinite(value):
            raise ValueError(f"histogram observations must be finite, got {value!r}")
        insort(self._samples, value)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def total(self) -> float:
        return math.fsum(self._samples)

    def mean(self) -> float:
        if not self._samples:
            raise ValueError("mean of an empty histogram")
        return self.total / len(self._samples)

    def quantile(self, q: float) -> float:
        return _nearest_rank(self._samples, q)

    def snapshot(self) -> HistogramSnapshot:
        return HistogramSnapshot(buckets=self.buckets, samples=tuple(self._samples))

    def merge_snapshot(self, other: HistogramSnapshot) -> None:
        """Fold a snapshot's samples into this histogram (multiset union)."""
        if self.buckets != other.buckets:
            raise ValueError(
                "cannot merge histograms with different bucket layouts: "
                f"{self.buckets!r} vs {other.buckets!r}"
            )
        for sample in other.samples:
            insort(self._samples, sample)

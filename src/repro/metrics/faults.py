"""Counters for injected network faults.

One :class:`FaultMetrics` instance rides on each
:class:`~repro.net.fault.FaultInjector` and records what the chaos layer
actually did to the run: messages dropped (by cause) and deliveries whose
delay was stretched by an active spike window.  The experiment layer
surfaces the totals on run results so availability-under-failure grids
can correlate outcome degradation with injected fault volume.
"""

from __future__ import annotations

from typing import Dict


class FaultMetrics:
    """Mutable fault counters (one per network / fault injector)."""

    def __init__(self) -> None:
        #: Remote sends the injector suppressed, total and by cause
        #: ("crash", "partition", "loss").
        self.messages_dropped = 0
        self.dropped_by_cause: Dict[str, int] = {}
        #: Remote deliveries whose sampled delay an active spike scaled.
        self.messages_delay_spiked = 0

    def record_drop(self, cause: str) -> None:
        self.messages_dropped += 1
        self.dropped_by_cause[cause] = self.dropped_by_cause.get(cause, 0) + 1

    def record_spike(self) -> None:
        self.messages_delay_spiked += 1

    def to_json(self) -> Dict[str, object]:
        return {
            "messages_dropped": self.messages_dropped,
            "dropped_by_cause": dict(sorted(self.dropped_by_cause.items())),
            "messages_delay_spiked": self.messages_delay_spiked,
        }

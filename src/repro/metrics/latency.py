"""Response-time and deadline-miss accounting for released jobs.

AUB admission guarantees that *admitted* jobs meet their end-to-end
deadlines under EDMS; deadline misses in a simulation therefore indicate
either middleware overhead eating into very tight deadlines or a bug, so
experiments assert this stays (near) zero.
"""

from __future__ import annotations

from typing import Dict, List

from repro.sched.task import Job
from repro.sim.monitor import StatSeries


class LatencyMetrics:
    """Collects response times and deadline misses of completed jobs."""

    def __init__(self) -> None:
        self.response_times = StatSeries()
        self.deadline_misses = 0
        self.missed_jobs: List[tuple] = []
        self._per_task: Dict[str, StatSeries] = {}

    def on_completion(self, job: Job) -> None:
        response = job.response_time
        if response is None:
            return
        self.response_times.add(response)
        per_task = self._per_task.get(job.task.task_id)
        if per_task is None:
            per_task = StatSeries()
            self._per_task[job.task.task_id] = per_task
        per_task.add(response)
        if not job.met_deadline:
            self.deadline_misses += 1
            self.missed_jobs.append(job.key)

    def task_response_times(self, task_id: str) -> StatSeries:
        return self._per_task.get(task_id, StatSeries())

    @property
    def miss_rate(self) -> float:
        if self.response_times.count == 0:
            return 0.0
        return self.deadline_misses / self.response_times.count

"""Evaluation metrics.

* :mod:`repro.metrics.ratio` — the paper's primary metric, the **accepted
  utilization ratio**: total utilization of jobs actually released divided
  by total utilization of all jobs arriving.
* :mod:`repro.metrics.latency` — response times and deadline misses of
  released jobs.
* :mod:`repro.metrics.overhead` — per-path service delay decomposition
  reproducing the paper's Figure 8 table.
"""

from repro.metrics.latency import LatencyMetrics
from repro.metrics.overhead import OverheadAccounting, OverheadRow
from repro.metrics.ratio import MetricsCollector

__all__ = ["LatencyMetrics", "OverheadAccounting", "OverheadRow", "MetricsCollector"]

"""Evaluation metrics.

* :mod:`repro.metrics.ratio` — the paper's primary metric, the **accepted
  utilization ratio**: total utilization of jobs actually released divided
  by total utilization of all jobs arriving.
* :mod:`repro.metrics.latency` — response times and deadline misses of
  released jobs.
* :mod:`repro.metrics.overhead` — per-path service delay decomposition
  reproducing the paper's Figure 8 table.
* :mod:`repro.metrics.registry` / :mod:`repro.metrics.histogram` — the
  production-observability layer: deterministic mergeable
  Counter/Gauge/Histogram families with Prometheus text exposition
  (see docs/OBSERVABILITY.md).
"""

from repro.metrics.histogram import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    HistogramSnapshot,
)
from repro.metrics.latency import LatencyMetrics
from repro.metrics.overhead import OverheadAccounting, OverheadRow
from repro.metrics.ratio import MetricsCollector
from repro.metrics.registry import (
    MetricFamilySnapshot,
    MetricsRegistry,
    MetricsSnapshot,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Histogram",
    "HistogramSnapshot",
    "LatencyMetrics",
    "MetricFamilySnapshot",
    "MetricsCollector",
    "MetricsRegistry",
    "MetricsSnapshot",
    "OverheadAccounting",
    "OverheadRow",
]

"""Workload models and generators for the paper's experiments.

* :class:`~repro.workloads.model.Workload` — a task set plus the processor
  topology it runs on.
* :mod:`repro.workloads.arrivals` — periodic and Poisson arrival plans.
* :mod:`repro.workloads.generator` — the section 7.1 random workload
  (balanced synthetic utilization 0.5 on five processors).
* :mod:`repro.workloads.imbalanced` — the section 7.2 imbalanced workload
  (three loaded processors at 0.7, two replica-only processors).
"""

from repro.workloads.arrivals import ArrivalPlan, build_arrival_plan
from repro.workloads.generator import RandomWorkloadParams, generate_random_workload
from repro.workloads.imbalanced import (
    ImbalancedWorkloadParams,
    generate_imbalanced_workload,
)
from repro.workloads.model import Workload

__all__ = [
    "ArrivalPlan",
    "build_arrival_plan",
    "RandomWorkloadParams",
    "generate_random_workload",
    "ImbalancedWorkloadParams",
    "generate_imbalanced_workload",
    "Workload",
]

"""The :class:`Workload` container: tasks + processor topology."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import WorkloadSpecError
from repro.sched.task import TaskKind, TaskSpec

#: Default name of the central task-manager processor.
DEFAULT_MANAGER_NODE = "task_manager"


@dataclass(frozen=True)
class Workload:
    """A complete workload: end-to-end tasks over named processors.

    ``app_nodes`` are the application processors; the AC/LB services run on
    ``manager_node`` (the paper's dedicated "Task Manager" machine).
    """

    tasks: Tuple[TaskSpec, ...]
    app_nodes: Tuple[str, ...]
    manager_node: str = DEFAULT_MANAGER_NODE

    def __post_init__(self) -> None:
        if not self.tasks:
            raise WorkloadSpecError("workload has no tasks")
        if not self.app_nodes:
            raise WorkloadSpecError("workload has no application processors")
        if self.manager_node in self.app_nodes:
            raise WorkloadSpecError(
                f"manager node {self.manager_node!r} cannot also be an "
                "application processor"
            )
        if len(set(self.app_nodes)) != len(self.app_nodes):
            raise WorkloadSpecError("duplicate application processor names")
        seen = set()
        nodes = set(self.app_nodes)
        for task in self.tasks:
            if task.task_id in seen:
                raise WorkloadSpecError(f"duplicate task id {task.task_id!r}")
            seen.add(task.task_id)
            for subtask in task.subtasks:
                for node in subtask.eligible:
                    if node not in nodes:
                        raise WorkloadSpecError(
                            f"task {task.task_id} subtask {subtask.index} "
                            f"references unknown processor {node!r}"
                        )

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def periodic_tasks(self) -> List[TaskSpec]:
        return [t for t in self.tasks if t.kind is TaskKind.PERIODIC]

    @property
    def aperiodic_tasks(self) -> List[TaskSpec]:
        return [t for t in self.tasks if t.kind is TaskKind.APERIODIC]

    def task(self, task_id: str) -> TaskSpec:
        for t in self.tasks:
            if t.task_id == task_id:
                return t
        raise WorkloadSpecError(f"no task named {task_id!r}")

    def static_utilization(self) -> Dict[str, float]:
        """Per-processor synthetic utilization if all tasks were current
        simultaneously and homed (the workload generators' calibration
        target: 0.5 in section 7.1, 0.7 in section 7.2)."""
        totals: Dict[str, float] = {n: 0.0 for n in self.app_nodes}
        for task in self.tasks:
            for subtask in task.subtasks:
                totals[subtask.home] += subtask.execution_time / task.deadline
        return totals

    def replicated(self) -> bool:
        """Whether any subtask has at least one replica (criterion C3)."""
        return any(
            subtask.replicas for task in self.tasks for subtask in task.subtasks
        )

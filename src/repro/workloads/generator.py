"""Random workload generator (paper section 7.1).

    "We first randomly generated 10 sets of 9 tasks, each including 4
    aperiodic tasks and 5 periodic tasks.  The number of subtasks per task
    is uniformly distributed between 1 and 5.  Subtasks are randomly
    assigned to 5 application processors.  Task deadlines are randomly
    chosen between 250 ms and 10 s.  The periods of periodic tasks are
    equal to their deadlines.  The arrival of aperiodic tasks follows a
    Poisson distribution.  The synthetic utilization of every processor
    is 0.5, if all tasks arrive simultaneously.  Each subtask is assigned
    to a processor, and has a duplicate sitting on a different processor
    which is randomly picked from the other 4 application processors."

Execution times are drawn as random weights and then scaled per processor
so the all-tasks-current synthetic utilization hits the target exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import WorkloadSpecError
from repro.sched.task import SubtaskSpec, TaskKind, TaskSpec
from repro.workloads.model import DEFAULT_MANAGER_NODE, Workload


@dataclass(frozen=True)
class RandomWorkloadParams:
    """Knobs of the section 7.1 generator (defaults = the paper's)."""

    n_periodic: int = 5
    n_aperiodic: int = 4
    n_processors: int = 5
    min_subtasks: int = 1
    max_subtasks: int = 5
    min_deadline: float = 0.25
    max_deadline: float = 10.0
    target_utilization: float = 0.5
    replicas_per_subtask: int = 1
    processor_prefix: str = "app"
    manager_node: str = DEFAULT_MANAGER_NODE
    #: Stagger each periodic task's first arrival uniformly inside its
    #: period.  The synthetic-utilization calibration target is defined for
    #: the hypothetical "all tasks arrive simultaneously" case regardless.
    randomize_phases: bool = True

    def __post_init__(self) -> None:
        if self.n_periodic < 0 or self.n_aperiodic < 0:
            raise WorkloadSpecError("task counts must be >= 0")
        if self.n_periodic + self.n_aperiodic == 0:
            raise WorkloadSpecError("need at least one task")
        if not 1 <= self.min_subtasks <= self.max_subtasks:
            raise WorkloadSpecError("bad subtask count range")
        if not 0 < self.min_deadline <= self.max_deadline:
            raise WorkloadSpecError("bad deadline range")
        if not 0 < self.target_utilization < 1:
            raise WorkloadSpecError("target utilization must be in (0, 1)")
        if self.n_processors < 2 and self.replicas_per_subtask > 0:
            raise WorkloadSpecError("replication needs at least 2 processors")
        if self.replicas_per_subtask >= self.n_processors:
            raise WorkloadSpecError("cannot replicate onto more nodes than exist")


def _processor_names(prefix: str, count: int) -> List[str]:
    return [f"{prefix}{i + 1}" for i in range(count)]


def _scale_to_target(
    draft: List[dict],
    processors: List[str],
    target: float,
) -> None:
    """Scale subtask utilizations per processor so each processor's
    all-current synthetic utilization equals ``target``.

    ``draft`` entries carry ``home`` and raw ``weight``; this sets their
    final ``utilization`` in place.  Processors that received no subtasks
    are left empty (possible for tiny task counts)."""
    per_node: Dict[str, float] = {p: 0.0 for p in processors}
    for entry in draft:
        per_node[entry["home"]] += entry["weight"]
    for entry in draft:
        node_weight = per_node[entry["home"]]
        entry["utilization"] = entry["weight"] / node_weight * target


def generate_random_workload(
    rng: random.Random,
    params: Optional[RandomWorkloadParams] = None,
) -> Workload:
    """Generate one balanced random workload per the section 7.1 recipe."""
    params = params or RandomWorkloadParams()
    processors = _processor_names(params.processor_prefix, params.n_processors)

    kinds = [TaskKind.PERIODIC] * params.n_periodic + [
        TaskKind.APERIODIC
    ] * params.n_aperiodic

    for _attempt in range(100):
        draft: List[dict] = []
        task_meta: List[Tuple[str, TaskKind, float, int]] = []
        for i, kind in enumerate(kinds):
            prefix = "P" if kind is TaskKind.PERIODIC else "A"
            task_id = f"{prefix}{i + 1}"
            deadline = rng.uniform(params.min_deadline, params.max_deadline)
            n_subtasks = rng.randint(params.min_subtasks, params.max_subtasks)
            phase = 0.0
            if params.randomize_phases and kind is TaskKind.PERIODIC:
                phase = rng.uniform(0.0, deadline)
            task_meta.append((task_id, kind, deadline, n_subtasks, phase))
            for index in range(n_subtasks):
                home = rng.choice(processors)
                others = [p for p in processors if p != home]
                replicas = tuple(
                    rng.sample(others, params.replicas_per_subtask)
                )
                draft.append(
                    {
                        "task_id": task_id,
                        "index": index,
                        "home": home,
                        "replicas": replicas,
                        "weight": rng.uniform(0.5, 1.5),
                    }
                )
        used_nodes = {entry["home"] for entry in draft}
        if used_nodes != set(processors):
            continue  # re-draw: every processor must host load to calibrate
        _scale_to_target(draft, processors, params.target_utilization)
        tasks = _assemble_tasks(draft, task_meta)
        if tasks is not None:
            return Workload(
                tasks=tuple(tasks),
                app_nodes=tuple(processors),
                manager_node=params.manager_node,
            )
    raise WorkloadSpecError(
        "could not generate a feasible workload in 100 attempts; "
        "target utilization or subtask counts are too extreme"
    )


def _assemble_tasks(
    draft: List[dict],
    task_meta: List[Tuple[str, TaskKind, float, int, float]],
) -> Optional[List[TaskSpec]]:
    """Turn scaled draft entries into TaskSpecs; None if any task's total
    execution time would exceed its deadline (caller re-draws)."""
    by_task: Dict[str, List[dict]] = {}
    for entry in draft:
        by_task.setdefault(entry["task_id"], []).append(entry)
    tasks: List[TaskSpec] = []
    for task_id, kind, deadline, _n, phase in task_meta:
        entries = sorted(by_task[task_id], key=lambda e: e["index"])
        subtasks = []
        total_exec = 0.0
        for entry in entries:
            execution_time = entry["utilization"] * deadline
            total_exec += execution_time
            subtasks.append(
                SubtaskSpec(
                    index=entry["index"],
                    execution_time=execution_time,
                    home=entry["home"],
                    replicas=entry["replicas"],
                )
            )
        if total_exec > deadline:
            return None
        tasks.append(
            TaskSpec(
                task_id=task_id,
                kind=kind,
                deadline=deadline,
                subtasks=tuple(subtasks),
                period=deadline if kind is TaskKind.PERIODIC else None,
                phase=phase,
            )
        )
    return tasks

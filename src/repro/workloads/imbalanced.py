"""Imbalanced workload generator (paper section 7.2).

    "We divided the 5 application processors into two groups.  One group
    contains 3 processors hosting all tasks.  The other group contains 2
    processors hosting all duplicates.  10 task sets are randomly
    generated as in the above experiment, except that all subtasks were
    randomly assigned to 3 application processors in the first group and
    the number of subtasks per task is uniformly distributed between 1
    and 3.  The synthetic utilization for any of these three processors
    is 0.7.  Each subtask has one replica sitting on one processor in the
    second group."

This workload is the paper's stand-in for a dynamic CPS where a subset of
processors experiences heavy load (e.g. a blocked flow valve launching
aperiodic alert and diagnostic tasks near the affected sensors) while
replica capacity elsewhere sits idle — the scenario where load balancing
pays off.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import WorkloadSpecError
from repro.workloads.generator import RandomWorkloadParams, generate_random_workload
from repro.workloads.model import DEFAULT_MANAGER_NODE, Workload
from repro.sched.task import SubtaskSpec, TaskSpec


@dataclass(frozen=True)
class ImbalancedWorkloadParams:
    """Knobs of the section 7.2 generator (defaults = the paper's)."""

    n_periodic: int = 5
    n_aperiodic: int = 4
    n_loaded_processors: int = 3
    n_replica_processors: int = 2
    min_subtasks: int = 1
    max_subtasks: int = 3
    min_deadline: float = 0.25
    max_deadline: float = 10.0
    target_utilization: float = 0.7
    processor_prefix: str = "app"
    manager_node: str = DEFAULT_MANAGER_NODE

    def __post_init__(self) -> None:
        if self.n_loaded_processors < 1 or self.n_replica_processors < 1:
            raise WorkloadSpecError("need at least one processor per group")
        if not 0 < self.target_utilization < 1:
            raise WorkloadSpecError("target utilization must be in (0, 1)")


def generate_imbalanced_workload(
    rng: random.Random,
    params: Optional[ImbalancedWorkloadParams] = None,
) -> Workload:
    """Generate one imbalanced workload per the section 7.2 recipe.

    Implemented by generating a balanced workload over the loaded group
    only, then re-homing every replica onto a randomly chosen processor of
    the replica group.
    """
    params = params or ImbalancedWorkloadParams()
    base_params = RandomWorkloadParams(
        n_periodic=params.n_periodic,
        n_aperiodic=params.n_aperiodic,
        n_processors=params.n_loaded_processors,
        min_subtasks=params.min_subtasks,
        max_subtasks=params.max_subtasks,
        min_deadline=params.min_deadline,
        max_deadline=params.max_deadline,
        target_utilization=params.target_utilization,
        replicas_per_subtask=0 if params.n_loaded_processors == 1 else 1,
        processor_prefix=params.processor_prefix,
        manager_node=params.manager_node,
    )
    base = generate_random_workload(rng, base_params)
    loaded = list(base.app_nodes)
    replica_nodes = [
        f"{params.processor_prefix}{params.n_loaded_processors + i + 1}"
        for i in range(params.n_replica_processors)
    ]
    tasks: List[TaskSpec] = []
    for task in base.tasks:
        subtasks = tuple(
            SubtaskSpec(
                index=s.index,
                execution_time=s.execution_time,
                home=s.home,
                replicas=(rng.choice(replica_nodes),),
            )
            for s in task.subtasks
        )
        tasks.append(
            TaskSpec(
                task_id=task.task_id,
                kind=task.kind,
                deadline=task.deadline,
                subtasks=subtasks,
                period=task.period,
                phase=task.phase,
            )
        )
    return Workload(
        tasks=tuple(tasks),
        app_nodes=tuple(loaded + replica_nodes),
        manager_node=params.manager_node,
    )

"""Arrival plans: when each job of each task arrives.

Periodic tasks release jobs at ``phase + k * period``.  Aperiodic task
arrivals follow a Poisson process (paper section 7.1) whose mean
interarrival time defaults to ``aperiodic_interarrival_factor`` times the
task's end-to-end deadline — a load knob the experiments sweep; the
paper's text fixes only the distribution, not the rate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.errors import WorkloadSpecError
from repro.sched.task import TaskKind, TaskSpec
from repro.workloads.model import Workload


@dataclass(frozen=True)
class ArrivalPlan:
    """Concrete arrival times for every job of every task in a run."""

    times: Dict[str, Tuple[float, ...]]
    horizon: float

    @property
    def total_jobs(self) -> int:
        return sum(len(ts) for ts in self.times.values())

    def events(self) -> Iterator[Tuple[float, str, int]]:
        """All (arrival_time, task_id, job_index) in time order."""
        merged: List[Tuple[float, str, int]] = []
        for task_id, task_times in self.times.items():
            for index, t in enumerate(task_times):
                merged.append((t, task_id, index))
        merged.sort()
        return iter(merged)


def periodic_arrivals(task: TaskSpec, horizon: float) -> List[float]:
    """Arrival times of a periodic task within [0, horizon)."""
    if task.kind is not TaskKind.PERIODIC:
        raise WorkloadSpecError(f"task {task.task_id} is not periodic")
    times: List[float] = []
    t = task.phase
    while t < horizon:
        times.append(t)
        t += task.period
    return times


def poisson_arrivals(
    task: TaskSpec,
    horizon: float,
    mean_interarrival: float,
    rng: random.Random,
) -> List[float]:
    """Poisson arrival times for an aperiodic task within [0, horizon)."""
    if task.kind is not TaskKind.APERIODIC:
        raise WorkloadSpecError(f"task {task.task_id} is not aperiodic")
    if mean_interarrival <= 0:
        raise WorkloadSpecError(
            f"mean interarrival must be > 0, got {mean_interarrival}"
        )
    times: List[float] = []
    t = task.phase + rng.expovariate(1.0 / mean_interarrival)
    while t < horizon:
        times.append(t)
        t += rng.expovariate(1.0 / mean_interarrival)
    return times


def build_arrival_plan(
    workload: Workload,
    horizon: float,
    rng: random.Random,
    aperiodic_interarrival_factor: float = 2.0,
) -> ArrivalPlan:
    """Generate the full arrival plan for one run.

    ``aperiodic_interarrival_factor`` scales each aperiodic task's mean
    interarrival time relative to its deadline; smaller values mean a more
    heavily loaded system.
    """
    if horizon <= 0:
        raise WorkloadSpecError(f"horizon must be > 0, got {horizon}")
    times: Dict[str, Tuple[float, ...]] = {}
    for task in workload.tasks:
        if task.kind is TaskKind.PERIODIC:
            times[task.task_id] = tuple(periodic_arrivals(task, horizon))
        else:
            mean = aperiodic_interarrival_factor * task.deadline
            times[task.task_id] = tuple(
                poisson_arrivals(task, horizon, mean, rng)
            )
    return ArrivalPlan(times=times, horizon=horizon)

"""Front-end configuration engine and DAnCE-lite deployment pipeline.

Paper sections 4 and 6: application developers describe their CPS through
the four questionnaire answers (:mod:`repro.config.characteristics`); the
engine maps them to service strategies per Table 1
(:mod:`repro.config.mapping`), builds an XML deployment plan
(:mod:`repro.config.plan`, :mod:`repro.config.xml_io`), refuses invalid
configurations (:mod:`repro.config.validation`) and deploys through the
staged DAnCE pipeline (:mod:`repro.config.dance`).
"""

from repro.config.characteristics import (
    ApplicationCharacteristics,
    OverheadTolerance,
)
from repro.config.dance import (
    DeploymentEngine,
    ExecutionManager,
    NodeApplication,
    NodeApplicationManager,
    PlanLauncher,
    default_repository,
)
from repro.config.engine import ConfigurationEngine, EngineResult
from repro.config.mapping import map_characteristics
from repro.config.plan import (
    ComponentInstance,
    Connection,
    DeploymentPlan,
    build_deployment_plan,
)
from repro.config.validation import validate_plan
from repro.config.workload_spec import (
    load_workload,
    parse_workload_json,
    parse_workload_text,
    workload_to_json,
)
from repro.config.xml_io import parse_xml, to_xml

__all__ = [
    "ApplicationCharacteristics",
    "OverheadTolerance",
    "DeploymentEngine",
    "ExecutionManager",
    "NodeApplication",
    "NodeApplicationManager",
    "PlanLauncher",
    "default_repository",
    "ConfigurationEngine",
    "EngineResult",
    "map_characteristics",
    "ComponentInstance",
    "Connection",
    "DeploymentPlan",
    "build_deployment_plan",
    "validate_plan",
    "load_workload",
    "parse_workload_json",
    "parse_workload_text",
    "workload_to_json",
    "parse_xml",
    "to_xml",
]

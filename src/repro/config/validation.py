"""Deployment-plan feasibility checks.

The paper's configuration engine "performs a feasibility check on
configuration settings, to ensure correct handling of dependent
constraints" — most prominently refusing AC-per-Task + IR-per-Job.  This
module checks a whole :class:`~repro.config.plan.DeploymentPlan`:

* the AC strategy triple is a valid combination;
* an LB instance exists iff the AC's lb_strategy enables it, and they are
  colocated on the task manager;
* exactly one TE and IR per application processor, with matching
  processor_id properties and IR strategies consistent with the AC's;
* TE release modes consistent with the AC/LB strategies;
* subtask instances carry EDMS-consistent priorities (a task with a
  shorter end-to-end deadline never has a lower-urgency priority value);
* every task chain is complete on every eligible processor and the first
  stage's home processor hosts a TE.
"""

from __future__ import annotations

import json
from collections import defaultdict
from typing import Dict, List

from repro.config.plan import (
    DeploymentPlan,
    IMPL_AC,
    IMPL_FI_SUBTASK,
    IMPL_IR,
    IMPL_LAST_SUBTASK,
    IMPL_LB,
    IMPL_TE,
)
from repro.config.workload_spec import parse_workload_json
from repro.core.strategies import ACStrategy, LBStrategy
from repro.errors import ConfigurationError
from repro.workloads.model import Workload


def validate_plan(plan: DeploymentPlan) -> Workload:
    """Validate ``plan``; returns the embedded workload on success.

    Raises :class:`ConfigurationError` (or the more specific
    :class:`~repro.errors.InvalidStrategyCombination`) on any violation.
    """
    combo = plan.combo()  # raises on missing/duplicated AC
    combo.validate()
    workload = _embedded_workload(plan)
    _check_services(plan, combo)
    _check_effectors_and_resetters(plan, combo, workload)
    _check_subtasks(plan, combo, workload)
    return workload


def _embedded_workload(plan: DeploymentPlan) -> Workload:
    if not plan.workload_json:
        raise ConfigurationError("plan has no embedded workload")
    try:
        return parse_workload_json(plan.workload_json)
    except json.JSONDecodeError as exc:  # pragma: no cover - parse guards
        raise ConfigurationError(f"embedded workload is invalid: {exc}") from None


def _check_services(plan: DeploymentPlan, combo) -> None:
    ac = plan.instances_of(IMPL_AC)[0]
    if ac.node != plan.manager_node:
        raise ConfigurationError(
            f"AC instance must live on the task manager {plan.manager_node!r}, "
            f"found on {ac.node!r}"
        )
    lbs = plan.instances_of(IMPL_LB)
    lb_enabled = combo.lb is not LBStrategy.NONE
    if lb_enabled and len(lbs) != 1:
        raise ConfigurationError(
            f"lb_strategy={combo.lb.value} requires exactly one LB instance, "
            f"found {len(lbs)}"
        )
    if not lb_enabled and lbs:
        raise ConfigurationError(
            "plan deploys an LB instance but the AC disables load balancing"
        )
    if lb_enabled:
        lb = lbs[0]
        if lb.node != plan.manager_node:
            raise ConfigurationError(
                "LB instance must be colocated with the AC on the task manager"
            )
        facet_conns = {
            (c.source_instance, c.source_port, c.target_instance)
            for c in plan.connections
            if c.kind == "facet"
        }
        if (ac.instance_id, "locator", lb.instance_id) not in facet_conns:
            raise ConfigurationError(
                "missing facet connection: AC locator -> LB location"
            )
        if (lb.instance_id, "admission_state", ac.instance_id) not in facet_conns:
            raise ConfigurationError(
                "missing facet connection: LB admission_state -> AC"
            )


def _check_effectors_and_resetters(
    plan: DeploymentPlan, combo, workload: Workload
) -> None:
    expected_mode = (
        "per_task"
        if combo.ac is ACStrategy.PER_TASK and combo.lb is not LBStrategy.PER_JOB
        else "per_job"
    )
    te_nodes: Dict[str, int] = defaultdict(int)
    for te in plan.instances_of(IMPL_TE):
        props = te.property_dict()
        if props.get("processor_id") != te.node:
            raise ConfigurationError(
                f"TE {te.instance_id!r}: processor_id "
                f"{props.get('processor_id')!r} != node {te.node!r}"
            )
        if props.get("release_mode") != expected_mode:
            raise ConfigurationError(
                f"TE {te.instance_id!r}: release_mode "
                f"{props.get('release_mode')!r} inconsistent with strategies "
                f"{combo.label} (expected {expected_mode!r})"
            )
        te_nodes[te.node] += 1
    ir_nodes: Dict[str, int] = defaultdict(int)
    for ir in plan.instances_of(IMPL_IR):
        props = ir.property_dict()
        if props.get("processor_id") != ir.node:
            raise ConfigurationError(
                f"IR {ir.instance_id!r}: processor_id mismatch"
            )
        if props.get("strategy") != combo.ir.value:
            raise ConfigurationError(
                f"IR {ir.instance_id!r}: strategy {props.get('strategy')!r} "
                f"!= AC's ir_strategy {combo.ir.value!r}"
            )
        ir_nodes[ir.node] += 1
    for node in workload.app_nodes:
        if te_nodes.get(node, 0) != 1:
            raise ConfigurationError(
                f"application processor {node!r} needs exactly one TE, "
                f"found {te_nodes.get(node, 0)}"
            )
        if ir_nodes.get(node, 0) != 1:
            raise ConfigurationError(
                f"application processor {node!r} needs exactly one IR, "
                f"found {ir_nodes.get(node, 0)}"
            )


def _check_subtasks(plan: DeploymentPlan, combo, workload: Workload) -> None:
    subtask_instances = plan.instances_of(IMPL_FI_SUBTASK) + plan.instances_of(
        IMPL_LAST_SUBTASK
    )
    deployed = {}
    priorities: Dict[str, float] = {}
    for inst in subtask_instances:
        props = inst.property_dict()
        key = (props["task_id"], props["subtask_index"], inst.node)
        if key in deployed:
            raise ConfigurationError(
                f"duplicate subtask instance for {key}"
            )
        deployed[key] = inst
        if props.get("ir_mode") != combo.ir.value:
            raise ConfigurationError(
                f"subtask {inst.instance_id!r}: ir_mode "
                f"{props.get('ir_mode')!r} != AC's ir_strategy"
            )
        task_id = props["task_id"]
        priority = float(props["priority"])
        if task_id in priorities and priorities[task_id] != priority:
            raise ConfigurationError(
                f"task {task_id!r} has inconsistent priorities across "
                "subtask instances"
            )
        priorities[task_id] = priority

    by_deadline: List = sorted(workload.tasks, key=lambda t: t.deadline)
    for earlier, later in zip(by_deadline, by_deadline[1:]):
        if earlier.task_id in priorities and later.task_id in priorities:
            if priorities[earlier.task_id] > priorities[later.task_id]:
                raise ConfigurationError(
                    f"EDMS violation: task {earlier.task_id!r} (deadline "
                    f"{earlier.deadline}) has lower urgency than "
                    f"{later.task_id!r} (deadline {later.deadline})"
                )

    for task in workload.tasks:
        last_index = task.n_subtasks - 1
        for subtask in task.subtasks:
            expected_impl = (
                IMPL_LAST_SUBTASK if subtask.index == last_index else IMPL_FI_SUBTASK
            )
            for node in subtask.eligible:
                key = (task.task_id, subtask.index, node)
                inst = deployed.get(key)
                if inst is None:
                    raise ConfigurationError(
                        f"missing subtask instance for task {task.task_id!r} "
                        f"stage {subtask.index} on {node!r}"
                    )
                if inst.implementation != expected_impl:
                    raise ConfigurationError(
                        f"subtask {inst.instance_id!r}: implementation "
                        f"{inst.implementation!r}, expected {expected_impl!r}"
                    )
        arrival_node = task.subtasks[0].home
        te_id = f"TE-{arrival_node}"
        try:
            plan.instance(te_id)
        except ConfigurationError:
            raise ConfigurationError(
                f"task {task.task_id!r} arrives on {arrival_node!r} "
                f"but no TE is deployed there"
            ) from None

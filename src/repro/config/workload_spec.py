"""Workload specification files.

The paper's developer "first provides a workload specification file which
describes each end-to-end task and where its subtasks execute".  Two
formats are supported:

**JSON** (canonical, round-trippable)::

    {
      "manager": "task_manager",
      "processors": ["app1", "app2"],
      "tasks": [
        {
          "id": "P1", "kind": "periodic",
          "deadline": 1.0, "period": 1.0, "phase": 0.0,
          "subtasks": [
            {"execution_time": 0.05, "processor": "app1",
             "replicas": ["app2"]}
          ]
        }
      ]
    }

**Text** (human-authorable, line based)::

    processors app1 app2
    manager task_manager
    task P1 periodic deadline=1.0 period=1.0
      subtask exec=0.05 on=app1 replicas=app2
    task A1 aperiodic deadline=0.5
      subtask exec=0.02 on=app2

Comments (``#``) and blank lines are ignored in the text format.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.errors import WorkloadSpecError
from repro.sched.task import SubtaskSpec, TaskKind, TaskSpec
from repro.workloads.model import DEFAULT_MANAGER_NODE, Workload


# ----------------------------------------------------------------------
# JSON format
# ----------------------------------------------------------------------
def workload_to_json(workload: Workload, indent: Optional[int] = 2) -> str:
    """Serialize ``workload`` to the canonical JSON format."""
    doc: Dict[str, Any] = {
        "manager": workload.manager_node,
        "processors": list(workload.app_nodes),
        "tasks": [],
    }
    for task in workload.tasks:
        entry: Dict[str, Any] = {
            "id": task.task_id,
            "kind": task.kind.value,
            "deadline": task.deadline,
            "phase": task.phase,
            "subtasks": [
                {
                    "execution_time": s.execution_time,
                    "processor": s.home,
                    "replicas": list(s.replicas),
                }
                for s in task.subtasks
            ],
        }
        if task.period is not None:
            entry["period"] = task.period
        doc["tasks"].append(entry)
    return json.dumps(doc, indent=indent)


def parse_workload_json(text: str) -> Workload:
    """Parse the canonical JSON workload format."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise WorkloadSpecError(f"invalid JSON workload spec: {exc}") from None
    if not isinstance(doc, dict):
        raise WorkloadSpecError("workload spec must be a JSON object")
    try:
        processors = [str(p) for p in doc["processors"]]
        raw_tasks = doc["tasks"]
    except KeyError as exc:
        raise WorkloadSpecError(f"workload spec missing key {exc}") from None
    manager = str(doc.get("manager", DEFAULT_MANAGER_NODE))
    tasks: List[TaskSpec] = []
    for raw in raw_tasks:
        tasks.append(_task_from_dict(raw))
    return Workload(
        tasks=tuple(tasks), app_nodes=tuple(processors), manager_node=manager
    )


def _task_from_dict(raw: Dict[str, Any]) -> TaskSpec:
    try:
        task_id = str(raw["id"])
        kind = TaskKind(str(raw["kind"]).lower())
        deadline = float(raw["deadline"])
        raw_subtasks = raw["subtasks"]
    except KeyError as exc:
        raise WorkloadSpecError(f"task entry missing key {exc}") from None
    except ValueError as exc:
        raise WorkloadSpecError(f"bad task entry: {exc}") from None
    subtasks = []
    for index, raw_sub in enumerate(raw_subtasks):
        try:
            subtasks.append(
                SubtaskSpec(
                    index=index,
                    execution_time=float(raw_sub["execution_time"]),
                    home=str(raw_sub["processor"]),
                    replicas=tuple(
                        str(r) for r in raw_sub.get("replicas", ())
                    ),
                )
            )
        except KeyError as exc:
            raise WorkloadSpecError(
                f"task {task_id} subtask {index} missing key {exc}"
            ) from None
    period = raw.get("period")
    return TaskSpec(
        task_id=task_id,
        kind=kind,
        deadline=deadline,
        subtasks=tuple(subtasks),
        period=float(period) if period is not None else None,
        phase=float(raw.get("phase", 0.0)),
    )


# ----------------------------------------------------------------------
# Text format
# ----------------------------------------------------------------------
def parse_workload_text(text: str) -> Workload:
    """Parse the line-based text workload format."""
    processors: List[str] = []
    manager = DEFAULT_MANAGER_NODE
    tasks: List[TaskSpec] = []
    current: Optional[Dict[str, Any]] = None

    def finish_current() -> None:
        nonlocal current
        if current is None:
            return
        if not current["subtasks"]:
            raise WorkloadSpecError(
                f"task {current['id']} has no subtask lines"
            )
        tasks.append(
            TaskSpec(
                task_id=current["id"],
                kind=current["kind"],
                deadline=current["deadline"],
                subtasks=tuple(current["subtasks"]),
                period=current["period"],
                phase=current["phase"],
            )
        )
        current = None

    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        keyword = fields[0].lower()
        if keyword == "processors":
            processors.extend(fields[1:])
        elif keyword == "manager":
            if len(fields) != 2:
                raise WorkloadSpecError(f"line {lineno}: manager takes one name")
            manager = fields[1]
        elif keyword == "task":
            finish_current()
            current = _parse_task_line(fields, lineno)
        elif keyword == "subtask":
            if current is None:
                raise WorkloadSpecError(
                    f"line {lineno}: subtask before any task line"
                )
            current["subtasks"].append(
                _parse_subtask_line(fields, len(current["subtasks"]), lineno)
            )
        else:
            raise WorkloadSpecError(
                f"line {lineno}: unknown keyword {keyword!r}"
            )
    finish_current()
    if not processors:
        raise WorkloadSpecError("spec declares no processors")
    return Workload(
        tasks=tuple(tasks), app_nodes=tuple(processors), manager_node=manager
    )


def _kv_fields(fields: List[str], lineno: int) -> Dict[str, str]:
    out: Dict[str, str] = {}
    for field in fields:
        if "=" not in field:
            raise WorkloadSpecError(
                f"line {lineno}: expected key=value, got {field!r}"
            )
        key, value = field.split("=", 1)
        out[key.lower()] = value
    return out


def _parse_task_line(fields: List[str], lineno: int) -> Dict[str, Any]:
    if len(fields) < 3:
        raise WorkloadSpecError(
            f"line {lineno}: task line needs 'task <id> <kind> key=value...'"
        )
    task_id = fields[1]
    try:
        kind = TaskKind(fields[2].lower())
    except ValueError:
        raise WorkloadSpecError(
            f"line {lineno}: task kind must be periodic or aperiodic, "
            f"got {fields[2]!r}"
        ) from None
    kv = _kv_fields(fields[3:], lineno)
    if "deadline" not in kv:
        raise WorkloadSpecError(f"line {lineno}: task needs deadline=")
    return {
        "id": task_id,
        "kind": kind,
        "deadline": float(kv["deadline"]),
        "period": float(kv["period"]) if "period" in kv else None,
        "phase": float(kv.get("phase", 0.0)),
        "subtasks": [],
    }


def _parse_subtask_line(
    fields: List[str], index: int, lineno: int
) -> SubtaskSpec:
    kv = _kv_fields(fields[1:], lineno)
    if "exec" not in kv or "on" not in kv:
        raise WorkloadSpecError(
            f"line {lineno}: subtask needs exec= and on="
        )
    replicas = tuple(
        r for r in kv.get("replicas", "").split(",") if r
    )
    return SubtaskSpec(
        index=index,
        execution_time=float(kv["exec"]),
        home=kv["on"],
        replicas=replicas,
    )


# ----------------------------------------------------------------------
# File loading
# ----------------------------------------------------------------------
def load_workload(path: Union[str, Path]) -> Workload:
    """Load a workload spec, dispatching on file extension.

    ``.json`` files use the JSON format; anything else uses the text
    format.
    """
    path = Path(path)
    text = path.read_text()
    if path.suffix.lower() == ".json":
        return parse_workload_json(text)
    return parse_workload_text(text)

"""CPS application characteristics — the paper's four questions.

The front-end configuration engine asks the application developer
(paper section 6):

1. Does your application allow job skipping?            (criterion C1)
2. Does your application have replicated components?    (criterion C3)
3. Does your application require state persistence?     (criterion C2)
4. How much extra overhead can you accept as it potentially improves
   schedulability?  [none (N), some per task (PT), some per job (PJ)]
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping

from repro.errors import ConfigurationError


class OverheadTolerance(enum.Enum):
    """Answer to question 4: acceptable extra overhead."""

    NONE = "N"
    PER_TASK = "PT"
    PER_JOB = "PJ"


@dataclass(frozen=True)
class ApplicationCharacteristics:
    """Answers to the configuration engine's questionnaire."""

    job_skipping: bool
    replicated_components: bool
    state_persistence: bool
    overhead_tolerance: OverheadTolerance = OverheadTolerance.PER_TASK

    @classmethod
    def from_answers(cls, answers: Mapping[str, str]) -> "ApplicationCharacteristics":
        """Parse textual questionnaire answers.

        ``answers`` maps question keys (``job_skipping``,
        ``replicated_components``, ``state_persistence``,
        ``overhead_tolerance``) to ``"Y"``/``"N"`` (or ``"N"/"PT"/"PJ"``
        for the tolerance).  Mirrors the paper's Figure 4 example input
        ``1. N / 2. Y / 3. Y / 4. PT``.
        """
        def yes_no(key: str) -> bool:
            raw = str(answers.get(key, "")).strip().upper()
            if raw in ("Y", "YES", "TRUE", "1"):
                return True
            if raw in ("N", "NO", "FALSE", "0"):
                return False
            raise ConfigurationError(
                f"answer for {key!r} must be Y or N, got {answers.get(key)!r}"
            )

        raw_tolerance = (
            str(answers.get("overhead_tolerance", "PT")).strip().upper()
        )
        try:
            tolerance = OverheadTolerance(raw_tolerance)
        except ValueError:
            raise ConfigurationError(
                "answer for 'overhead_tolerance' must be one of N, PT, PJ; "
                f"got {answers.get('overhead_tolerance')!r}"
            ) from None
        return cls(
            job_skipping=yes_no("job_skipping"),
            replicated_components=yes_no("replicated_components"),
            state_persistence=yes_no("state_persistence"),
            overhead_tolerance=tolerance,
        )

    def describe(self) -> str:
        """Human-readable summary (used by example scripts)."""
        return (
            f"C1 job skipping: {'yes' if self.job_skipping else 'no'}; "
            f"C3 replicated components: "
            f"{'yes' if self.replicated_components else 'no'}; "
            f"C2 state persistence: "
            f"{'yes' if self.state_persistence else 'no'}; "
            f"overhead tolerance: {self.overhead_tolerance.value}"
        )

"""Deployment plan data structures and the plan builder.

A :class:`DeploymentPlan` is the in-memory form of the XML assembly
descriptor the paper's configuration engine emits for DAnCE: component
instances (with ``configProperty`` settings), facet/receptacle and event
connections, the processor topology, and the embedded workload (so the
DAnCE-lite runtime can reconstruct arrival generation without a side
channel).

:func:`build_deployment_plan` performs the paper's generation step,
including assigning EDMS priorities "in order of tasks' end-to-end
deadlines" and writing them into the subtask instances' properties.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.ccm.events import (
    TOPIC_IDLE_RESETTING,
    TOPIC_TASK_ARRIVE,
    accept_topic,
    reject_topic,
    trigger_topic,
)
from repro.config.workload_spec import workload_to_json
from repro.core.strategies import ACStrategy, LBStrategy, StrategyCombo
from repro.errors import ConfigurationError
from repro.sched.edms import edms_priority
from repro.workloads.model import Workload

#: Implementation names registered in the component repository.
IMPL_AC = "repro.AdmissionController"
IMPL_LB = "repro.LoadBalancer"
IMPL_TE = "repro.TaskEffector"
IMPL_IR = "repro.IdleResetter"
IMPL_FI_SUBTASK = "repro.FISubtask"
IMPL_LAST_SUBTASK = "repro.LastSubtask"


@dataclass(frozen=True)
class ComponentInstance:
    """One component instance in the plan."""

    instance_id: str
    implementation: str
    node: str
    properties: Tuple[Tuple[str, Any], ...] = ()

    def property_dict(self) -> Dict[str, Any]:
        return dict(self.properties)

    @staticmethod
    def make(
        instance_id: str,
        implementation: str,
        node: str,
        properties: Dict[str, Any],
    ) -> "ComponentInstance":
        return ComponentInstance(
            instance_id=instance_id,
            implementation=implementation,
            node=node,
            properties=tuple(sorted(properties.items())),
        )


@dataclass(frozen=True)
class Connection:
    """A port connection between two instances.

    ``kind`` is ``"facet"`` (synchronous receptacle -> facet) or
    ``"event"`` (event source -> topic consumed by the target's sink).
    For event connections ``target_port`` holds the topic name.
    """

    name: str
    kind: str
    source_instance: str
    source_port: str
    target_instance: str
    target_port: str

    def __post_init__(self) -> None:
        if self.kind not in ("facet", "event"):
            raise ConfigurationError(
                f"connection {self.name!r}: kind must be facet or event"
            )


@dataclass(frozen=True)
class DeploymentPlan:
    """A complete deployment: instances + connections + topology."""

    label: str
    manager_node: str
    app_nodes: Tuple[str, ...]
    instances: Tuple[ComponentInstance, ...]
    connections: Tuple[Connection, ...]
    workload_json: str

    def instance(self, instance_id: str) -> ComponentInstance:
        for inst in self.instances:
            if inst.instance_id == instance_id:
                return inst
        raise ConfigurationError(f"plan has no instance {instance_id!r}")

    def instances_on(self, node: str) -> List[ComponentInstance]:
        return [inst for inst in self.instances if inst.node == node]

    def instances_of(self, implementation: str) -> List[ComponentInstance]:
        return [
            inst
            for inst in self.instances
            if inst.implementation == implementation
        ]

    @property
    def nodes(self) -> Tuple[str, ...]:
        return (self.manager_node,) + self.app_nodes

    def combo(self) -> StrategyCombo:
        """The strategy combination encoded in the AC instance."""
        acs = self.instances_of(IMPL_AC)
        if len(acs) != 1:
            raise ConfigurationError(
                f"plan must contain exactly one AC instance, found {len(acs)}"
            )
        props = acs[0].property_dict()
        return StrategyCombo.from_label(
            f"{props['ac_strategy']}_{props['ir_strategy']}_{props['lb_strategy']}"
        )


def build_deployment_plan(
    workload: Workload,
    combo: StrategyCombo,
    label: Optional[str] = None,
) -> DeploymentPlan:
    """Generate the deployment plan for ``workload`` under ``combo``.

    Mirrors the paper's configuration engine output: one AC (and LB if
    enabled) on the task manager, one TE + IR per application processor,
    one subtask component per (task, stage, eligible processor) with EDMS
    priority written into its properties, and all port connections.
    """
    combo.validate()
    instances: List[ComponentInstance] = []
    connections: List[Connection] = []

    instances.append(
        ComponentInstance.make(
            "Central-AC",
            IMPL_AC,
            workload.manager_node,
            {
                "ac_strategy": combo.ac.value,
                "ir_strategy": combo.ir.value,
                "lb_strategy": combo.lb.value,
            },
        )
    )
    lb_enabled = combo.lb is not LBStrategy.NONE
    if lb_enabled:
        instances.append(
            ComponentInstance.make(
                "Central-LB",
                IMPL_LB,
                workload.manager_node,
                {"strategy": combo.lb.value},
            )
        )
        connections.append(
            Connection(
                name="ac_locator",
                kind="facet",
                source_instance="Central-AC",
                source_port="locator",
                target_instance="Central-LB",
                target_port="location",
            )
        )
        connections.append(
            Connection(
                name="lb_state",
                kind="facet",
                source_instance="Central-LB",
                source_port="admission_state",
                target_instance="Central-AC",
                target_port="admission_state",
            )
        )

    release_mode = (
        "per_task"
        if combo.ac is ACStrategy.PER_TASK and combo.lb is not LBStrategy.PER_JOB
        else "per_job"
    )
    for node in workload.app_nodes:
        te_id = f"TE-{node}"
        ir_id = f"IR-{node}"
        instances.append(
            ComponentInstance.make(
                te_id,
                IMPL_TE,
                node,
                {"processor_id": node, "release_mode": release_mode},
            )
        )
        instances.append(
            ComponentInstance.make(
                ir_id,
                IMPL_IR,
                node,
                {"processor_id": node, "strategy": combo.ir.value},
            )
        )
        connections.append(
            Connection(
                name=f"task_arrive_{node}",
                kind="event",
                source_instance=te_id,
                source_port="decision_request",
                target_instance="Central-AC",
                target_port=TOPIC_TASK_ARRIVE,
            )
        )
        connections.append(
            Connection(
                name=f"accept_{node}",
                kind="event",
                source_instance="Central-AC",
                source_port="decisions",
                target_instance=te_id,
                target_port=accept_topic(node),
            )
        )
        connections.append(
            Connection(
                name=f"reject_{node}",
                kind="event",
                source_instance="Central-AC",
                source_port="decisions",
                target_instance=te_id,
                target_port=reject_topic(node),
            )
        )
        connections.append(
            Connection(
                name=f"idle_reset_{node}",
                kind="event",
                source_instance=ir_id,
                source_port="idle_resetting",
                target_instance="Central-AC",
                target_port=TOPIC_IDLE_RESETTING,
            )
        )

    for task in workload.tasks:
        priority = edms_priority(task)
        last_index = task.n_subtasks - 1
        for subtask in task.subtasks:
            impl = (
                IMPL_LAST_SUBTASK if subtask.index == last_index else IMPL_FI_SUBTASK
            )
            for node in subtask.eligible:
                inst_id = f"{task.task_id}.s{subtask.index}@{node}"
                instances.append(
                    ComponentInstance.make(
                        inst_id,
                        impl,
                        node,
                        {
                            "task_id": task.task_id,
                            "subtask_index": subtask.index,
                            "execution_time": subtask.execution_time,
                            "priority": priority,
                            "ir_mode": combo.ir.value,
                        },
                    )
                )
                connections.append(
                    Connection(
                        name=f"ir_complete_{inst_id}",
                        kind="facet",
                        source_instance=inst_id,
                        source_port="ir_complete",
                        target_instance=f"IR-{node}",
                        target_port="complete",
                    )
                )
                if subtask.index < last_index:
                    next_sub = task.subtasks[subtask.index + 1]
                    for next_node in next_sub.eligible:
                        connections.append(
                            Connection(
                                name=(
                                    f"trigger_{task.task_id}_"
                                    f"{subtask.index}_{node}_to_{next_node}"
                                ),
                                kind="event",
                                source_instance=inst_id,
                                source_port="trigger_out",
                                target_instance=(
                                    f"{task.task_id}.s{next_sub.index}@{next_node}"
                                ),
                                target_port=trigger_topic(
                                    task.task_id, next_sub.index
                                ),
                            )
                        )

    return DeploymentPlan(
        label=label or f"plan_{combo.label}",
        manager_node=workload.manager_node,
        app_nodes=tuple(workload.app_nodes),
        instances=tuple(instances),
        connections=tuple(connections),
        workload_json=workload_to_json(workload, indent=None),
    )

"""DAnCE-lite: staged deployment and configuration pipeline.

Reproduces the paper's Figure 4 flow:

1. **Plan Launcher** parses the XML deployment plan into
   ``Deployment::DeploymentPlan`` structures
   (:class:`~repro.config.plan.DeploymentPlan`).
2. **Execution Manager** splits the plan per node and hands each slice to
   a **Node Application Manager** as a ``NodeImplementationInfo``.
3. Each **Node Application** creates the component server/container for
   its node, instantiates component implementations from the repository,
   and initializes their attributes through the standard Configurator
   interface (``set_configuration``).
4. Facet/receptacle connections are established, then all containers are
   activated.

The result is a live :class:`~repro.core.middleware.MiddlewareSystem`
indistinguishable from one assembled programmatically — the tests assert
exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.ccm.component import Component
from repro.ccm.repository import ComponentRepository
from repro.config.plan import (
    ComponentInstance,
    Connection,
    DeploymentPlan,
    IMPL_AC,
    IMPL_FI_SUBTASK,
    IMPL_IR,
    IMPL_LAST_SUBTASK,
    IMPL_LB,
    IMPL_TE,
    build_deployment_plan,
)
from repro.config.validation import validate_plan
from repro.config.xml_io import parse_xml
from repro.core.admission_controller import AdmissionControllerComponent
from repro.core.cost_model import CostModel
from repro.core.idle_resetter import IdleResetterComponent
from repro.core.load_balancer import LoadBalancerComponent
from repro.core.middleware import MiddlewareSystem
from repro.core.runtime import RuntimeEnv
from repro.core.subtask import FISubtaskComponent, LastSubtaskComponent
from repro.core.task_effector import TaskEffectorComponent
from repro.errors import DeploymentError
from repro.net.latency import DelayModel


def default_repository(env: RuntimeEnv) -> ComponentRepository:
    """The component repository holding the six paper components.

    Factories close over the shared :class:`RuntimeEnv`, playing the role
    of CIAO's container services injection.
    """
    repository = ComponentRepository()
    repository.register(IMPL_AC, lambda name: AdmissionControllerComponent(name, env))
    repository.register(IMPL_LB, lambda name: LoadBalancerComponent(name, env))
    repository.register(IMPL_TE, lambda name: TaskEffectorComponent(name, env))
    repository.register(IMPL_IR, lambda name: IdleResetterComponent(name, env))
    repository.register(IMPL_FI_SUBTASK, lambda name: FISubtaskComponent(name, env))
    repository.register(
        IMPL_LAST_SUBTASK, lambda name: LastSubtaskComponent(name, env)
    )
    return repository


@dataclass
class NodeImplementationInfo:
    """Per-node slice of the plan (the initialization data structure the
    Execution Manager hands to each Node Application Manager)."""

    node: str
    instances: List[ComponentInstance] = field(default_factory=list)


class NodeApplication:
    """Installs and configures the component instances of one node."""

    def __init__(self, node: str) -> None:
        self.node = node
        self.installed: Dict[str, Component] = {}

    def install(
        self,
        info: NodeImplementationInfo,
        container,
        repository: ComponentRepository,
    ) -> None:
        for inst in info.instances:
            component = repository.create(inst.implementation, inst.instance_id)
            # Standard Configurator interface (paper: set_configuration).
            component.set_configuration(inst.property_dict())
            container.install(component)
            self.installed[inst.instance_id] = component


class NodeApplicationManager:
    """Creates the Node Application for one node."""

    def __init__(self, info: NodeImplementationInfo) -> None:
        self.info = info

    def start(self, container, repository: ComponentRepository) -> NodeApplication:
        app = NodeApplication(self.info.node)
        app.install(self.info, container, repository)
        return app


class ExecutionManager:
    """Splits a deployment plan into per-node slices and runs them."""

    def __init__(self, repository: ComponentRepository) -> None:
        self.repository = repository
        self.node_applications: Dict[str, NodeApplication] = {}

    def prepare_plan(self, plan: DeploymentPlan) -> Dict[str, NodeImplementationInfo]:
        infos: Dict[str, NodeImplementationInfo] = {
            node: NodeImplementationInfo(node) for node in plan.nodes
        }
        for inst in plan.instances:
            if inst.node not in infos:
                raise DeploymentError(
                    f"instance {inst.instance_id!r} targets unknown node "
                    f"{inst.node!r}"
                )
            infos[inst.node].instances.append(inst)
        return infos

    def execute(self, plan: DeploymentPlan, containers: Dict[str, object]) -> None:
        for node, info in self.prepare_plan(plan).items():
            container = containers.get(node)
            if container is None:
                raise DeploymentError(f"no container available on node {node!r}")
            manager = NodeApplicationManager(info)
            self.node_applications[node] = manager.start(container, self.repository)

    def component(self, instance_id: str) -> Component:
        for app in self.node_applications.values():
            if instance_id in app.installed:
                return app.installed[instance_id]
        raise DeploymentError(f"no installed component {instance_id!r}")

    def establish_connections(self, plan: DeploymentPlan) -> None:
        """Wire facet/receptacle connections from the plan.

        Event connections need no action here: sinks subscribe to their
        topics during install/activate, mirroring how the federated event
        channel decouples suppliers from consumers.
        """
        for conn in plan.connections:
            if conn.kind != "facet":
                continue
            source = self.component(conn.source_instance)
            target = self.component(conn.target_instance)
            facet = target.provide_facet(conn.target_port)
            source.connect_receptacle(conn.source_port, facet)


class PlanLauncher:
    """Entry point: parse an XML plan and drive the Execution Manager."""

    @staticmethod
    def parse(xml_text: str) -> DeploymentPlan:
        return parse_xml(xml_text)


class DeploymentEngine:
    """Facade: deploy a plan (or its XML) into a runnable system."""

    def deploy(
        self,
        plan: Union[DeploymentPlan, str],
        seed: int = 0,
        cost_model: Optional[CostModel] = None,
        trace: bool = False,
        delay_model: Optional[DelayModel] = None,
        aperiodic_interarrival_factor: float = 2.0,
        arrival_batching: bool = False,
        metrics_registry=None,
    ) -> MiddlewareSystem:
        """Validate and deploy ``plan``; returns a ready-to-run system.

        ``plan`` may be a :class:`DeploymentPlan` or an XML descriptor
        string (the Plan Launcher parses it first).
        """
        if isinstance(plan, str):
            plan = PlanLauncher.parse(plan)
        workload = validate_plan(plan)
        combo = plan.combo()
        system = MiddlewareSystem(
            workload,
            combo,
            cost_model=cost_model,
            seed=seed,
            trace=trace,
            delay_model=delay_model,
            aperiodic_interarrival_factor=aperiodic_interarrival_factor,
            auto_deploy=False,
            arrival_batching=arrival_batching,
            metrics_registry=metrics_registry,
        )
        repository = default_repository(system.env)
        manager = ExecutionManager(repository)
        manager.execute(plan, system.containers)
        manager.establish_connections(plan)
        ac = manager.component("Central-AC")
        assert isinstance(ac, AdmissionControllerComponent)
        if arrival_batching:
            # The plan format predates batching; the knob rides in from
            # the scenario rather than the descriptor.
            ac.set_attribute("batching", True)
        system.ac = ac
        try:
            lb = manager.component("Central-LB")
        except DeploymentError:
            lb = None
        if lb is not None:
            assert isinstance(lb, LoadBalancerComponent)
            system.lb = lb
        system.finish_deployment()
        return system

    def deploy_scenario(self, scenario, metrics_registry=None) -> MiddlewareSystem:
        """Deploy a :class:`repro.api.Scenario` through the full pipeline.

        The scenario's workload and strategy combination become an XML-able
        deployment plan, which the Execution Manager then installs — so a
        declarative scenario and a hand-written deployment descriptor take
        exactly the same path into a live system.  Only middleware-engine
        scenarios are deployable; disturbances are scheduled by the
        :class:`repro.api.Session` that owns the scenario, not here.
        """
        from repro.api.scenario import ENGINE_MIDDLEWARE

        if scenario.engine != ENGINE_MIDDLEWARE:
            raise DeploymentError(
                "the DAnCE-lite pipeline deploys middleware scenarios only, "
                f"not {scenario.engine!r}"
            )
        workload = scenario.workload.materialize()
        plan = build_deployment_plan(workload, scenario.strategy_combo)
        return self.deploy(
            plan,
            seed=scenario.seed,
            cost_model=scenario.cost_model,
            trace=scenario.trace,
            delay_model=scenario.delay_model,
            aperiodic_interarrival_factor=scenario.aperiodic_interarrival_factor,
            arrival_batching=scenario.arrival_batching,
            metrics_registry=metrics_registry,
        )

"""XML serialization of deployment plans (DAnCE descriptor style).

The element structure follows the OMG D&C descriptors as rendered in the
paper's Figure 4 excerpt: ``<instance id=...>`` elements carrying
``<configProperty>`` children whose values are typed (``tk_string``,
``tk_long``, ``tk_double``, ``tk_boolean``), plus ``<connection>``
elements and a ``<workload>`` CDATA-ish payload holding the embedded
workload JSON.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Any, Tuple

from repro.config.plan import ComponentInstance, Connection, DeploymentPlan
from repro.errors import ConfigurationError

_KIND_BY_TYPE = {
    str: "tk_string",
    int: "tk_long",
    float: "tk_double",
    bool: "tk_boolean",
}

_TAG_BY_KIND = {
    "tk_string": "string",
    "tk_long": "long",
    "tk_double": "double",
    "tk_boolean": "boolean",
}


def _encode_value(parent: ET.Element, value: Any) -> None:
    """Append a typed <value> tree for ``value`` (Figure 4 style)."""
    # bool is a subclass of int: check it first.
    if isinstance(value, bool):
        kind = "tk_boolean"
        text = "true" if value else "false"
    else:
        kind = _KIND_BY_TYPE.get(type(value))
        if kind is None:
            raise ConfigurationError(
                f"cannot encode property value of type {type(value).__name__}"
            )
        text = repr(value) if isinstance(value, float) else str(value)
    outer = ET.SubElement(parent, "value")
    type_el = ET.SubElement(outer, "type")
    ET.SubElement(type_el, "kind").text = kind
    inner = ET.SubElement(outer, "value")
    ET.SubElement(inner, _TAG_BY_KIND[kind]).text = text


def _decode_value(value_el: ET.Element) -> Any:
    kind_el = value_el.find("./type/kind")
    if kind_el is None or kind_el.text is None:
        raise ConfigurationError("configProperty value missing <type><kind>")
    kind = kind_el.text.strip()
    tag = _TAG_BY_KIND.get(kind)
    if tag is None:
        raise ConfigurationError(f"unknown type kind {kind!r}")
    payload = value_el.find(f"./value/{tag}")
    if payload is None or payload.text is None:
        raise ConfigurationError(f"configProperty value missing <{tag}>")
    text = payload.text.strip()
    if kind == "tk_string":
        return text
    if kind == "tk_long":
        return int(text)
    if kind == "tk_double":
        return float(text)
    return text.lower() == "true"


def to_xml(plan: DeploymentPlan) -> str:
    """Render ``plan`` as a DAnCE-style XML descriptor string."""
    root = ET.Element("DeploymentPlan", {"label": plan.label})
    topology = ET.SubElement(root, "domain")
    ET.SubElement(topology, "manager").text = plan.manager_node
    for node in plan.app_nodes:
        ET.SubElement(topology, "node").text = node
    for inst in plan.instances:
        inst_el = ET.SubElement(root, "instance", {"id": inst.instance_id})
        ET.SubElement(inst_el, "node").text = inst.node
        ET.SubElement(inst_el, "implementation").text = inst.implementation
        for name, value in inst.properties:
            prop_el = ET.SubElement(inst_el, "configProperty")
            ET.SubElement(prop_el, "name").text = name
            _encode_value(prop_el, value)
    for conn in plan.connections:
        conn_el = ET.SubElement(
            root, "connection", {"name": conn.name, "kind": conn.kind}
        )
        src = ET.SubElement(conn_el, "source")
        ET.SubElement(src, "instance").text = conn.source_instance
        ET.SubElement(src, "port").text = conn.source_port
        dst = ET.SubElement(conn_el, "target")
        ET.SubElement(dst, "instance").text = conn.target_instance
        ET.SubElement(dst, "port").text = conn.target_port
    ET.SubElement(root, "workload").text = plan.workload_json
    _indent(root)
    return ET.tostring(root, encoding="unicode")


def parse_xml(text: str) -> DeploymentPlan:
    """Parse a descriptor produced by :func:`to_xml`."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise ConfigurationError(f"malformed deployment XML: {exc}") from None
    if root.tag != "DeploymentPlan":
        raise ConfigurationError(
            f"root element must be DeploymentPlan, got {root.tag!r}"
        )
    label = root.get("label", "unnamed")
    domain = root.find("domain")
    if domain is None:
        raise ConfigurationError("missing <domain> topology element")
    manager_el = domain.find("manager")
    if manager_el is None or manager_el.text is None:
        raise ConfigurationError("missing <manager> element")
    manager = manager_el.text.strip()
    app_nodes = tuple(
        el.text.strip() for el in domain.findall("node") if el.text
    )
    instances = []
    for inst_el in root.findall("instance"):
        instance_id = inst_el.get("id")
        if not instance_id:
            raise ConfigurationError("<instance> missing id attribute")
        node_el = inst_el.find("node")
        impl_el = inst_el.find("implementation")
        if node_el is None or node_el.text is None:
            raise ConfigurationError(f"instance {instance_id!r} missing <node>")
        if impl_el is None or impl_el.text is None:
            raise ConfigurationError(
                f"instance {instance_id!r} missing <implementation>"
            )
        properties = {}
        for prop_el in inst_el.findall("configProperty"):
            name_el = prop_el.find("name")
            value_el = prop_el.find("value")
            if name_el is None or name_el.text is None or value_el is None:
                raise ConfigurationError(
                    f"instance {instance_id!r}: malformed configProperty"
                )
            properties[name_el.text.strip()] = _decode_value(value_el)
        instances.append(
            ComponentInstance.make(
                instance_id, impl_el.text.strip(), node_el.text.strip(), properties
            )
        )
    connections = []
    for conn_el in root.findall("connection"):
        src = conn_el.find("source")
        dst = conn_el.find("target")
        if src is None or dst is None:
            raise ConfigurationError("connection missing source/target")
        connections.append(
            Connection(
                name=conn_el.get("name", ""),
                kind=conn_el.get("kind", "facet"),
                source_instance=_req_text(src, "instance"),
                source_port=_req_text(src, "port"),
                target_instance=_req_text(dst, "instance"),
                target_port=_req_text(dst, "port"),
            )
        )
    workload_el = root.find("workload")
    workload_json = (
        workload_el.text.strip() if workload_el is not None and workload_el.text else ""
    )
    return DeploymentPlan(
        label=label,
        manager_node=manager,
        app_nodes=app_nodes,
        instances=tuple(instances),
        connections=tuple(connections),
        workload_json=workload_json,
    )


def _req_text(parent: ET.Element, tag: str) -> str:
    el = parent.find(tag)
    if el is None or el.text is None:
        raise ConfigurationError(f"connection missing <{tag}>")
    return el.text.strip()


def _indent(element: ET.Element, level: int = 0) -> None:
    """Pretty-print indentation (ElementTree.indent exists only on 3.9+
    as a module function; do it manually for portability)."""
    pad = "\n" + "  " * level
    if len(element):
        if not element.text or not element.text.strip():
            element.text = pad + "  "
        for child in element:
            _indent(child, level + 1)
            if not child.tail or not child.tail.strip():
                child.tail = pad + "  "
        last = element[-1]
        if not last.tail or not last.tail.strip():
            last.tail = pad
    elif level and (not element.tail or not element.tail.strip()):
        element.tail = pad

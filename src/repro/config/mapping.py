"""Table 1: mapping CPS characteristics to middleware strategies.

=========================  =============  =============
Criterion                  No             Yes
=========================  =============  =============
C1: Job Skipping           AC per Task    AC per Job
C2: State Persistency      LB per Job     LB per Task
C3: Component Replication  No LB          LB
=========================  =============  =============

The overhead-tolerance answer selects the Idle Resetting strategy (none /
per task / per job) — the axis the paper leaves to the developer's
overhead budget.  One feasibility interaction exists: IR per Job requires
AC per Job (section 4.5), so an application that cannot skip jobs (AC per
Task) has its requested per-job resetting clamped down to per task; the
clamp is reported in the mapping notes rather than silently applied.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.config.characteristics import (
    ApplicationCharacteristics,
    OverheadTolerance,
)
from repro.core.strategies import (
    ACStrategy,
    IRStrategy,
    LBStrategy,
    StrategyCombo,
)

#: The paper's default configuration when no characteristics are given:
#: "per task admission control, idle resetting and load balancing".
DEFAULT_COMBO = StrategyCombo(
    ACStrategy.PER_TASK, IRStrategy.PER_TASK, LBStrategy.PER_TASK
)

_TOLERANCE_TO_IR = {
    OverheadTolerance.NONE: IRStrategy.NONE,
    OverheadTolerance.PER_TASK: IRStrategy.PER_TASK,
    OverheadTolerance.PER_JOB: IRStrategy.PER_JOB,
}


def map_characteristics(
    characteristics: ApplicationCharacteristics,
) -> Tuple[StrategyCombo, List[str]]:
    """Map questionnaire answers to a valid strategy combination.

    Returns ``(combo, notes)``; notes record any feasibility clamp.
    The result is always valid (``combo.validate()`` passes).
    """
    notes: List[str] = []
    ac = (
        ACStrategy.PER_JOB
        if characteristics.job_skipping
        else ACStrategy.PER_TASK
    )
    if not characteristics.replicated_components:
        lb = LBStrategy.NONE
        if characteristics.state_persistence:
            notes.append(
                "state persistence is moot without replication: load "
                "balancing disabled (C3 = no)"
            )
    elif characteristics.state_persistence:
        lb = LBStrategy.PER_TASK
    else:
        lb = LBStrategy.PER_JOB
    ir = _TOLERANCE_TO_IR[characteristics.overhead_tolerance]
    if ir is IRStrategy.PER_JOB and ac is ACStrategy.PER_TASK:
        ir = IRStrategy.PER_TASK
        notes.append(
            "requested per-job idle resetting clamped to per-task: the "
            "application does not allow job skipping, so admission control "
            "runs per task and must keep periodic contributions reserved "
            "(invalid combination per paper section 4.5)"
        )
    combo = StrategyCombo(ac, ir, lb)
    combo.validate()
    return combo, notes

"""Front-end configuration engine (paper section 6).

The engine ties the configuration pipeline together:

1. Read/accept a workload specification (each end-to-end task and where
   its subtasks execute).
2. Ask (or accept) the four application-characteristics answers.
3. Map characteristics to service strategies (Table 1), with feasibility
   clamps reported as notes.
4. Build the XML deployment plan with EDMS priorities assigned in order
   of end-to-end deadlines.
5. Validate the plan — invalid strategy combinations cannot be produced.
6. Optionally deploy through the DAnCE-lite pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Mapping, Optional, Union

from repro.config.characteristics import ApplicationCharacteristics
from repro.config.dance import DeploymentEngine
from repro.config.mapping import DEFAULT_COMBO, map_characteristics
from repro.config.plan import DeploymentPlan, build_deployment_plan
from repro.config.validation import validate_plan
from repro.config.workload_spec import load_workload
from repro.config.xml_io import to_xml
from repro.core.middleware import MiddlewareSystem
from repro.core.strategies import StrategyCombo
from repro.sched.offline import analyze_workload
from repro.workloads.model import Workload


@dataclass(frozen=True)
class EngineResult:
    """Everything the configuration engine produced for one application."""

    workload: Workload
    combo: StrategyCombo
    plan: DeploymentPlan
    xml: str
    notes: List[str] = field(default_factory=list)


class ConfigurationEngine:
    """Front end to the DAnCE-lite deployment pipeline."""

    def __init__(self) -> None:
        self._deployer = DeploymentEngine()

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def configure(
        self,
        workload: Workload,
        characteristics: Optional[ApplicationCharacteristics] = None,
        combo: Optional[StrategyCombo] = None,
    ) -> EngineResult:
        """Produce a validated deployment plan for ``workload``.

        Strategy selection precedence: an explicit ``combo`` wins (it is
        still validated); otherwise ``characteristics`` are mapped through
        Table 1; otherwise the paper's default configuration (per-task
        admission control, idle resetting and load balancing) applies.
        """
        notes: List[str] = []
        if combo is not None:
            combo.validate()
        elif characteristics is not None:
            combo, notes = map_characteristics(characteristics)
        else:
            combo = DEFAULT_COMBO
            notes = ["no characteristics given: using the default per-task "
                     "configuration (T_T_T)"]
        if combo.lb.value != "N" and not workload.replicated():
            notes.append(
                "warning: load balancing is enabled but no subtask declares "
                "replicas; the LB will always choose home processors"
            )
        feasibility = analyze_workload(workload)
        over = feasibility.unschedulable_tasks()
        if over:
            hint = (
                " (greedy replica placement would fix some of them — "
                "consider enabling load balancing)"
                if feasibility.load_balancing_helps() and combo.lb.value == "N"
                else ""
            )
            notes.append(
                "feasibility: with all tasks current, AUB condition (1) "
                f"fails for {', '.join(over)} under home assignment; those "
                f"tasks will see admission rejections at peak load{hint}"
            )
        plan = build_deployment_plan(workload, combo)
        validate_plan(plan)
        return EngineResult(
            workload=workload,
            combo=combo,
            plan=plan,
            xml=to_xml(plan),
            notes=notes,
        )

    def configure_from_files(
        self,
        workload_path: Union[str, Path],
        answers: Optional[Mapping[str, str]] = None,
    ) -> EngineResult:
        """File-based entry point: workload spec + questionnaire answers."""
        workload = load_workload(workload_path)
        characteristics = (
            ApplicationCharacteristics.from_answers(answers)
            if answers is not None
            else None
        )
        return self.configure(workload, characteristics)

    # ------------------------------------------------------------------
    # Scenario emission (repro.api integration)
    # ------------------------------------------------------------------
    def scenario(self, result: EngineResult, **scenario_fields):
        """Emit the engine's decision as a :class:`repro.api.Scenario`.

        The scenario embeds the configured workload and the mapped
        strategy combination; extra keyword arguments (``duration``,
        ``seed``, ``cost_model``, ...) pass through to the scenario,
        which validates them.  Run it with :class:`repro.api.Session`
        (``via_dance=True`` routes back through this pipeline).
        """
        from repro.api.scenario import Scenario, WorkloadSource

        return Scenario(
            workload=WorkloadSource.explicit(result.workload),
            combo=result.combo.label,
            **scenario_fields,
        )

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------
    def deploy(self, result: EngineResult, **runtime_kwargs) -> MiddlewareSystem:
        """Deploy an engine result through the DAnCE-lite pipeline."""
        return self._deployer.deploy(result.plan, **runtime_kwargs)

    def deploy_xml(self, xml_text: str, **runtime_kwargs) -> MiddlewareSystem:
        """Deploy directly from an XML descriptor string."""
        return self._deployer.deploy(xml_text, **runtime_kwargs)

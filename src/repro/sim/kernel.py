"""Deterministic discrete-event simulation kernel.

The kernel is deliberately small: a binary heap of scheduled callbacks keyed
by ``(time, priority, sequence)``.  The sequence number makes event ordering
fully deterministic even when many events share a timestamp, which in turn
makes every experiment in :mod:`repro.experiments` reproducible from a seed.

Heap entries are plain ``(time, priority, seq, handle)`` tuples: the sort
key is precomputed once at scheduling time and compared with C-level tuple
comparison (the unique sequence number guarantees the handle itself is
never compared), instead of dispatching a Python ``__lt__`` per sift step.

:meth:`Simulator.schedule_batch` coalesces same-timestamp deliveries to
one subscriber: every payload scheduled for the same ``(time, priority,
callback)`` before the moment fires is delivered in a single
``callback(payloads)`` call, in scheduling order — one heap entry and one
dispatch per batch instead of one per payload.  Burst arrivals use this
so a wave of simultaneous arrivals reaches the admission layer as one
batch.

Time is a ``float`` measured in **seconds** of virtual time.  The paper's
overheads are microsecond-scale, so helper constants :data:`USEC` and
:data:`MSEC` are provided for readability.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError

#: One microsecond, in simulator time units (seconds).
USEC = 1e-6

#: One millisecond, in simulator time units (seconds).
MSEC = 1e-3

#: Default priority for scheduled events; lower values fire first among
#: events that share a timestamp.
DEFAULT_PRIORITY = 100


class EventHandle:
    """A cancellable handle for a scheduled simulator event.

    Handles are returned by :meth:`Simulator.schedule` and
    :meth:`Simulator.schedule_at`.  Cancellation is lazy: the heap entry is
    marked dead and skipped when popped.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "_cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., None],
        args: tuple,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self._cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self._cancelled = True
        self.callback = _noop
        self.args = ()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else "pending"
        return f"<EventHandle t={self.time:.9f} prio={self.priority} {state}>"


#: A heap entry: the precomputed sort key plus the handle payload.
_HeapEntry = Tuple[float, int, int, EventHandle]


def _noop(*_args: Any) -> None:
    return None


class Simulator:
    """The discrete-event simulation engine.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    1.5
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[_HeapEntry] = []
        self._seq = itertools.count()
        self._running = False
        self._event_count = 0
        #: Open same-timestamp delivery batches:
        #: (time, priority, callback) -> (payload list, handle).
        self._batches: dict = {}

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Total number of events dispatched so far."""
        return self._event_count

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled entries)."""
        return len(self._heap)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = DEFAULT_PRIORITY,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = DEFAULT_PRIORITY,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to fire at absolute virtual ``time``."""
        if math.isnan(time) or time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r} (now={self._now!r})"
            )
        handle = EventHandle(time, priority, next(self._seq), callback, args)
        heapq.heappush(self._heap, (time, priority, handle.seq, handle))
        return handle

    def schedule_batch(
        self,
        time: float,
        callback: Callable[[List[Any]], None],
        payload: Any,
        priority: int = DEFAULT_PRIORITY,
    ) -> EventHandle:
        """Enqueue ``payload`` for batched delivery to ``callback`` at
        absolute ``time``.

        All payloads scheduled for the same ``(time, priority, callback)``
        before the batch fires are delivered in one ``callback(payloads)``
        call, ordered as scheduled.  The returned handle is shared by the
        whole batch: cancelling it drops every payload.  The batch's heap
        position is that of its *first* payload, so relative ordering with
        other same-timestamp events is unchanged.
        """
        key = (time, priority, callback)
        entry = self._batches.get(key)
        if entry is not None and not entry[1]._cancelled:
            entry[0].append(payload)
            return entry[1]
        payloads = [payload]
        handle = self.schedule_at(
            time, self._dispatch_batch, key, payloads, priority=priority
        )
        self._batches[key] = (payloads, handle)
        return handle

    def _dispatch_batch(self, key, payloads: List[Any]) -> None:
        # Remove the open batch first: a payload scheduled from inside the
        # callback for the same key starts a fresh batch at t == now.
        self._batches.pop(key, None)
        key[2](payloads)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _live_head(self) -> Optional[_HeapEntry]:
        """The next non-cancelled entry, discarding dead ones on the way.

        This is the single cancellation-check path shared by :meth:`step`
        and :meth:`run`; the returned entry is still on the heap.
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[3]._cancelled:
                heapq.heappop(heap)
                continue
            return entry
        return None

    def _dispatch(self, entry: _HeapEntry) -> None:
        heapq.heappop(self._heap)
        self._now = entry[0]
        self._event_count += 1
        handle = entry[3]
        handle.callback(*handle.args)

    def step(self) -> bool:
        """Dispatch the single next event.

        Returns ``True`` if an event fired, ``False`` if the queue is empty.
        """
        entry = self._live_head()
        if entry is None:
            return False
        self._dispatch(entry)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have been dispatched.

        When ``until`` is given, the clock is advanced to exactly ``until``
        at the end of the run even if the last event fired earlier, so
        time-weighted statistics close their final interval consistently.
        """
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        dispatched = 0
        try:
            while max_events is None or dispatched < max_events:
                entry = self._live_head()
                if entry is None:
                    break
                if until is not None and entry[0] > until:
                    break
                self._dispatch(entry)
                dispatched += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def drain(self) -> None:
        """Discard all pending events without firing them."""
        self._heap.clear()
        self._batches.clear()

"""Execution timelines from trace records.

Builds a per-processor view of what the middleware did over a run —
arrivals, admission decisions, subjob completions, idle-reset reports —
and renders it as text.  This is the debugging aid the paper's authors
got from KURT-Linux instrumentation; here it comes from the simulator's
exact virtual-time tracer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim.tracing import TraceRecord, Tracer

#: Trace categories with their one-letter timeline markers.
_MARKERS = {
    "te.arrive": "a",
    "te.release": "R",
    "te.reject": "x",
    "ac.accept": "A",
    "ac.reject": "X",
    "ac.idle_reset": "i",
    "ir.report": "r",
    "subtask.complete": "c",
    "job.complete": "C",
}


@dataclass(frozen=True)
class TimelineEvent:
    """One rendered timeline entry."""

    time: float
    node: str
    category: str
    description: str


@dataclass
class Timeline:
    """All trace events of a run, grouped and queryable."""

    events: List[TimelineEvent] = field(default_factory=list)

    def for_node(self, node: str) -> List[TimelineEvent]:
        return [e for e in self.events if e.node == node]

    def for_category(self, category: str) -> List[TimelineEvent]:
        return [e for e in self.events if e.category == category]

    def between(self, start: float, end: float) -> List[TimelineEvent]:
        return [e for e in self.events if start <= e.time < end]

    def job_history(self, task_id: str, job_index: int) -> List[TimelineEvent]:
        """Every event touching one specific job, in time order."""
        needle_task = task_id
        out = []
        for event in self.events:
            if f"task={needle_task}" in event.description and (
                f"job={job_index}" in event.description
            ):
                out.append(event)
        return out


def build_timeline(tracer: Tracer) -> Timeline:
    """Convert raw trace records into a queryable timeline."""
    events = []
    for rec in sorted(tracer.records, key=lambda r: r.time):
        description = " ".join(f"{k}={v}" for k, v in rec.data)
        events.append(
            TimelineEvent(
                time=rec.time,
                node=rec.node or "-",
                category=rec.category,
                description=description,
            )
        )
    return Timeline(events=events)


def format_timeline(
    timeline: Timeline,
    start: float = 0.0,
    end: Optional[float] = None,
    limit: int = 60,
) -> str:
    """Plain chronological listing (one line per event)."""
    events = timeline.events
    if end is not None:
        events = [e for e in events if start <= e.time < end]
    else:
        events = [e for e in events if e.time >= start]
    lines = [f"{'time (s)':>12}  {'node':12} {'event':18} details"]
    for event in events[:limit]:
        lines.append(
            f"{event.time:12.6f}  {event.node:12} {event.category:18} "
            f"{event.description}"
        )
    if len(events) > limit:
        lines.append(f"... {len(events) - limit} more events")
    return "\n".join(lines)


def format_lanes(
    timeline: Timeline,
    nodes: List[str],
    start: float,
    end: float,
    width: int = 100,
) -> str:
    """ASCII lane chart: one row per processor, one column per time
    bucket, marker = most significant event in the bucket."""
    if end <= start:
        raise ValueError("end must be after start")
    bucket = (end - start) / width
    priority = {m: i for i, m in enumerate("CXxARraci")}  # high to low
    lanes: Dict[str, List[str]] = {n: ["."] * width for n in nodes}
    for event in timeline.between(start, end):
        marker = _MARKERS.get(event.category)
        if marker is None or event.node not in lanes:
            continue
        col = min(width - 1, int((event.time - start) / bucket))
        current = lanes[event.node][col]
        if current == "." or priority.get(marker, 99) < priority.get(current, 99):
            lanes[event.node][col] = marker
    name_width = max(len(n) for n in nodes)
    lines = [
        f"timeline {start:.3f}s .. {end:.3f}s "
        f"({bucket * 1000:.1f} ms/column)  "
        "legend: a=arrive A=accept X/x=reject R=release c=subjob "
        "C=job-complete r=ir-report i=idle-reset"
    ]
    for node in nodes:
        lines.append(f"{node.ljust(name_width)} |{''.join(lanes[node])}|")
    return "\n".join(lines)

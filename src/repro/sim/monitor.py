"""Statistics collectors used by metrics and experiments.

Two collectors cover the library's needs:

* :class:`StatSeries` — streaming mean/max/min/count over samples (used for
  per-operation delays, response times, ...).
* :class:`TimeWeightedStat` — integral of a piecewise-constant signal over
  virtual time (used for average synthetic utilization per processor).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class StatSeries:
    """Streaming sample statistics with optional sample retention.

    >>> s = StatSeries()
    >>> for v in (1.0, 2.0, 3.0):
    ...     s.add(v)
    >>> s.mean, s.maximum, s.count
    (2.0, 3.0, 3)
    """

    keep_samples: bool = False
    count: int = 0
    total: float = 0.0
    total_sq: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf
    samples: List[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.total_sq += value * value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if self.keep_samples:
            self.samples.append(value)

    @property
    def mean(self) -> float:
        """Arithmetic mean of all samples (0.0 when empty)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count

    @property
    def variance(self) -> float:
        """Population variance of all samples (0.0 when empty)."""
        if self.count == 0:
            return 0.0
        m = self.mean
        return max(0.0, self.total_sq / self.count - m * m)

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "StatSeries") -> None:
        """Fold ``other``'s samples into this collector."""
        self.count += other.count
        self.total += other.total
        self.total_sq += other.total_sq
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        if self.keep_samples:
            self.samples.extend(other.samples)


class TimeWeightedStat:
    """Time-weighted average of a piecewise-constant signal.

    The signal starts at ``initial`` at time ``start``.  Call
    :meth:`update` whenever the value changes; :meth:`average` integrates up
    to the supplied time.

    >>> tw = TimeWeightedStat(start=0.0, initial=0.0)
    >>> tw.update(1.0, 1.0)     # value becomes 1.0 at t=1
    >>> tw.average(2.0)         # 0.0 for one second, 1.0 for one second
    0.5
    """

    def __init__(self, start: float = 0.0, initial: float = 0.0) -> None:
        self._last_time = start
        self._value = initial
        self._area = 0.0
        self._start = start
        self.peak = initial

    @property
    def value(self) -> float:
        """The current signal value."""
        return self._value

    def update(self, time: float, value: float) -> None:
        """Record that the signal changed to ``value`` at ``time``."""
        if time < self._last_time:
            raise ValueError(
                f"time went backwards: {time} < {self._last_time}"
            )
        self._area += self._value * (time - self._last_time)
        self._last_time = time
        self._value = value
        if value > self.peak:
            self.peak = value

    def average(self, until: Optional[float] = None) -> float:
        """Time-weighted mean from start until ``until`` (default: last update)."""
        end = self._last_time if until is None else until
        if end < self._last_time:
            raise ValueError("cannot average before the last update")
        area = self._area + self._value * (end - self._last_time)
        span = end - self._start
        if span <= 0:
            return self._value
        return area / span

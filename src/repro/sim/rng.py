"""Named, seeded random-number streams.

Experiments need independent randomness for distinct concerns (task-set
generation, aperiodic arrivals, communication-delay jitter, ...).  Sharing a
single ``random.Random`` couples them: adding one extra draw in the workload
generator would perturb every arrival time downstream.  ``RngRegistry``
derives one stream per name from a master seed so each concern is stable in
isolation.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngRegistry:
    """A factory of independent ``random.Random`` streams.

    Each stream is seeded with ``sha256(master_seed || name)`` so streams are
    decorrelated and stable across runs and across Python versions.

    >>> rngs = RngRegistry(7)
    >>> a = rngs.stream("arrivals")
    >>> b = rngs.stream("delays")
    >>> a is rngs.stream("arrivals")
    True
    """

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the stream for ``name``."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(
                f"{self.master_seed}:{name}".encode("utf-8")
            ).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def spawn(self, name: str) -> "RngRegistry":
        """Derive a child registry (for nested generators)."""
        digest = hashlib.sha256(
            f"{self.master_seed}:spawn:{name}".encode("utf-8")
        ).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))

"""Named, seeded random-number streams.

Experiments need independent randomness for distinct concerns (task-set
generation, aperiodic arrivals, communication-delay jitter, ...).  Sharing a
single ``random.Random`` couples them: adding one extra draw in the workload
generator would perturb every arrival time downstream.  ``RngRegistry``
derives one stream per name from a master seed so each concern is stable in
isolation.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Dict, Optional


class _AuditedStream:
    """Attribution proxy around one named stream (``REPRO_SANITIZE=1``).

    Forwards every draw to the wrapped :class:`random.Random` and records
    it — with the generator's post-draw state — in the registry's draw
    ledger.  A draw taken on the raw generator instead of through this
    proxy leaves the state ahead of the last recorded fingerprint, which
    :meth:`RngRegistry.audit` reports as an unattributed draw.
    """

    __slots__ = ("_rng", "_name", "_ledger")

    # State readers don't advance the generator; recording them would
    # inflate the draw counts without attributing anything.
    _NON_DRAWS = frozenset({"getstate"})

    def __init__(self, rng: random.Random, name: str, ledger: Any) -> None:
        object.__setattr__(self, "_rng", rng)
        object.__setattr__(self, "_name", name)
        object.__setattr__(self, "_ledger", ledger)
        ledger.baseline(name, rng.getstate())

    def __getattr__(self, attr: str) -> Any:
        value = getattr(self._rng, attr)
        if not callable(value) or attr in self._NON_DRAWS:
            return value
        rng, name, ledger = self._rng, self._name, self._ledger

        def _attributed(*args: Any, **kwargs: Any) -> Any:
            result = value(*args, **kwargs)
            ledger.record(name, rng.getstate())
            return result

        return _attributed


class RngRegistry:
    """A factory of independent ``random.Random`` streams.

    Each stream is seeded with ``sha256(master_seed || name)`` so streams are
    decorrelated and stable across runs and across Python versions.

    Under ``REPRO_SANITIZE=1`` (checked once, at construction) every
    stream is handed out behind an :class:`_AuditedStream` proxy and
    :meth:`audit` verifies that no generator advanced without an
    attributed draw.  Draws are bit-identical either way — the proxy only
    observes.

    >>> rngs = RngRegistry(7)
    >>> a = rngs.stream("arrivals")
    >>> b = rngs.stream("delays")
    >>> a is rngs.stream("arrivals")
    True
    """

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}
        self._audited: Dict[str, _AuditedStream] = {}
        from repro import sanitize

        self.draw_ledger: Optional[sanitize.RngDrawLedger] = (
            sanitize.RngDrawLedger() if sanitize.enabled() else None
        )

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the stream for ``name``."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(
                f"{self.master_seed}:{name}".encode("utf-8")
            ).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        if self.draw_ledger is None:
            return rng
        audited = self._audited.get(name)
        if audited is None:
            audited = _AuditedStream(rng, name, self.draw_ledger)
            self._audited[name] = audited
        # The proxy quacks like random.Random for every caller we have;
        # the declared return type keeps the sanitizer transparent.
        return audited  # type: ignore[return-value]

    def audit(self) -> None:
        """Fail on unattributed draws (no-op unless sanitizing).

        Called at run boundaries (``MiddlewareSystem.run``,
        ``RuntimeEnv.audit_rngs``); raises
        :class:`repro.sanitize.SanitizeViolation` if any stream's
        generator state moved without a draw recorded through its proxy.
        """
        if self.draw_ledger is None:
            return
        self.draw_ledger.audit(
            (name, rng.getstate())
            for name, rng in sorted(self._streams.items())
        )

    def spawn(self, name: str) -> "RngRegistry":
        """Derive a child registry (for nested generators)."""
        digest = hashlib.sha256(
            f"{self.master_seed}:spawn:{name}".encode("utf-8")
        ).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))

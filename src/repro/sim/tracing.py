"""Virtual-time tracing.

The paper instruments KURT-Linux with CPU timestamp counters to attribute
delay to individual middleware operations (Figure 7/8).  Our substitute is a
:class:`Tracer` that records ``TraceRecord`` tuples at exact virtual times.
Experiments and the overhead accounting in :mod:`repro.metrics.overhead`
consume these records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class TraceRecord:
    """A single trace event.

    Attributes
    ----------
    time:
        Virtual time at which the event was recorded.
    category:
        A dotted event category, e.g. ``"ac.admit"`` or ``"te.release"``.
    node:
        The processor name the event happened on (or ``None`` for global).
    data:
        Free-form payload (task ids, decisions, delays, ...).
    """

    time: float
    category: str
    node: Optional[str]
    data: Tuple[Tuple[str, Any], ...]

    def get(self, key: str, default: Any = None) -> Any:
        for k, v in self.data:
            if k == key:
                return v
        return default


@dataclass
class Tracer:
    """Collects :class:`TraceRecord` instances, optionally filtered.

    A ``Tracer`` may be disabled wholesale (``enabled=False``) for long
    benchmark runs, in which case :meth:`record` is a cheap no-op.
    """

    enabled: bool = True
    records: List[TraceRecord] = field(default_factory=list)
    _listeners: List[Callable[[TraceRecord], None]] = field(default_factory=list)

    def record(
        self,
        time: float,
        category: str,
        node: Optional[str] = None,
        **data: Any,
    ) -> None:
        if not self.enabled:
            return
        rec = TraceRecord(time, category, node, tuple(sorted(data.items())))
        self.records.append(rec)
        for listener in self._listeners:
            listener(rec)

    def subscribe(self, listener: Callable[[TraceRecord], None]) -> None:
        """Register a callback invoked for every recorded trace event."""
        self._listeners.append(listener)

    def by_category(self, category: str) -> List[TraceRecord]:
        """All records whose category equals ``category``."""
        return [r for r in self.records if r.category == category]

    def categories(self) -> Dict[str, int]:
        """Histogram of category -> record count."""
        out: Dict[str, int] = {}
        for rec in self.records:
            out[rec.category] = out.get(rec.category, 0) + 1
        return out

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterable[TraceRecord]:
        return iter(self.records)

"""Discrete-event simulation substrate.

This package replaces the paper's physical testbed (six KURT-Linux machines
on a 100 Mbps switch) with a deterministic virtual-time simulator.  All
middleware components in :mod:`repro.core` execute against a
:class:`~repro.sim.kernel.Simulator` instance, which provides:

* an event heap with deterministic ordering (time, priority, sequence),
* cancellable event handles,
* named, seeded random-number streams (:mod:`repro.sim.rng`),
* tracing and statistics collection (:mod:`repro.sim.tracing`,
  :mod:`repro.sim.monitor`).
"""

from repro.sim.kernel import EventHandle, Simulator
from repro.sim.monitor import StatSeries, TimeWeightedStat
from repro.sim.rng import RngRegistry
from repro.sim.tracing import TraceRecord, Tracer

__all__ = [
    "EventHandle",
    "Simulator",
    "RngRegistry",
    "StatSeries",
    "TimeWeightedStat",
    "TraceRecord",
    "Tracer",
]

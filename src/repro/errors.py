"""Exception hierarchy for the ``repro`` middleware library.

Every error raised by the library derives from :class:`ReproError`, so
applications can install a single ``except ReproError`` guard around
middleware calls.  Sub-hierarchies mirror the package layout: simulation
kernel errors, component-model errors, configuration/deployment errors and
scheduling errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Errors raised by the discrete-event simulation kernel."""


class SchedulingError(ReproError):
    """Errors raised by the scheduling/analysis layer."""


class TaskModelError(SchedulingError):
    """An end-to-end task or subtask specification is malformed."""


class ComponentError(ReproError):
    """Errors raised by the CCM-lite component model."""


class PortError(ComponentError):
    """A port connection or lookup failed."""


class AttributeConfigError(ComponentError):
    """A component attribute was configured with an invalid value."""


class ConfigurationError(ReproError):
    """Errors raised by the front-end configuration engine."""


class InvalidStrategyCombination(ConfigurationError):
    """A combination of AC/IR/LB strategies is not valid (paper section 4.5).

    The canonical example is admission control *per task* combined with idle
    resetting *per job*: per-job resetting removes the synthetic-utilization
    contributions of completed periodic subjobs, but per-task admission
    control requires those contributions to remain reserved for the lifetime
    of the admitted task.
    """


class WorkloadSpecError(ConfigurationError):
    """A workload specification file is malformed."""


class DeploymentError(ConfigurationError):
    """Errors raised by the DAnCE-lite deployment pipeline."""

"""Disturbance injection: probing the boundaries of the AUB guarantee.

The paper's guarantee — every *admitted* job meets its end-to-end
deadline — rests on three assumptions the simulator lets us break on
purpose:

* **Arrival bursts** do *not* break it: admission control is exactly the
  mechanism that sheds excess load (:func:`run_burst_scenario`).
* **Processor slowdown** breaks the known-execution-time assumption:
  subjobs overrun their declared WCET and deadlines are missed
  (:func:`run_slowdown_scenario`).
* **Network congestion** breaks the negligible-overhead assumption: the
  admission round trip eats tight deadlines and the AC's state goes
  stale (:func:`repro.experiments.sensitivity.sweep_network_delay`).

These scenarios double as regression tests that the middleware *fails
the way the theory predicts* — a stronger check than only testing the
happy path.

Disturbances are first-class :class:`~repro.api.scenario.Scenario` data
(:class:`~repro.api.scenario.Burst` / ``Slowdown`` hooks), so the same
multiprocessing runner that fans out the paper figures executes
disturbance grids too — deterministically for any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.api.scenario import Burst, Scenario, Slowdown, WorkloadSource
from repro.api.session import RunResult, Session
from repro.api.suite import ExperimentSuite
from repro.workloads.generator import RandomWorkloadParams
from repro.workloads.model import Workload


@dataclass
class DisturbanceResult:
    """Outcome of one disturbance scenario."""

    scenario: str
    accepted_utilization_ratio: float
    deadline_misses: int
    released_jobs: int
    rejected_jobs: int
    detail: Dict[str, float]

    def to_json(self) -> dict:
        return {
            "scenario": self.scenario,
            "accepted_utilization_ratio": self.accepted_utilization_ratio,
            "deadline_misses": self.deadline_misses,
            "released_jobs": self.released_jobs,
            "rejected_jobs": self.rejected_jobs,
            "detail": dict(self.detail),
        }


def _source(
    seed: int,
    params: Optional[RandomWorkloadParams],
    workload: Optional[Workload],
) -> WorkloadSource:
    if workload is not None:
        return WorkloadSource.explicit(workload)
    # The historical scenarios drew their workload from the "wl" stream.
    return WorkloadSource.random(seed=seed, params=params, stream="wl")


def build_burst_scenario(
    duration: float = 60.0,
    burst_time: float = 20.0,
    burst_jobs: int = 30,
    seed: int = 2008,
    combo_label: str = "J_J_N",
    params: Optional[RandomWorkloadParams] = None,
    workload: Optional[Workload] = None,
) -> Scenario:
    """The arrival-burst disturbance as a declarative scenario."""
    return Scenario(
        workload=_source(seed, params, workload),
        combo=combo_label,
        duration=duration,
        seed=seed,
        disturbances=(Burst(time=burst_time, jobs=burst_jobs),),
        label="arrival_burst",
    )


def build_slowdown_scenario(
    duration: float = 60.0,
    slowdown_time: float = 20.0,
    slow_factor: float = 0.25,
    seed: int = 2008,
    combo_label: str = "J_N_N",
    params: Optional[RandomWorkloadParams] = None,
    workload: Optional[Workload] = None,
) -> Scenario:
    """The processor-slowdown disturbance as a declarative scenario."""
    return Scenario(
        workload=_source(seed, params, workload),
        combo=combo_label,
        duration=duration,
        seed=seed,
        disturbances=(Slowdown(time=slowdown_time, factor=slow_factor),),
        label="processor_slowdown",
    )


def _to_disturbance_result(
    run: RunResult, scenario: str, detail: Dict[str, float]
) -> DisturbanceResult:
    return DisturbanceResult(
        scenario=scenario,
        accepted_utilization_ratio=run.accepted_utilization_ratio,
        deadline_misses=run.deadline_misses,
        released_jobs=run.released_jobs,
        rejected_jobs=run.rejected_jobs,
        detail=detail,
    )


def run_burst_scenario(
    duration: float = 60.0,
    burst_time: float = 20.0,
    burst_jobs: int = 30,
    seed: int = 2008,
    combo_label: str = "J_J_N",
) -> DisturbanceResult:
    """Inject a dense burst of aperiodic alert jobs mid-run.

    The admission controller must shed the excess (acceptance drops) but
    every released job still meets its deadline — overload does not turn
    into missed deadlines, it turns into rejections.
    """
    scenario = build_burst_scenario(
        duration=duration,
        burst_time=burst_time,
        burst_jobs=burst_jobs,
        seed=seed,
        combo_label=combo_label,
    )
    return _to_disturbance_result(
        Session(scenario).run(),
        "arrival_burst",
        {"burst_jobs": float(burst_jobs)},
    )


def run_slowdown_scenario(
    duration: float = 60.0,
    slowdown_time: float = 20.0,
    slow_factor: float = 0.25,
    seed: int = 2008,
    combo_label: str = "J_N_N",
) -> DisturbanceResult:
    """Throttle every application processor mid-run.

    Subjobs then take ``1 / slow_factor`` times their declared execution
    time, violating the known-WCET assumption behind condition (1);
    admitted jobs start missing deadlines — the failure mode the paper's
    model explicitly excludes.
    """
    scenario = build_slowdown_scenario(
        duration=duration,
        slowdown_time=slowdown_time,
        slow_factor=slow_factor,
        seed=seed,
        combo_label=combo_label,
    )
    return _to_disturbance_result(
        Session(scenario).run(),
        "processor_slowdown",
        {"slow_factor": slow_factor},
    )


def build_disturbance_suite(
    duration: float = 60.0,
    seed: int = 2008,
    burst_jobs: int = 30,
    slow_factor: float = 0.25,
) -> ExperimentSuite:
    """Both disturbance probes as one declarative suite."""
    return ExperimentSuite(
        name="disturbance",
        cells=(
            build_burst_scenario(
                duration=duration, seed=seed, burst_jobs=burst_jobs
            ),
            build_slowdown_scenario(
                duration=duration, seed=seed, slow_factor=slow_factor
            ),
        ),
    )


def run_disturbance_suite(
    duration: float = 60.0,
    seed: int = 2008,
    burst_jobs: int = 30,
    slow_factor: float = 0.25,
    n_workers: Optional[int] = None,
) -> List[DisturbanceResult]:
    """Run both disturbance probes through the parallel runner."""
    suite = build_disturbance_suite(
        duration=duration, seed=seed, burst_jobs=burst_jobs, slow_factor=slow_factor
    )
    burst_run, slowdown_run = suite.run_results(n_workers)
    return [
        _to_disturbance_result(
            burst_run, "arrival_burst", {"burst_jobs": float(burst_jobs)}
        ),
        _to_disturbance_result(
            slowdown_run, "processor_slowdown", {"slow_factor": slow_factor}
        ),
    ]

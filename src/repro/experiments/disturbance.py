"""Disturbance injection: probing the boundaries of the AUB guarantee.

The paper's guarantee — every *admitted* job meets its end-to-end
deadline — rests on three assumptions the simulator lets us break on
purpose:

* **Arrival bursts** do *not* break it: admission control is exactly the
  mechanism that sheds excess load (:func:`run_burst_scenario`).
* **Processor slowdown** breaks the known-execution-time assumption:
  subjobs overrun their declared WCET and deadlines are missed
  (:func:`run_slowdown_scenario`).
* **Network congestion** breaks the negligible-overhead assumption: the
  admission round trip eats tight deadlines and the AC's state goes
  stale (:func:`repro.experiments.sensitivity.sweep_network_delay`).

These scenarios double as regression tests that the middleware *fails
the way the theory predicts* — a stronger check than only testing the
happy path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.cost_model import CostModel
from repro.core.middleware import MiddlewareSystem
from repro.core.strategies import StrategyCombo
from repro.sched.task import Job, TaskKind, TaskSpec
from repro.sim.rng import RngRegistry
from repro.workloads.generator import RandomWorkloadParams, generate_random_workload
from repro.workloads.model import Workload


@dataclass
class DisturbanceResult:
    """Outcome of one disturbance scenario."""

    scenario: str
    accepted_utilization_ratio: float
    deadline_misses: int
    released_jobs: int
    rejected_jobs: int
    detail: Dict[str, float]


def _base_system(
    seed: int,
    combo_label: str,
    params: Optional[RandomWorkloadParams] = None,
    workload: Optional[Workload] = None,
) -> MiddlewareSystem:
    if workload is None:
        workload = generate_random_workload(
            RngRegistry(seed).stream("wl"), params
        )
    return MiddlewareSystem(
        workload, StrategyCombo.from_label(combo_label), seed=seed
    )


def run_burst_scenario(
    duration: float = 60.0,
    burst_time: float = 20.0,
    burst_jobs: int = 30,
    seed: int = 2008,
    combo_label: str = "J_J_N",
) -> DisturbanceResult:
    """Inject a dense burst of aperiodic alert jobs mid-run.

    The admission controller must shed the excess (acceptance drops) but
    every released job still meets its deadline — overload does not turn
    into missed deadlines, it turns into rejections.
    """
    system = _base_system(seed, combo_label)
    workload = system.workload
    alert = workload.aperiodic_tasks[0]
    base_index = 100_000  # clear of the generated arrival plan's indices
    for i in range(burst_jobs):
        arrival = burst_time + i * 1e-3
        system.sim.schedule_at(arrival, system._arrive, alert, base_index + i, arrival)
    results = system.run(duration)
    return DisturbanceResult(
        scenario="arrival_burst",
        accepted_utilization_ratio=results.accepted_utilization_ratio,
        deadline_misses=results.deadline_misses,
        released_jobs=results.metrics.released_jobs,
        rejected_jobs=results.metrics.rejected_jobs,
        detail={"burst_jobs": float(burst_jobs)},
    )


def run_slowdown_scenario(
    duration: float = 60.0,
    slowdown_time: float = 20.0,
    slow_factor: float = 0.25,
    seed: int = 2008,
    combo_label: str = "J_N_N",
) -> DisturbanceResult:
    """Throttle every application processor mid-run.

    Subjobs then take ``1 / slow_factor`` times their declared execution
    time, violating the known-WCET assumption behind condition (1);
    admitted jobs start missing deadlines — the failure mode the paper's
    model explicitly excludes.
    """
    system = _base_system(seed, combo_label)

    def throttle() -> None:
        for node in system.workload.app_nodes:
            system.processors[node].set_speed(slow_factor)

    system.sim.schedule_at(slowdown_time, throttle)
    results = system.run(duration)
    return DisturbanceResult(
        scenario="processor_slowdown",
        accepted_utilization_ratio=results.accepted_utilization_ratio,
        deadline_misses=results.deadline_misses,
        released_jobs=results.metrics.released_jobs,
        rejected_jobs=results.metrics.rejected_jobs,
        detail={"slow_factor": slow_factor},
    )

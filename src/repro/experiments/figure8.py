"""Figure 8: overheads of the service components (microseconds).

Section 7.3 recipe: random workload with 1-3 subtasks per task on 3
application processors plus the task-manager processor, 5-minute runs.
Two configurations are needed to populate every row of the table: a no-LB
run measures "AC without LB", and an LB-enabled run measures the with-LB
and re-allocation paths; IR-per-job is enabled so the IR rows fill.

The paper's headline check: *every* delay induced by the configurable
components stays below 2 ms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.api.scenario import Scenario, WorkloadSource
from repro.api.suite import ExperimentSuite
from repro.core.cost_model import CostModel
from repro.experiments.report import format_table
from repro.metrics.overhead import (
    ALL_ROWS,
    OverheadAccounting,
    OverheadRow,
    PAPER_FIGURE8_USEC,
    ROW_AC_WITHOUT_LB,
)
from repro.sim.rng import RngRegistry
from repro.workloads.generator import RandomWorkloadParams, generate_random_workload


@dataclass
class Figure8Result:
    """Measured overhead rows plus the paper's values for comparison."""

    duration: float
    rows: List[OverheadRow] = field(default_factory=list)

    def row(self, name: str) -> Optional[OverheadRow]:
        for row in self.rows:
            if row.name == name:
                return row
        return None

    def max_service_delay_usec(self) -> float:
        """Largest measured max over admission paths (< 2000 in the paper)."""
        paths = [
            r.max_usec
            for r in self.rows
            if r.name.startswith(("ac_", "lb_"))
        ]
        return max(paths) if paths else 0.0

    def to_json(self) -> Dict[str, Any]:
        return {
            "experiment": "figure8",
            "duration": self.duration,
            "max_service_delay_usec": self.max_service_delay_usec(),
            "rows": [
                {
                    "name": row.name,
                    "mean_usec": row.mean_usec,
                    "max_usec": row.max_usec,
                    "samples": row.samples,
                    "paper_mean_max_usec": PAPER_FIGURE8_USEC.get(row.name),
                }
                for row in self.rows
            ],
        }

    def format(self) -> str:
        table_rows = []
        for row in self.rows:
            paper = PAPER_FIGURE8_USEC.get(row.name)
            table_rows.append(
                [
                    row.name,
                    f"{row.mean_usec:.0f}",
                    f"{row.max_usec:.0f}",
                    row.samples,
                    f"{paper[0]}/{paper[1]}" if paper else "-",
                ]
            )
        return format_table(
            ["path", "mean (us)", "max (us)", "samples", "paper mean/max"],
            table_rows,
            title=f"Figure 8 — Service overheads ({self.duration:.0f}s runs)",
        )


def _default_params() -> RandomWorkloadParams:
    # Section 7.3: same generator as 7.1 but 1-3 subtasks per task and
    # 3 application processors.
    return RandomWorkloadParams(
        n_processors=3, min_subtasks=1, max_subtasks=3
    )


def build_figure8_suite(
    duration: float = 300.0,
    seed: int = 2008,
    cost_model: Optional[CostModel] = None,
    params: Optional[RandomWorkloadParams] = None,
    aperiodic_interarrival_factor: float = 2.0,
) -> ExperimentSuite:
    """The two Figure 8 configuration runs as a declarative suite."""
    params = params or _default_params()
    gen_rng = RngRegistry(seed).stream("task_sets")
    workload = generate_random_workload(gen_rng, params)
    cells = tuple(
        Scenario(
            workload=WorkloadSource.explicit(workload),
            combo=label,
            duration=duration,
            seed=seed,
            cost_model=cost_model,
            aperiodic_interarrival_factor=aperiodic_interarrival_factor,
            label=f"figure8/{label}",
        )
        for label in ("J_J_N", "J_J_J")
    )
    return ExperimentSuite(name="figure8", cells=cells)


def run_figure8(
    duration: float = 300.0,
    seed: int = 2008,
    cost_model: Optional[CostModel] = None,
    params: Optional[RandomWorkloadParams] = None,
    aperiodic_interarrival_factor: float = 2.0,
    n_workers: Optional[int] = None,
) -> Figure8Result:
    """Run the Figure 8 overhead measurement.

    ``duration`` defaults to the paper's 5-minute runs; tests pass
    something smaller.  The two configuration runs (no-LB for the "AC
    without LB" row, LB-per-job for the with-LB/re-allocation/IR rows)
    are independent scenario cells fanned out by the parallel runner;
    their overhead snapshots merge in the fixed no-LB-then-LB order, so
    the result is bit-identical to the serial path.
    """
    suite = build_figure8_suite(
        duration=duration,
        seed=seed,
        cost_model=cost_model,
        params=params,
        aperiodic_interarrival_factor=aperiodic_interarrival_factor,
    )
    outcomes = suite.run_results(n_workers)
    merged = OverheadAccounting()
    for run in outcomes:
        for name in ALL_ROWS:
            merged.series(name).merge(run.overhead[name].to_series())
    # Communication-delay samples come from both networks.
    for run in outcomes:
        merged.series("communication_delay").merge(run.comm_delay.to_series())

    result = Figure8Result(duration=duration, rows=merged.rows())
    return result

"""Figure 5: accepted utilization ratio for all 15 valid combinations.

Section 7.1 recipe: 10 random task sets (4 aperiodic + 5 periodic tasks
each, subtasks/task ~ U{1..5}, deadlines ~ U[250 ms, 10 s], per-processor
synthetic utilization 0.5, one replica per subtask), each run under every
valid combination; the figure reports the mean accepted utilization ratio
per combination.

Arrival plans are shared across combinations for the same task set (the
RNG streams are keyed independently of configuration), so the comparison
is paired exactly like the paper's "ran 10 task sets using each
combination and compared them".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.api.suite import ExperimentSuite, combo_grid, fold_combo_grid
from repro.core.cost_model import CostModel
from repro.core.strategies import StrategyCombo, valid_combinations
from repro.experiments.report import bar_chart
from repro.sim.rng import RngRegistry
from repro.workloads.generator import RandomWorkloadParams, generate_random_workload
from repro.workloads.model import Workload


@dataclass
class Figure5Result:
    """Mean (and per-set) accepted utilization ratio per combination."""

    duration: float
    n_sets: int
    per_combo: Dict[str, float] = field(default_factory=dict)
    per_combo_sets: Dict[str, List[float]] = field(default_factory=dict)
    deadline_misses: int = 0

    def best_combo(self) -> str:
        return max(self.per_combo, key=self.per_combo.get)

    def mean_over(self, labels: Sequence[str]) -> float:
        return sum(self.per_combo[l] for l in labels) / len(labels)

    def by_ir_strategy(self) -> Dict[str, float]:
        """Mean ratio grouped by the IR strategy letter (* X *)."""
        groups: Dict[str, List[float]] = {"N": [], "T": [], "J": []}
        for label, value in self.per_combo.items():
            groups[label.split("_")[1]].append(value)
        return {k: sum(v) / len(v) for k, v in groups.items() if v}

    def format(self) -> str:
        return bar_chart(
            self.per_combo,
            title=(
                "Figure 5 — Average accepted utilization ratio "
                f"({self.n_sets} random task sets, {self.duration:.0f}s each)"
            ),
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "experiment": "figure5",
            "duration": self.duration,
            "n_sets": self.n_sets,
            "per_combo": dict(self.per_combo),
            "per_combo_sets": {k: list(v) for k, v in self.per_combo_sets.items()},
            "deadline_misses": self.deadline_misses,
            "by_ir_strategy": self.by_ir_strategy(),
        }


def build_figure5_suite(
    n_sets: int = 10,
    duration: float = 60.0,
    seed: int = 2008,
    cost_model: Optional[CostModel] = None,
    params: Optional[RandomWorkloadParams] = None,
    combos: Optional[Sequence[StrategyCombo]] = None,
    aperiodic_interarrival_factor: float = 2.0,
    workloads: Optional[Sequence[Workload]] = None,
) -> ExperimentSuite:
    """The Figure 5 grid as a declarative :class:`ExperimentSuite`."""
    combos = list(combos) if combos is not None else valid_combinations()
    if workloads is None:
        gen_rng = RngRegistry(seed).stream("task_sets")
        workloads = [
            generate_random_workload(gen_rng, params) for _ in range(n_sets)
        ]
    return combo_grid(
        "figure5",
        list(workloads),
        combos,
        seed,
        duration,
        cost_model,
        aperiodic_interarrival_factor,
    )


def run_figure5(
    n_sets: int = 10,
    duration: float = 60.0,
    seed: int = 2008,
    cost_model: Optional[CostModel] = None,
    params: Optional[RandomWorkloadParams] = None,
    combos: Optional[Sequence[StrategyCombo]] = None,
    aperiodic_interarrival_factor: float = 2.0,
    workloads: Optional[Sequence[Workload]] = None,
    n_workers: Optional[int] = None,
) -> Figure5Result:
    """Run the Figure 5 experiment.

    Parameters mirror the paper's setup; ``duration`` defaults to 60 s
    (the paper ran 5 minutes — pass ``duration=300`` for paper scale).
    ``workloads`` overrides generation for tests that need fixed sets.
    The (combo, task set) cells are independent simulations fanned out
    over ``n_workers`` processes (see :mod:`repro.experiments.runner`);
    results are bit-identical to a serial run for every worker count.
    """
    combos = list(combos) if combos is not None else valid_combinations()
    if workloads is not None:
        workloads = list(workloads)
        n_sets = len(workloads)
    suite = build_figure5_suite(
        n_sets=n_sets,
        duration=duration,
        seed=seed,
        cost_model=cost_model,
        params=params,
        combos=combos,
        aperiodic_interarrival_factor=aperiodic_interarrival_factor,
        workloads=workloads,
    )
    result = Figure5Result(duration=duration, n_sets=n_sets)
    result.per_combo_sets, result.deadline_misses = fold_combo_grid(
        suite.run_results(n_workers), combos, n_sets
    )
    for label, ratios in result.per_combo_sets.items():
        result.per_combo[label] = sum(ratios) / len(ratios)
    return result

"""Experiment runners: one module per paper table/figure.

* :mod:`repro.experiments.figure5` — accepted utilization ratio of all 15
  valid strategy combinations on random workloads (section 7.1).
* :mod:`repro.experiments.figure6` — LB strategy comparison on imbalanced
  workloads (section 7.2).
* :mod:`repro.experiments.figure8` — service overhead decomposition table
  (section 7.3).
* :mod:`repro.experiments.table1` — criteria-to-strategy mapping.
* :mod:`repro.experiments.ablation` — AUB vs Deferrable Server admission.
* :mod:`repro.experiments.runner` — the shared multiprocessing fan-out all
  of the above dispatch their independent run cells through.

Each runner takes explicit duration/set-count/seed parameters so tests can
run scaled-down versions while benchmarks run paper-scale ones, plus an
``n_workers`` parameter (default: ``$REPRO_WORKERS`` or the CPU count)
controlling the parallel fan-out; results are bit-identical for every
worker count.
"""

from repro.experiments.figure5 import Figure5Result, run_figure5
from repro.experiments.figure6 import Figure6Result, run_figure6
from repro.experiments.figure8 import Figure8Result, run_figure8
from repro.experiments.runner import resolve_workers, run_cells
from repro.experiments.table1 import Table1Row, run_table1
from repro.experiments.ablation import AblationResult, run_aub_vs_deferrable

__all__ = [
    "Figure5Result",
    "run_figure5",
    "Figure6Result",
    "run_figure6",
    "Figure8Result",
    "run_figure8",
    "Table1Row",
    "run_table1",
    "AblationResult",
    "run_aub_vs_deferrable",
    "resolve_workers",
    "run_cells",
]

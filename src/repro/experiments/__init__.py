"""Experiment runners: one module per paper table/figure.

* :mod:`repro.experiments.figure5` — accepted utilization ratio of all 15
  valid strategy combinations on random workloads (section 7.1).
* :mod:`repro.experiments.figure6` — LB strategy comparison on imbalanced
  workloads (section 7.2).
* :mod:`repro.experiments.figure8` — service overhead decomposition table
  (section 7.3).
* :mod:`repro.experiments.table1` — criteria-to-strategy mapping.
* :mod:`repro.experiments.ablation` — AUB vs Deferrable Server admission.
* :mod:`repro.experiments.runner` — the shared multiprocessing fan-out all
  of the above dispatch their independent run cells through.

Each runner takes explicit duration/set-count/seed parameters so tests can
run scaled-down versions while benchmarks run paper-scale ones, plus an
``n_workers`` parameter (default: ``$REPRO_WORKERS`` or the CPU count)
controlling the parallel fan-out; results are bit-identical for every
worker count.

Every experiment module also exposes a ``build_*_suite`` constructor
returning its grid as a declarative
:class:`~repro.api.suite.ExperimentSuite` of
:class:`~repro.api.scenario.Scenario` cells — the ``run_*`` entry points
are thin folds over ``suite.run_results(n_workers)``.
"""

from repro.experiments.figure5 import (
    Figure5Result,
    build_figure5_suite,
    run_figure5,
)
from repro.experiments.figure6 import (
    Figure6Result,
    build_figure6_suite,
    run_figure6,
)
from repro.experiments.figure8 import (
    Figure8Result,
    build_figure8_suite,
    run_figure8,
)
from repro.experiments.runner import resolve_workers, run_cells
from repro.experiments.table1 import Table1Row, build_table1_suite, run_table1
from repro.experiments.ablation import (
    AblationResult,
    build_ablation_suite,
    run_aub_vs_deferrable,
)
from repro.experiments.chaos import (
    ChaosResult,
    build_chaos_suite,
    run_chaos_suite,
)
from repro.experiments.disturbance import (
    DisturbanceResult,
    build_disturbance_suite,
    run_burst_scenario,
    run_disturbance_suite,
    run_slowdown_scenario,
)
from repro.experiments.sensitivity import (
    SweepResult,
    build_delay_suite,
    build_load_suite,
    build_overhead_suite,
    sweep_load,
    sweep_network_delay,
    sweep_overhead,
)

__all__ = [
    "Figure5Result",
    "run_figure5",
    "build_figure5_suite",
    "Figure6Result",
    "run_figure6",
    "build_figure6_suite",
    "Figure8Result",
    "run_figure8",
    "build_figure8_suite",
    "Table1Row",
    "run_table1",
    "build_table1_suite",
    "AblationResult",
    "run_aub_vs_deferrable",
    "build_ablation_suite",
    "ChaosResult",
    "run_chaos_suite",
    "build_chaos_suite",
    "DisturbanceResult",
    "run_burst_scenario",
    "run_slowdown_scenario",
    "run_disturbance_suite",
    "build_disturbance_suite",
    "SweepResult",
    "sweep_load",
    "sweep_overhead",
    "sweep_network_delay",
    "build_load_suite",
    "build_overhead_suite",
    "build_delay_suite",
    "resolve_workers",
    "run_cells",
]

"""ASCII rendering of experiment results (tables and bar charts).

The paper presents Figures 5 and 6 as bar charts over the 15 combination
labels; :func:`bar_chart` renders the same series in a terminal.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render a simple aligned ASCII table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def bar_chart(
    values: Mapping[str, float],
    title: str = "",
    width: int = 50,
    max_value: float = 1.0,
) -> str:
    """Render a horizontal bar chart (one bar per label, paper order)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    label_width = max((len(label) for label in values), default=0)
    for label, value in values.items():
        filled = int(round(min(value, max_value) / max_value * width))
        bar = "#" * filled
        lines.append(f"{label.ljust(label_width)} |{bar.ljust(width)}| {value:.3f}")
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)

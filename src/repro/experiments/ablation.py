"""Ablation: AUB admission vs the Deferrable Server baseline.

The paper adopts AUB because its earlier work found it performs
comparably to a Deferrable Server design while needing simpler middleware
mechanisms (section 2).  This experiment replays identical arrival traces
through both admission policies and compares accepted utilization ratios
— reproducing that comparison analytically (no middleware overheads, so
the difference is purely the admission mathematics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.api.scenario import Scenario, WorkloadSource
from repro.api.suite import ExperimentSuite
from repro.experiments.report import format_table
from repro.sched.replay import jobs_from_plan
from repro.sim.rng import RngRegistry
from repro.workloads.generator import RandomWorkloadParams, generate_random_workload
from repro.workloads.model import Workload

#: Back-compat alias — the canonical helper lives in repro.sched.replay.
_jobs_from_plan = jobs_from_plan


@dataclass
class AblationResult:
    """Paired accepted-utilization ratios per task set."""

    aub_ratios: List[float] = field(default_factory=list)
    ds_ratios: List[float] = field(default_factory=list)

    @property
    def aub_mean(self) -> float:
        return sum(self.aub_ratios) / len(self.aub_ratios)

    @property
    def ds_mean(self) -> float:
        return sum(self.ds_ratios) / len(self.ds_ratios)

    def format(self) -> str:
        rows = [
            [i, aub, ds]
            for i, (aub, ds) in enumerate(zip(self.aub_ratios, self.ds_ratios))
        ]
        rows.append(["mean", self.aub_mean, self.ds_mean])
        return format_table(
            ["task set", "AUB", "Deferrable Server"],
            rows,
            title="Ablation — AUB vs Deferrable Server admission",
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "experiment": "ablation",
            "aub_ratios": list(self.aub_ratios),
            "ds_ratios": list(self.ds_ratios),
            "aub_mean": self.aub_mean,
            "ds_mean": self.ds_mean,
        }


def build_ablation_suite(
    n_sets: int = 10,
    duration: float = 120.0,
    seed: int = 2008,
    params: Optional[RandomWorkloadParams] = None,
    aperiodic_interarrival_factor: float = 2.0,
    server_utilization: float = 0.3,
    server_period: float = 0.1,
) -> ExperimentSuite:
    """The ablation as a declarative replay-scenario grid.

    Task sets are generated up front from the shared stream (preserving
    the serial draw order); each set becomes *two* replay scenarios (AUB
    and Deferrable Server) whose per-set arrival streams are keyed by set
    index, so both replay exactly the same trace no matter which worker
    runs them.
    """
    gen_rng = RngRegistry(seed).stream("task_sets")
    workloads = [generate_random_workload(gen_rng, params) for _ in range(n_sets)]
    cells = []
    for set_index, workload in enumerate(workloads):
        source = WorkloadSource.explicit(workload)
        common = dict(
            workload=source,
            duration=duration,
            seed=seed,
            aperiodic_interarrival_factor=aperiodic_interarrival_factor,
            arrival_stream=f"arrivals:{set_index}",
            engine="replay",
        )
        cells.append(
            Scenario(policy="aub", label=f"aub/set{set_index}", **common)
        )
        cells.append(
            Scenario(
                policy="deferrable_server",
                policy_params=(
                    ("server_period", server_period),
                    ("server_utilization", server_utilization),
                ),
                label=f"ds/set{set_index}",
                **common,
            )
        )
    return ExperimentSuite(name="ablation", cells=tuple(cells))


def run_aub_vs_deferrable(
    n_sets: int = 10,
    duration: float = 120.0,
    seed: int = 2008,
    params: Optional[RandomWorkloadParams] = None,
    aperiodic_interarrival_factor: float = 2.0,
    server_utilization: float = 0.3,
    server_period: float = 0.1,
    n_workers: Optional[int] = None,
) -> AblationResult:
    """Replay identical traces through AUB and DS admission policies.

    Note the comparison's asymmetry (documented in DESIGN.md): AUB
    admission *guarantees* end-to-end deadlines for admitted jobs, while
    the DS utilization/budget tests are necessary-but-looser conditions —
    DS can show a higher acceptance ratio precisely because it promises
    less.  The paper's claim is that AUB is comparable while requiring
    simpler middleware mechanisms.

    Task sets are generated up front from the shared stream (preserving
    the serial draw order) and then replayed as independent parallel
    scenario cells; per-set arrival streams are keyed by set index, so
    each cell reproduces exactly the serial trace.
    """
    suite = build_ablation_suite(
        n_sets=n_sets,
        duration=duration,
        seed=seed,
        params=params,
        aperiodic_interarrival_factor=aperiodic_interarrival_factor,
        server_utilization=server_utilization,
        server_period=server_period,
    )
    outcomes = iter(suite.run_results(n_workers))
    result = AblationResult()
    for aub_run, ds_run in zip(outcomes, outcomes):
        result.aub_ratios.append(aub_run.accepted_utilization_ratio)
        result.ds_ratios.append(ds_run.accepted_utilization_ratio)
    return result

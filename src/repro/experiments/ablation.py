"""Ablation: AUB admission vs the Deferrable Server baseline.

The paper adopts AUB because its earlier work found it performs
comparably to a Deferrable Server design while needing simpler middleware
mechanisms (section 2).  This experiment replays identical arrival traces
through both admission policies and compares accepted utilization ratios
— reproducing that comparison analytically (no middleware overheads, so
the difference is purely the admission mathematics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.experiments.report import format_table
from repro.experiments.runner import replay_cell, run_cells
from repro.sched.task import Job
from repro.sim.rng import RngRegistry
from repro.workloads.generator import RandomWorkloadParams, generate_random_workload
from repro.workloads.model import Workload


@dataclass
class AblationResult:
    """Paired accepted-utilization ratios per task set."""

    aub_ratios: List[float] = field(default_factory=list)
    ds_ratios: List[float] = field(default_factory=list)

    @property
    def aub_mean(self) -> float:
        return sum(self.aub_ratios) / len(self.aub_ratios)

    @property
    def ds_mean(self) -> float:
        return sum(self.ds_ratios) / len(self.ds_ratios)

    def format(self) -> str:
        rows = [
            [i, aub, ds]
            for i, (aub, ds) in enumerate(zip(self.aub_ratios, self.ds_ratios))
        ]
        rows.append(["mean", self.aub_mean, self.ds_mean])
        return format_table(
            ["task set", "AUB", "Deferrable Server"],
            rows,
            title="Ablation — AUB vs Deferrable Server admission",
        )


def _jobs_from_plan(workload: Workload, plan) -> List[Job]:
    jobs: List[Job] = []
    tasks = {t.task_id: t for t in workload.tasks}
    for task_id, times in plan.times.items():
        task = tasks[task_id]
        arrival_node = task.subtasks[0].home
        for index, t in enumerate(times):
            job = Job(
                task=task, index=index, arrival_time=t, arrival_node=arrival_node
            )
            job.assignment = task.home_assignment()
            jobs.append(job)
    return jobs


def run_aub_vs_deferrable(
    n_sets: int = 10,
    duration: float = 120.0,
    seed: int = 2008,
    params: Optional[RandomWorkloadParams] = None,
    aperiodic_interarrival_factor: float = 2.0,
    server_utilization: float = 0.3,
    server_period: float = 0.1,
    n_workers: Optional[int] = None,
) -> AblationResult:
    """Replay identical traces through AUB and DS admission policies.

    Note the comparison's asymmetry (documented in DESIGN.md): AUB
    admission *guarantees* end-to-end deadlines for admitted jobs, while
    the DS utilization/budget tests are necessary-but-looser conditions —
    DS can show a higher acceptance ratio precisely because it promises
    less.  The paper's claim is that AUB is comparable while requiring
    simpler middleware mechanisms.

    Task sets are generated up front from the shared stream (preserving
    the serial draw order) and then replayed as independent parallel
    cells; per-set arrival streams are keyed by set index, so each cell
    reproduces exactly the serial trace.
    """
    rngs = RngRegistry(seed)
    gen_rng = rngs.stream("task_sets")
    workloads = [generate_random_workload(gen_rng, params) for _ in range(n_sets)]
    cells = [
        (
            workload,
            set_index,
            seed,
            duration,
            aperiodic_interarrival_factor,
            server_utilization,
            server_period,
        )
        for set_index, workload in enumerate(workloads)
    ]
    result = AblationResult()
    for aub_ratio, ds_ratio in run_cells(replay_cell, cells, n_workers):
        result.aub_ratios.append(aub_ratio)
        result.ds_ratios.append(ds_ratio)
    return result

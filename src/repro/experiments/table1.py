"""Table 1: criteria and middleware strategies.

Demonstrates the configuration engine's mapping on the application
categories the paper discusses:

* critical control (no job skipping — e.g. fail-safe shutdown chains),
* integral/PID control (stateful, not re-allocatable per job),
* proportional control (stateless, freely re-allocatable),
* video streaming / loss-tolerant sensing (job skipping fine),
* fixed-sensor pipelines (no replication possible).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.config.characteristics import (
    ApplicationCharacteristics,
    OverheadTolerance,
)
from repro.experiments.report import format_table


@dataclass(frozen=True)
class Table1Row:
    """One application category with its mapped strategy combination."""

    category: str
    characteristics: ApplicationCharacteristics
    combo_label: str
    notes: Tuple[str, ...]


#: The example application categories (name, C1, C3, C2, tolerance).
CATEGORIES = (
    ("critical control (fail-safe chain)", False, True, True, OverheadTolerance.PER_TASK),
    ("integral/PID control, replicated", True, True, True, OverheadTolerance.PER_TASK),
    ("proportional control, replicated", True, True, False, OverheadTolerance.PER_JOB),
    ("video streaming / loss-tolerant sensing", True, True, False, OverheadTolerance.PER_JOB),
    ("fixed-sensor pipeline (no replicas)", True, False, False, OverheadTolerance.PER_TASK),
    ("critical + per-job resetting requested", False, True, False, OverheadTolerance.PER_JOB),
)


def build_table1_suite():
    """The Table 1 categories as a declarative mapping-cell suite."""
    from repro.api.suite import ExperimentSuite, MappingCell

    cells = tuple(
        MappingCell(
            category=name,
            job_skipping=skipping,
            replicated_components=replicated,
            state_persistence=stateful,
            overhead_tolerance=tolerance.value,
        )
        for name, skipping, replicated, stateful, tolerance in CATEGORIES
    )
    return ExperimentSuite(name="table1", cells=cells)


def run_table1(n_workers: Optional[int] = 1) -> List[Table1Row]:
    """Map every example category through Table 1.

    Each category is an independent mapping cell dispatched through the
    shared experiment runner (row order is preserved).  The cells are
    constant-time dataclass mappings, so the default stays serial —
    pool spin-up would dwarf the work; pass ``n_workers`` to fan out.
    """
    return build_table1_suite().run(n_workers)


def rows_to_json(rows: List[Table1Row]) -> List[dict]:
    """Machine-readable Table 1 rows (for the CLI ``--json`` export)."""
    return [
        {
            "category": r.category,
            "job_skipping": r.characteristics.job_skipping,
            "replicated_components": r.characteristics.replicated_components,
            "state_persistence": r.characteristics.state_persistence,
            "overhead_tolerance": r.characteristics.overhead_tolerance.value,
            "combo": r.combo_label,
            "notes": list(r.notes),
        }
        for r in rows
    ]


def format_rows(rows: List[Table1Row]) -> str:
    return format_table(
        ["application category", "C1", "C3", "C2", "tol", "combo"],
        [
            [
                r.category,
                "Y" if r.characteristics.job_skipping else "N",
                "Y" if r.characteristics.replicated_components else "N",
                "Y" if r.characteristics.state_persistence else "N",
                r.characteristics.overhead_tolerance.value,
                r.combo_label,
            ]
            for r in rows
        ],
        title="Table 1 — Criteria and middleware strategies",
    )

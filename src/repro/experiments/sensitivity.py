"""Sensitivity sweeps — ablations beyond the paper's figures.

Three sweeps quantify the design trade-offs the paper discusses
qualitatively:

* **Load sweep** — accepted utilization ratio vs aperiodic arrival rate
  (the undisclosed free parameter of section 7.1), per combination.
* **Overhead sweep** — ratio vs scaling of all middleware operation
  costs (the overhead-vs-pessimism trade-off of section 4.2).
* **Delay sweep** — ratio and response times vs one-way network delay
  (how far the centralized AC architecture stretches before the
  admission round-trip bites into tight deadlines).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cost_model import CostModel
from repro.core.middleware import MiddlewareSystem
from repro.core.strategies import StrategyCombo
from repro.net.latency import ConstantDelay
from repro.sim.rng import RngRegistry
from repro.workloads.generator import RandomWorkloadParams, generate_random_workload
from repro.workloads.model import Workload


@dataclass
class SweepResult:
    """One sweep: parameter values -> accepted utilization ratios."""

    parameter: str
    combo_label: str
    points: List[Tuple[float, float]] = field(default_factory=list)

    def ratios(self) -> List[float]:
        return [r for _x, r in self.points]

    def monotone_decreasing(self, tolerance: float = 0.05) -> bool:
        """Whether the ratio never *rises* by more than ``tolerance`` as
        the stress parameter grows."""
        ratios = self.ratios()
        return all(b <= a + tolerance for a, b in zip(ratios, ratios[1:]))


def _workload(seed: int, params: Optional[RandomWorkloadParams]) -> Workload:
    return generate_random_workload(RngRegistry(seed).stream("wl"), params)


def sweep_load(
    factors: Sequence[float] = (4.0, 2.0, 1.0, 0.5),
    combo: StrategyCombo = None,
    duration: float = 60.0,
    seed: int = 2008,
    params: Optional[RandomWorkloadParams] = None,
) -> SweepResult:
    """Ratio vs aperiodic load (smaller interarrival factor = heavier)."""
    combo = combo or StrategyCombo.from_label("J_J_J")
    workload = _workload(seed, params)
    result = SweepResult("aperiodic_interarrival_factor", combo.label)
    for factor in factors:
        system = MiddlewareSystem(
            workload, combo, seed=seed, aperiodic_interarrival_factor=factor
        )
        run = system.run(duration)
        result.points.append((factor, run.accepted_utilization_ratio))
    return result


def sweep_overhead(
    scales: Sequence[float] = (0.0, 1.0, 10.0, 100.0),
    combo: StrategyCombo = None,
    duration: float = 60.0,
    seed: int = 2008,
    params: Optional[RandomWorkloadParams] = None,
) -> SweepResult:
    """Ratio vs middleware operation-cost scaling."""
    combo = combo or StrategyCombo.from_label("J_J_J")
    workload = _workload(seed, params)
    result = SweepResult("cost_scale", combo.label)
    for scale in scales:
        cost = CostModel.zero() if scale == 0 else CostModel().scaled(scale)
        system = MiddlewareSystem(workload, combo, cost_model=cost, seed=seed)
        run = system.run(duration)
        result.points.append((scale, run.accepted_utilization_ratio))
    return result


@dataclass
class DelaySweepPoint:
    delay: float
    accepted_utilization_ratio: float
    mean_response: float
    deadline_misses: int


def sweep_network_delay(
    delays: Sequence[float] = (0.0003, 0.001, 0.01, 0.05),
    combo: StrategyCombo = None,
    duration: float = 60.0,
    seed: int = 2008,
    params: Optional[RandomWorkloadParams] = None,
) -> List[DelaySweepPoint]:
    """Ratio/latency vs one-way network delay (centralized-AC stress)."""
    combo = combo or StrategyCombo.from_label("J_J_J")
    workload = _workload(seed, params)
    points: List[DelaySweepPoint] = []
    for delay in delays:
        system = MiddlewareSystem(
            workload, combo, seed=seed, delay_model=ConstantDelay(delay)
        )
        run = system.run(duration)
        points.append(
            DelaySweepPoint(
                delay=delay,
                accepted_utilization_ratio=run.accepted_utilization_ratio,
                mean_response=run.metrics.latency.response_times.mean,
                deadline_misses=run.deadline_misses,
            )
        )
    return points

"""Sensitivity sweeps — ablations beyond the paper's figures.

Three sweeps quantify the design trade-offs the paper discusses
qualitatively:

* **Load sweep** — accepted utilization ratio vs aperiodic arrival rate
  (the undisclosed free parameter of section 7.1), per combination.
* **Overhead sweep** — ratio vs scaling of all middleware operation
  costs (the overhead-vs-pessimism trade-off of section 4.2).
* **Delay sweep** — ratio and response times vs one-way network delay
  (how far the centralized AC architecture stretches before the
  admission round-trip bites into tight deadlines).

Each sweep is a declarative :class:`~repro.api.suite.ExperimentSuite` of
:class:`~repro.api.scenario.Scenario` cells executed through the shared
multiprocessing runner: every cell carries the same deterministic seed
the old serial loops passed to ``MiddlewareSystem``, so results are
bit-identical for any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.api.scenario import Scenario, WorkloadSource
from repro.api.suite import ExperimentSuite
from repro.core.cost_model import CostModel
from repro.core.strategies import StrategyCombo
from repro.net.latency import ConstantDelay
from repro.workloads.generator import RandomWorkloadParams


@dataclass
class SweepResult:
    """One sweep: parameter values -> accepted utilization ratios."""

    parameter: str
    combo_label: str
    points: List[Tuple[float, float]] = field(default_factory=list)

    def ratios(self) -> List[float]:
        return [r for _x, r in self.points]

    def monotone_decreasing(self, tolerance: float = 0.05) -> bool:
        """Whether the ratio never *rises* by more than ``tolerance`` as
        the stress parameter grows."""
        ratios = self.ratios()
        return all(b <= a + tolerance for a, b in zip(ratios, ratios[1:]))

    def to_json(self) -> dict:
        return {
            "parameter": self.parameter,
            "combo": self.combo_label,
            "points": [list(p) for p in self.points],
        }


def _source(seed: int, params: Optional[RandomWorkloadParams]) -> WorkloadSource:
    # The historical sweeps drew their workload from the "wl" stream.
    return WorkloadSource.random(seed=seed, params=params, stream="wl")


def build_load_suite(
    factors: Sequence[float] = (4.0, 2.0, 1.0, 0.5),
    combo: Optional[StrategyCombo] = None,
    duration: float = 60.0,
    seed: int = 2008,
    params: Optional[RandomWorkloadParams] = None,
) -> ExperimentSuite:
    combo = combo or StrategyCombo.from_label("J_J_J")
    source = _source(seed, params)
    cells = tuple(
        Scenario(
            workload=source,
            combo=combo.label,
            duration=duration,
            seed=seed,
            aperiodic_interarrival_factor=factor,
            label=f"load/{factor}",
        )
        for factor in factors
    )
    return ExperimentSuite(name="sensitivity-load", cells=cells)


def sweep_load(
    factors: Sequence[float] = (4.0, 2.0, 1.0, 0.5),
    combo: StrategyCombo = None,
    duration: float = 60.0,
    seed: int = 2008,
    params: Optional[RandomWorkloadParams] = None,
    n_workers: Optional[int] = None,
) -> SweepResult:
    """Ratio vs aperiodic load (smaller interarrival factor = heavier)."""
    combo = combo or StrategyCombo.from_label("J_J_J")
    suite = build_load_suite(factors, combo, duration, seed, params)
    result = SweepResult("aperiodic_interarrival_factor", combo.label)
    for factor, run in zip(factors, suite.run_results(n_workers)):
        result.points.append((factor, run.accepted_utilization_ratio))
    return result


def build_overhead_suite(
    scales: Sequence[float] = (0.0, 1.0, 10.0, 100.0),
    combo: Optional[StrategyCombo] = None,
    duration: float = 60.0,
    seed: int = 2008,
    params: Optional[RandomWorkloadParams] = None,
) -> ExperimentSuite:
    combo = combo or StrategyCombo.from_label("J_J_J")
    source = _source(seed, params)
    cells = tuple(
        Scenario(
            workload=source,
            combo=combo.label,
            duration=duration,
            seed=seed,
            cost_model=(
                CostModel.zero() if scale == 0 else CostModel().scaled(scale)
            ),
            label=f"overhead/{scale}",
        )
        for scale in scales
    )
    return ExperimentSuite(name="sensitivity-overhead", cells=cells)


def sweep_overhead(
    scales: Sequence[float] = (0.0, 1.0, 10.0, 100.0),
    combo: StrategyCombo = None,
    duration: float = 60.0,
    seed: int = 2008,
    params: Optional[RandomWorkloadParams] = None,
    n_workers: Optional[int] = None,
) -> SweepResult:
    """Ratio vs middleware operation-cost scaling."""
    combo = combo or StrategyCombo.from_label("J_J_J")
    suite = build_overhead_suite(scales, combo, duration, seed, params)
    result = SweepResult("cost_scale", combo.label)
    for scale, run in zip(scales, suite.run_results(n_workers)):
        result.points.append((scale, run.accepted_utilization_ratio))
    return result


@dataclass
class DelaySweepPoint:
    delay: float
    accepted_utilization_ratio: float
    mean_response: float
    deadline_misses: int

    def to_json(self) -> dict:
        return {
            "delay": self.delay,
            "accepted_utilization_ratio": self.accepted_utilization_ratio,
            "mean_response": self.mean_response,
            "deadline_misses": self.deadline_misses,
        }


def build_delay_suite(
    delays: Sequence[float] = (0.0003, 0.001, 0.01, 0.05),
    combo: Optional[StrategyCombo] = None,
    duration: float = 60.0,
    seed: int = 2008,
    params: Optional[RandomWorkloadParams] = None,
) -> ExperimentSuite:
    combo = combo or StrategyCombo.from_label("J_J_J")
    source = _source(seed, params)
    cells = tuple(
        Scenario(
            workload=source,
            combo=combo.label,
            duration=duration,
            seed=seed,
            delay_model=ConstantDelay(delay),
            label=f"delay/{delay}",
        )
        for delay in delays
    )
    return ExperimentSuite(name="sensitivity-delay", cells=cells)


def sweep_network_delay(
    delays: Sequence[float] = (0.0003, 0.001, 0.01, 0.05),
    combo: StrategyCombo = None,
    duration: float = 60.0,
    seed: int = 2008,
    params: Optional[RandomWorkloadParams] = None,
    n_workers: Optional[int] = None,
) -> List[DelaySweepPoint]:
    """Ratio/latency vs one-way network delay (centralized-AC stress)."""
    combo = combo or StrategyCombo.from_label("J_J_J")
    suite = build_delay_suite(delays, combo, duration, seed, params)
    points: List[DelaySweepPoint] = []
    for delay, run in zip(delays, suite.run_results(n_workers)):
        points.append(
            DelaySweepPoint(
                delay=delay,
                accepted_utilization_ratio=run.accepted_utilization_ratio,
                mean_response=run.mean_response_time,
                deadline_misses=run.deadline_misses,
            )
        )
    return points

"""Availability under failure: the chaos-engineering experiment grid.

The fault-tolerant distributed admission protocol trades availability
for safety: under crashes, partitions, and message loss it may reject
(or abort) more work, but it never strands a job mid-coordination and
never leaks a reservation (see ``tests/chaos`` and ``docs/CHAOS.md``).
This grid quantifies the availability side of that trade — the fraction
of arrived jobs the system still releases under each fault class,
against a fault-free baseline on the identical workload and seed.

Cells are ordinary :class:`~repro.api.scenario.Scenario` values, so the
grid fans out through the shared multiprocessing runner and is
bit-identical for any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.api.scenario import (
    DelaySpike,
    Disturbance,
    MessageLoss,
    NodeCrash,
    Partition,
    Scenario,
    WorkloadSource,
)
from repro.api.session import RunResult
from repro.api.suite import ExperimentSuite


@dataclass
class ChaosResult:
    """Availability outcome of one fault scenario."""

    scenario: str
    availability: float  #: released / arrived (1.0 when nothing arrived)
    arrived_jobs: int
    released_jobs: int
    rejected_jobs: int
    deadline_misses: int
    messages_dropped: int
    vote_timeouts: int
    retries_sent: int
    transactions_aborted: int

    def to_json(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "availability": self.availability,
            "arrived_jobs": self.arrived_jobs,
            "released_jobs": self.released_jobs,
            "rejected_jobs": self.rejected_jobs,
            "deadline_misses": self.deadline_misses,
            "messages_dropped": self.messages_dropped,
            "vote_timeouts": self.vote_timeouts,
            "retries_sent": self.retries_sent,
            "transactions_aborted": self.transactions_aborted,
        }


def _cell(
    label: str,
    disturbances: Tuple[Disturbance, ...],
    duration: float,
    seed: int,
    workload_seed: int,
) -> Scenario:
    return Scenario(
        workload=WorkloadSource.random(seed=workload_seed),
        engine="distributed",
        combo="J_N_N",
        duration=duration,
        seed=seed,
        disturbances=disturbances,
        label=label,
    )


def build_chaos_suite(
    duration: float = 30.0,
    seed: int = 2008,
    workload_seed: int = 3,
    crash_node: str = "app1",
    partition_peer: str = "app2",
    loss_probability: float = 0.2,
) -> ExperimentSuite:
    """The availability-under-failure grid as a declarative suite.

    One fault-free baseline plus one cell per fault class, all on the
    same workload and arrival seed so the availability deltas isolate
    the injected fault.  The default ``crash_node`` matches the node
    names ``WorkloadSource.random`` materializes (``app1`` ... ``appN``).
    """
    third = duration / 3.0
    cells = (
        _cell("baseline", (), duration, seed, workload_seed),
        _cell(
            "crash_recover",
            (NodeCrash(node=crash_node, time=third, recovery=2.0 * third),),
            duration,
            seed,
            workload_seed,
        ),
        _cell(
            "crash_forever",
            (NodeCrash(node=crash_node, time=third, recovery=None),),
            duration,
            seed,
            workload_seed,
        ),
        _cell(
            "partition",
            (
                Partition(
                    time=third,
                    heal=2.0 * third,
                    group_a=(crash_node,),
                    group_b=(partition_peer,),
                ),
            ),
            duration,
            seed,
            workload_seed,
        ),
        _cell(
            "message_loss",
            (MessageLoss(probability=loss_probability, until=duration),),
            duration,
            seed,
            workload_seed,
        ),
        _cell(
            "delay_spike",
            (DelaySpike(time=third, until=2.0 * third, factor=10.0),),
            duration,
            seed,
            workload_seed,
        ),
    )
    return ExperimentSuite(name="chaos", cells=cells)


def _to_chaos_result(run: RunResult) -> ChaosResult:
    availability = (
        run.released_jobs / run.arrived_jobs if run.arrived_jobs else 1.0
    )
    return ChaosResult(
        scenario=run.scenario_label,
        availability=availability,
        arrived_jobs=run.arrived_jobs,
        released_jobs=run.released_jobs,
        rejected_jobs=run.rejected_jobs,
        deadline_misses=run.deadline_misses,
        messages_dropped=run.messages_dropped,
        vote_timeouts=run.vote_timeouts,
        retries_sent=run.retries_sent,
        transactions_aborted=run.transactions_aborted,
    )


def run_chaos_suite(
    duration: float = 30.0,
    seed: int = 2008,
    workload_seed: int = 3,
    crash_node: str = "app1",
    partition_peer: str = "app2",
    loss_probability: float = 0.2,
    n_workers: Optional[int] = None,
) -> List[ChaosResult]:
    """Run the availability-under-failure grid through the runner."""
    suite = build_chaos_suite(
        duration=duration,
        seed=seed,
        workload_seed=workload_seed,
        crash_node=crash_node,
        partition_peer=partition_peer,
        loss_probability=loss_probability,
    )
    return [_to_chaos_result(run) for run in suite.run_results(n_workers)]

"""Parallel experiment runner: multiprocessing fan-out over run cells.

Paper-scale experiments are embarrassingly parallel — Figure 5 alone is
15 strategy combinations x 10 task sets of fully independent simulations.
This module fans those (combo, task-set) cells out over a process pool
while keeping results **bit-identical** to a serial run:

* each cell is seeded deterministically from its own coordinates (the
  experiment modules pass the exact per-cell seed the serial loop used),
  so a cell computes the same floats no matter which worker runs it;
* :func:`run_cells` returns results in submission order (``chunksize=1``
  starmap), and the experiment modules fold them in the same order as
  their serial loops, so float accumulation order is unchanged;
* shared RNG streams (workload generation) are drawn in the parent before
  the fan-out, never inside workers.

Worker count resolution: an explicit ``n_workers`` argument wins,
otherwise the ``REPRO_WORKERS`` environment variable, otherwise
``os.cpu_count()``.  ``n_workers=1`` (or a single cell) bypasses the pool
entirely; pool start-up failures (sandboxes without semaphore support)
fall back to the serial path, so the runner degrades instead of crashing.

Heterogeneous grids (sensitivity sweeps over task-set size, disturbance
grids mixing long and short runs) are dispatched **cost-ordered**: cells
are submitted longest-first through ``imap_unordered`` — a work-stealing
feed where each worker pulls the next pending cell the moment it goes
idle — and results are restored to submission order before returning.
The expensive cells start first instead of last, so the grid stops
tail-waiting on one slow straggler, while the returned list (and hence
every fold) stays bit-identical to the serial loop.

Since the ``repro.api`` redesign, experiments submit declarative
:class:`~repro.api.scenario.Scenario` cells through
:meth:`repro.api.suite.ExperimentSuite.run`, which dispatches to
:func:`run_cells` here.  The legacy cell functions below
(``middleware_cell``, ``overhead_cell``, ``replay_cell``,
``table1_cell``) and :func:`run_combo_grid` are retained as the
**pre-refactor reference path**: they construct systems directly, which
is what the API parity tests compare scenario execution against.  New
code should build scenarios instead.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.env import WORKERS_VAR, sanitize_enabled, workers_override
from repro.sanitize import pickle_canary

#: Environment variable overriding the default worker count (re-exported
#: from :mod:`repro.env`, the designated config entry point).
WORKERS_ENV = WORKERS_VAR


def resolve_workers(n_workers: Optional[int] = None) -> int:
    """The worker count to use: argument > $REPRO_WORKERS > cpu_count."""
    if n_workers is None:
        n_workers = workers_override()
        if n_workers is None:
            n_workers = os.cpu_count() or 1
    return max(1, int(n_workers))


def _pool_context():
    """Prefer fork on Linux (cheap, inherits the loaded package); use the
    platform default elsewhere — macOS exposes fork but forked children
    can crash inside system frameworks, which is why spawn is its
    default."""
    if sys.platform == "linux":
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def estimate_cell_cost(cell: Tuple) -> float:
    """Relative wall-clock estimate for one run cell.

    Recognizes the two argument shapes that dominate grid runtime —
    declarative :class:`~repro.api.scenario.Scenario` cells (simulated
    duration x workload size) and legacy direct-construction cells
    carrying a :class:`~repro.workloads.model.Workload` — and returns a
    neutral constant otherwise, which keeps submission order for
    homogeneous grids (descending sort is stable).
    """
    cost = 1.0
    recognized = False
    for arg in cell:
        # Duck-typed to avoid importing the API layer for plain cells.
        workload_source = getattr(arg, "workload", None)
        if workload_source is not None and hasattr(arg, "duration"):
            # A Scenario: duration x task count (explicit workloads embed
            # the task list; generator recipes carry their task counts).
            size = 1
            embedded = getattr(workload_source, "workload", None)
            if embedded is not None:
                size = max(1, len(embedded.tasks))
            else:
                params = getattr(workload_source, "params", None)
                if params is not None:
                    size = max(
                        1,
                        getattr(params, "n_periodic", 0)
                        + getattr(params, "n_aperiodic", 0),
                    )
            cost *= max(arg.duration, 1e-9) * size
            recognized = True
        elif hasattr(arg, "tasks") and hasattr(arg, "app_nodes"):
            # A bare Workload in a legacy cell.
            cost *= max(1, len(arg.tasks))
            recognized = True
    return cost if recognized else 1.0


def _indexed_cell(job: Tuple) -> Tuple[int, object]:
    """Pool wrapper: evaluate one cell, tagged with its submission index
    so unordered completion can be restored to submission order."""
    fn, index, cell = job
    return index, fn(*cell)


def run_cells(
    fn: Callable,
    cells: Iterable[Tuple],
    n_workers: Optional[int] = None,
    cost_key: Optional[Callable[[Tuple], float]] = None,
) -> List:
    """Evaluate ``fn(*cell)`` for every cell, in order, possibly in parallel.

    ``fn`` must be a module-level (picklable) function and every cell a
    tuple of picklable arguments.  The result list is ordered like
    ``cells`` regardless of worker scheduling, which is what lets callers
    fold results exactly as their serial loops would.

    Cells are *submitted* longest-estimated-first (``cost_key``, default
    :func:`estimate_cell_cost`) and pulled by idle workers through
    ``imap_unordered`` — results are re-ordered before returning, so the
    scheduling policy is invisible to callers.
    """
    cell_list = [tuple(cell) for cell in cells]
    if sanitize_enabled():
        # REPRO_SANITIZE=1: canary every payload *before* choosing a
        # dispatch path, so a cell that could not cross (or could not
        # deterministically cross) a process boundary fails identically
        # whether this run happens to go serial or parallel.
        pickle_canary(fn, f"run_cells function {getattr(fn, '__name__', fn)!r}")
        for index, cell in enumerate(cell_list):
            pickle_canary(cell, f"run_cells cell #{index}")
    workers = min(resolve_workers(n_workers), len(cell_list))
    if workers <= 1 or len(cell_list) <= 1:
        return [fn(*cell) for cell in cell_list]
    estimate = cost_key or estimate_cell_cost
    order = sorted(
        range(len(cell_list)),
        key=lambda i: estimate(cell_list[i]),
        reverse=True,
    )
    try:
        pool = _pool_context().Pool(workers)
    except (OSError, PermissionError, RuntimeError):
        # No process support in this environment (restricted sandbox);
        # cells are pure functions, so serial evaluation is equivalent.
        return [fn(*cell) for cell in cell_list]
    try:
        results: List = [None] * len(cell_list)
        jobs = [(fn, i, cell_list[i]) for i in order]
        for index, result in pool.imap_unordered(_indexed_cell, jobs, chunksize=1):
            results[index] = result
        return results
    finally:
        pool.close()
        pool.join()


def run_combo_grid(
    workloads: Sequence,
    combos: Sequence,
    seed: int,
    duration: float,
    cost_model,
    aperiodic_interarrival_factor: float,
    n_workers: Optional[int] = None,
):
    """Fan a (combo x task-set) grid out and fold it like the serial loops.

    Deprecated: Figures 5 and 6 now build this grid declaratively via
    :func:`repro.api.suite.combo_grid`; this function remains as the
    direct-construction reference (bit-identical by the parity tests).
    Every combo runs every workload with the serial per-cell seed
    ``seed + 1000 * set_index``, and results fold in combo-major order.
    Returns ``(per_combo_sets, total_deadline_misses)`` where
    ``per_combo_sets`` maps each combo label to its per-set ratio list.
    """
    cells = [
        (
            workload,
            combo.label,
            seed + 1000 * set_index,
            duration,
            cost_model,
            aperiodic_interarrival_factor,
        )
        for combo in combos
        for set_index, workload in enumerate(workloads)
    ]
    outcomes = iter(run_cells(middleware_cell, cells, n_workers))
    per_combo_sets = {}
    deadline_misses = 0
    for combo in combos:
        ratios = []
        for _workload in workloads:
            ratio, misses = next(outcomes)
            ratios.append(ratio)
            deadline_misses += misses
        per_combo_sets[combo.label] = ratios
    return per_combo_sets, deadline_misses


# ----------------------------------------------------------------------
# Cell functions (module-level so they pickle under any start method)
# ----------------------------------------------------------------------
def middleware_cell(
    workload,
    combo_label: str,
    seed: int,
    duration: float,
    cost_model,
    aperiodic_interarrival_factor: float,
) -> Tuple[float, int]:
    """One (combo, task set) simulation; returns (ratio, deadline misses)."""
    from repro.core.middleware import MiddlewareSystem
    from repro.core.strategies import StrategyCombo

    system = MiddlewareSystem(
        workload,
        StrategyCombo.from_label(combo_label),
        cost_model=cost_model,
        seed=seed,
        aperiodic_interarrival_factor=aperiodic_interarrival_factor,
    )
    run = system.run(duration)
    return run.accepted_utilization_ratio, run.deadline_misses


def overhead_cell(
    workload,
    combo_label: str,
    seed: int,
    duration: float,
    cost_model,
    aperiodic_interarrival_factor: float,
):
    """One overhead-measurement run; returns (accounting, comm-delay stats)."""
    from repro.core.middleware import MiddlewareSystem
    from repro.core.strategies import StrategyCombo

    system = MiddlewareSystem(
        workload,
        StrategyCombo.from_label(combo_label),
        cost_model=cost_model,
        seed=seed,
        aperiodic_interarrival_factor=aperiodic_interarrival_factor,
    )
    result = system.run(duration)
    return result.overhead, system.network.delay_stats


def replay_cell(
    workload,
    set_index: int,
    seed: int,
    duration: float,
    aperiodic_interarrival_factor: float,
    server_utilization: float,
    server_period: float,
) -> Tuple[float, float]:
    """One ablation task set replayed through AUB and Deferrable Server."""
    from repro.sched.deferrable import DeferrableServerPolicy
    from repro.sched.replay import AubReplayPolicy, replay
    from repro.sim.rng import RngRegistry
    from repro.workloads.arrivals import build_arrival_plan

    # Streams are keyed by name, so a fresh registry reproduces exactly
    # the per-set stream the serial loop drew from its shared registry.
    rngs = RngRegistry(seed)
    plan = build_arrival_plan(
        workload,
        duration,
        rngs.stream(f"arrivals:{set_index}"),
        aperiodic_interarrival_factor,
    )
    from repro.experiments.ablation import _jobs_from_plan

    nodes = list(workload.app_nodes)
    aub = replay(_jobs_from_plan(workload, plan), AubReplayPolicy(nodes))
    ds = replay(
        _jobs_from_plan(workload, plan),
        DeferrableServerPolicy(
            nodes,
            server_utilization=server_utilization,
            server_period=server_period,
        ),
    )
    return aub.accepted_utilization_ratio, ds.accepted_utilization_ratio


def table1_cell(
    category: str,
    job_skipping: bool,
    replicated: bool,
    stateful: bool,
    tolerance_value: str,
):
    """Map one application category through the configuration engine."""
    from repro.config.characteristics import (
        ApplicationCharacteristics,
        OverheadTolerance,
    )
    from repro.config.mapping import map_characteristics
    from repro.experiments.table1 import Table1Row

    chars = ApplicationCharacteristics(
        job_skipping=job_skipping,
        replicated_components=replicated,
        state_persistence=stateful,
        overhead_tolerance=OverheadTolerance(tolerance_value),
    )
    combo, notes = map_characteristics(chars)
    return Table1Row(
        category=category,
        characteristics=chars,
        combo_label=combo.label,
        notes=tuple(notes),
    )

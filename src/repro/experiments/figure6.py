"""Figure 6: load-balancing strategy comparison on imbalanced workloads.

Section 7.2 recipe: three loaded processors at synthetic utilization 0.7
hosting all subtasks (1-3 per task), two replica-only processors.  The 15
combinations divide into 5 groups of three adjacent bars; within each
group AC and IR are fixed while LB goes none -> per task -> per job.  The
paper's finding: LB per task is a large improvement over no LB, while per
job adds little on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.api.suite import ExperimentSuite, combo_grid, fold_combo_grid
from repro.core.cost_model import CostModel
from repro.core.strategies import StrategyCombo, valid_combinations
from repro.experiments.report import bar_chart
from repro.sim.rng import RngRegistry
from repro.workloads.imbalanced import (
    ImbalancedWorkloadParams,
    generate_imbalanced_workload,
)
from repro.workloads.model import Workload


@dataclass
class Figure6Result:
    """Per-combination ratios plus the LB-group view of the figure."""

    duration: float
    n_sets: int
    per_combo: Dict[str, float] = field(default_factory=dict)
    per_combo_sets: Dict[str, List[float]] = field(default_factory=dict)
    deadline_misses: int = 0

    def lb_groups(self) -> Dict[str, Tuple[float, float, float]]:
        """For each fixed (AC, IR) pair: ratios for LB = N, T, J."""
        groups: Dict[str, Tuple[float, float, float]] = {}
        pairs = sorted(
            {tuple(label.split("_")[:2]) for label in self.per_combo}
        )
        for ac, ir in pairs:
            key = f"{ac}_{ir}"
            groups[key] = tuple(
                self.per_combo[f"{ac}_{ir}_{lb}"] for lb in ("N", "T", "J")
            )
        return groups

    def lb_means(self) -> Dict[str, float]:
        """Mean ratio by LB strategy letter across all (AC, IR) groups."""
        sums = {"N": 0.0, "T": 0.0, "J": 0.0}
        count = 0
        for _key, (n, t, j) in self.lb_groups().items():
            sums["N"] += n
            sums["T"] += t
            sums["J"] += j
            count += 1
        return {k: v / count for k, v in sums.items()} if count else {}

    def format(self) -> str:
        return bar_chart(
            self.per_combo,
            title=(
                "Figure 6 — LB strategy comparison, imbalanced workload "
                f"({self.n_sets} task sets, {self.duration:.0f}s each)"
            ),
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "experiment": "figure6",
            "duration": self.duration,
            "n_sets": self.n_sets,
            "per_combo": dict(self.per_combo),
            "per_combo_sets": {k: list(v) for k, v in self.per_combo_sets.items()},
            "deadline_misses": self.deadline_misses,
            "lb_means": self.lb_means(),
        }


def build_figure6_suite(
    n_sets: int = 10,
    duration: float = 60.0,
    seed: int = 2008,
    cost_model: Optional[CostModel] = None,
    params: Optional[ImbalancedWorkloadParams] = None,
    combos: Optional[Sequence[StrategyCombo]] = None,
    aperiodic_interarrival_factor: float = 2.0,
    workloads: Optional[Sequence[Workload]] = None,
) -> ExperimentSuite:
    """The Figure 6 grid as a declarative :class:`ExperimentSuite`."""
    combos = list(combos) if combos is not None else valid_combinations()
    if workloads is None:
        gen_rng = RngRegistry(seed).stream("task_sets")
        workloads = [
            generate_imbalanced_workload(gen_rng, params) for _ in range(n_sets)
        ]
    return combo_grid(
        "figure6",
        list(workloads),
        combos,
        seed,
        duration,
        cost_model,
        aperiodic_interarrival_factor,
    )


def run_figure6(
    n_sets: int = 10,
    duration: float = 60.0,
    seed: int = 2008,
    cost_model: Optional[CostModel] = None,
    params: Optional[ImbalancedWorkloadParams] = None,
    combos: Optional[Sequence[StrategyCombo]] = None,
    aperiodic_interarrival_factor: float = 2.0,
    workloads: Optional[Sequence[Workload]] = None,
    n_workers: Optional[int] = None,
) -> Figure6Result:
    """Run the Figure 6 experiment (imbalanced workloads).

    Cells fan out over ``n_workers`` processes with bit-identical results
    to a serial run (see :mod:`repro.experiments.runner`).
    """
    combos = list(combos) if combos is not None else valid_combinations()
    if workloads is not None:
        workloads = list(workloads)
        n_sets = len(workloads)
    suite = build_figure6_suite(
        n_sets=n_sets,
        duration=duration,
        seed=seed,
        cost_model=cost_model,
        params=params,
        combos=combos,
        aperiodic_interarrival_factor=aperiodic_interarrival_factor,
        workloads=workloads,
    )
    result = Figure6Result(duration=duration, n_sets=n_sets)
    result.per_combo_sets, result.deadline_misses = fold_combo_grid(
        suite.run_results(n_workers), combos, n_sets
    )
    for label, ratios in result.per_combo_sets.items():
        result.per_combo[label] = sum(ratios) / len(ratios)
    return result

"""Session: deploy a :class:`Scenario`, run it, return a :class:`RunResult`.

The session is the one audited execution path behind every experiment,
example, and CLI command.  It dispatches on the scenario's engine:

* ``middleware`` — the paper's Figure 1 deployment via
  :class:`~repro.core.middleware.MiddlewareSystem` (optionally through the
  DAnCE-lite XML plan pipeline with ``via_dance=True``);
* ``distributed`` — the per-processor two-phase admission prototype;
* ``replay`` — analytic trace replay through a registry admission policy.

:class:`RunResult` replaces the loosely-shaped ``SystemResults`` at the
public surface: a frozen, typed, JSON-serializable record of metrics,
overhead accounting (as mergeable :class:`StatSnapshot` series) and
acceptance ratios, identical in content no matter which worker process
produced it.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional, Tuple

from repro.api.registry import default_registry
from repro.api.scenario import (
    ENGINE_DISTRIBUTED,
    ENGINE_MIDDLEWARE,
    ENGINE_REPLAY,
    Burst,
    NodeCrash,
    Partition,
    Scenario,
    Slowdown,
)
from repro.errors import ConfigurationError
from repro.metrics.overhead import ALL_ROWS, OverheadRow
from repro.metrics.registry import MetricsRegistry, MetricsSnapshot
from repro.sim.kernel import USEC
from repro.sim.monitor import StatSeries


# ----------------------------------------------------------------------
# Serializable statistics
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StatSnapshot:
    """Frozen, mergeable snapshot of a :class:`StatSeries`.

    Carries the exact accumulators (count/total/total_sq/min/max), so
    merging snapshots from parallel workers reproduces bit-identically the
    statistics a serial run would have accumulated.
    """

    count: int = 0
    total: float = 0.0
    total_sq: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    @classmethod
    def from_series(cls, series: StatSeries) -> "StatSnapshot":
        return cls(
            count=series.count,
            total=series.total,
            total_sq=series.total_sq,
            minimum=series.minimum,
            maximum=series.maximum,
        )

    def to_series(self) -> StatSeries:
        return StatSeries(
            count=self.count,
            total=self.total,
            total_sq=self.total_sq,
            minimum=self.minimum,
            maximum=self.maximum,
        )

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_json(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "count": self.count,
            "total": self.total,
            "total_sq": self.total_sq,
        }
        if self.count:  # +-inf sentinels are not strict JSON
            data["minimum"] = self.minimum
            data["maximum"] = self.maximum
        return data

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "StatSnapshot":
        count = data.get("count", 0)
        return cls(
            count=count,
            total=data.get("total", 0.0),
            total_sq=data.get("total_sq", 0.0),
            minimum=data.get("minimum", math.inf),
            maximum=data.get("maximum", -math.inf),
        )


# ----------------------------------------------------------------------
# RunResult
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunResult:
    """Typed, serializable outcome of one scenario run."""

    scenario_label: str
    combo_label: str
    engine: str
    seed: int
    duration: float  # simulated end time, including the drain window
    arrived_jobs: int
    released_jobs: int
    rejected_jobs: int
    completed_jobs: int
    deadline_misses: int
    accepted_utilization_ratio: float
    mean_response_time: float = 0.0
    events_executed: int = 0
    messages_sent: int = 0
    reserve_messages: int = 0
    cpu_utilization: Dict[str, float] = field(default_factory=dict)
    final_synthetic_utilization: Dict[str, float] = field(default_factory=dict)
    overhead: Dict[str, StatSnapshot] = field(default_factory=dict)
    comm_delay: StatSnapshot = StatSnapshot()
    # Chaos layer (all zero on fault-free runs; serialized only when
    # nonzero so fault-free JSON stays byte-identical to the seed).
    messages_dropped: int = 0
    messages_delay_spiked: int = 0
    vote_timeouts: int = 0
    retries_sent: int = 0
    transactions_aborted: int = 0
    # Observability layer (None unless the session was armed with a
    # MetricsRegistry; serialized only then, so legacy JSON stays
    # byte-identical — see docs/OBSERVABILITY.md).
    metrics_snapshot: Optional[MetricsSnapshot] = None

    # -- derived views ----------------------------------------------------
    def overhead_rows(self) -> List[OverheadRow]:
        """Figure-8-style rows (microseconds) for paths that saw samples."""
        rows: List[OverheadRow] = []
        for name in ALL_ROWS:
            snap = self.overhead.get(name)
            if snap is None or snap.count == 0:
                continue
            rows.append(
                OverheadRow(
                    name=name,
                    mean_usec=snap.mean / USEC,
                    max_usec=snap.maximum / USEC,
                    samples=snap.count,
                )
            )
        return rows

    def summary(self) -> Dict[str, float]:
        """Flat summary mirroring ``MetricsCollector.summary``."""
        return {
            "arrived_jobs": self.arrived_jobs,
            "released_jobs": self.released_jobs,
            "rejected_jobs": self.rejected_jobs,
            "accepted_utilization_ratio": self.accepted_utilization_ratio,
            "completed_jobs": self.completed_jobs,
            "deadline_misses": self.deadline_misses,
            "mean_response_time": self.mean_response_time,
        }

    # -- JSON -------------------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "scenario_label": self.scenario_label,
            "combo_label": self.combo_label,
            "engine": self.engine,
            "seed": self.seed,
            "duration": self.duration,
            "arrived_jobs": self.arrived_jobs,
            "released_jobs": self.released_jobs,
            "rejected_jobs": self.rejected_jobs,
            "completed_jobs": self.completed_jobs,
            "deadline_misses": self.deadline_misses,
            "accepted_utilization_ratio": self.accepted_utilization_ratio,
            "mean_response_time": self.mean_response_time,
            "events_executed": self.events_executed,
            "messages_sent": self.messages_sent,
            "reserve_messages": self.reserve_messages,
            "cpu_utilization": dict(self.cpu_utilization),
            "final_synthetic_utilization": dict(self.final_synthetic_utilization),
            "overhead": {k: v.to_json() for k, v in self.overhead.items()},
            "comm_delay": self.comm_delay.to_json(),
        }
        for name in (
            "messages_dropped",
            "messages_delay_spiked",
            "vote_timeouts",
            "retries_sent",
            "transactions_aborted",
        ):
            value = getattr(self, name)
            if value:
                data[name] = value
        if self.metrics_snapshot is not None:
            data["metrics_snapshot"] = self.metrics_snapshot.to_json()
        return data

    def to_json_str(self, indent: int = 2) -> str:
        return json.dumps(self.to_json(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "RunResult":
        allowed = {f.name for f in fields(cls)}
        unknown = set(data) - allowed
        if unknown:
            raise ConfigurationError(
                f"unknown run-result field(s): {', '.join(sorted(unknown))}"
            )
        kwargs = dict(data)
        kwargs["overhead"] = {
            k: StatSnapshot.from_json(v)
            for k, v in data.get("overhead", {}).items()
        }
        kwargs["comm_delay"] = StatSnapshot.from_json(data.get("comm_delay", {}))
        if data.get("metrics_snapshot") is not None:
            kwargs["metrics_snapshot"] = MetricsSnapshot.from_json(
                data["metrics_snapshot"]
            )
        return cls(**kwargs)


# ----------------------------------------------------------------------
# Session
# ----------------------------------------------------------------------
class Session:
    """Deploys a scenario into a live system and runs it exactly once.

    ``via_dance=True`` routes a middleware-engine scenario through the
    DAnCE-lite pipeline (workload + combo -> XML deployment plan ->
    Execution Manager), proving the declarative and deployment-descriptor
    paths assemble identical systems.

    ``metrics`` arms the run with a :class:`MetricsRegistry`: the
    engines publish decision counters, latency histograms, and shard
    gauges into it, and the resulting :class:`RunResult` carries
    ``metrics_snapshot``.  Unarmed runs (the default) take no metrics
    branches and stay bit-identical to the seed.
    """

    def __init__(
        self,
        scenario: Scenario,
        via_dance: bool = False,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if not isinstance(scenario, Scenario):
            raise ConfigurationError(
                f"Session needs a Scenario, got {type(scenario).__name__}"
            )
        if via_dance and scenario.engine != ENGINE_MIDDLEWARE:
            raise ConfigurationError(
                "the DAnCE-lite pipeline deploys middleware scenarios only, "
                f"not {scenario.engine!r}"
            )
        self.scenario = scenario
        self.via_dance = via_dance
        self.metrics = metrics
        # The deployed system comes from intentionally-untyped engine
        # modules (middleware / distributed / DAnCE-lite), hence Any.
        self._system: Optional[Any] = None
        self._result: Optional[RunResult] = None
        self._validate_disturbance_nodes()

    def _validate_disturbance_nodes(self) -> None:
        """Reject disturbances that name nodes the scenario never deploys.

        Runs at construction so a typo'd node name fails fast instead of
        silently injecting faults nobody feels (a crash of a nonexistent
        node drops no message) or exploding mid-deploy.
        """
        referencing = [
            d
            for d in self.scenario.disturbances
            if isinstance(d, (NodeCrash, Partition))
            or (isinstance(d, Slowdown) and d.nodes)
        ]
        if not referencing:
            return
        workload = self.scenario.workload.materialize()
        deployed = set(workload.app_nodes)
        for disturbance in referencing:
            if isinstance(disturbance, NodeCrash):
                unknown = {disturbance.node} - deployed
            elif isinstance(disturbance, Partition):
                unknown = (
                    set(disturbance.group_a) | set(disturbance.group_b)
                ) - deployed
            else:
                unknown = set(disturbance.nodes) - deployed
            if unknown:
                kind = type(disturbance).__name__
                raise ConfigurationError(
                    f"{kind} disturbance references unknown node(s) "
                    f"{', '.join(repr(n) for n in sorted(unknown))}; "
                    f"deployed application nodes are "
                    f"{', '.join(repr(n) for n in sorted(deployed))}"
                )

    # -- deployment -------------------------------------------------------
    @property
    def system(self) -> Optional[Any]:
        """The deployed system (None until :meth:`deploy` or :meth:`run`)."""
        return self._system

    def deploy(self) -> Any:
        """Build (and keep) the live system for this scenario."""
        if self._system is not None:
            return self._system
        scenario = self.scenario
        if scenario.engine == ENGINE_REPLAY:
            raise ConfigurationError(
                "replay scenarios are analytic and have no deployment; "
                "call Session.run() directly"
            )
        workload = scenario.workload.materialize()
        if scenario.engine == ENGINE_DISTRIBUTED:
            from repro.core.distributed_ac import DistributedMiddlewareSystem

            self._system = DistributedMiddlewareSystem(
                workload,
                seed=scenario.seed,
                cost_model=scenario.cost_model,
                delay_model=scenario.delay_model,
                aperiodic_interarrival_factor=(
                    scenario.aperiodic_interarrival_factor
                ),
                arrival_batching=scenario.arrival_batching,
                metrics_registry=self.metrics,
            )
            self._install_faults(self._system)
            return self._system
        if self.via_dance:
            from repro.config.dance import DeploymentEngine

            self._system = DeploymentEngine().deploy_scenario(
                scenario, metrics_registry=self.metrics
            )
        else:
            from repro.core.middleware import MiddlewareSystem

            self._system = MiddlewareSystem(
                workload,
                scenario.strategy_combo,
                cost_model=scenario.cost_model,
                seed=scenario.seed,
                trace=scenario.trace,
                delay_model=scenario.delay_model,
                aperiodic_interarrival_factor=(
                    scenario.aperiodic_interarrival_factor
                ),
                arrival_batching=scenario.arrival_batching,
                metrics_registry=self.metrics,
            )
        self._apply_disturbances(self._system)
        self._install_faults(self._system)
        return self._system

    def _apply_disturbances(self, system: Any) -> None:
        self._check_resolved_burst_overlap(system)
        for disturbance in self.scenario.disturbances:
            if isinstance(disturbance, Burst):
                self._schedule_burst(system, disturbance)
            elif isinstance(disturbance, Slowdown):
                self._schedule_slowdown(system, disturbance)

    def _install_faults(self, system: Any) -> None:
        """Install the chaos layer: fault injector + crash/recovery events.

        No-op on fault-free scenarios (``injector_from_disturbances``
        returns ``None``), so ordinary runs never install an injector and
        stay bit-identical to pre-chaos behavior.
        """
        from repro.net.fault import injector_from_disturbances

        injector = injector_from_disturbances(
            self.scenario.disturbances, system.rngs
        )
        if injector is None:
            return
        system.network.install_fault_injector(injector)
        for disturbance in self.scenario.disturbances:
            if not isinstance(disturbance, NodeCrash):
                continue
            system.sim.schedule_at(
                disturbance.time, system.crash_node, disturbance.node
            )
            if disturbance.recovery is not None:
                system.sim.schedule_at(
                    disturbance.recovery, system.recover_node, disturbance.node
                )

    def _check_resolved_burst_overlap(self, system: Any) -> None:
        # Scenario validation catches overlaps keyed by literal task_id,
        # but a burst with task_id=None resolves to the first aperiodic
        # task only now that the workload is live — re-check with the
        # resolved targets so no duplicate job keys reach the admission
        # registry.
        spans: Dict[str, List[Tuple[int, int]]] = {}
        for disturbance in self.scenario.disturbances:
            if not isinstance(disturbance, Burst) or disturbance.jobs == 0:
                continue
            resolved = self._resolve_burst_task(system, disturbance).task_id
            span = (disturbance.base_index,
                    disturbance.base_index + disturbance.jobs)
            for other in spans.get(resolved, ()):
                if span[0] < other[1] and other[0] < span[1]:
                    raise ConfigurationError(
                        f"burst disturbances resolve to the same task "
                        f"{resolved!r} with overlapping job index ranges "
                        f"{other} and {span}; give each burst a distinct "
                        "base_index"
                    )
            spans.setdefault(resolved, []).append(span)

    @staticmethod
    def _resolve_burst_task(system: Any, burst: Burst) -> Any:
        workload = system.workload
        if burst.task_id is None:
            aperiodic = workload.aperiodic_tasks
            if not aperiodic:
                raise ConfigurationError(
                    "burst disturbance needs an aperiodic task in the workload"
                )
            return aperiodic[0]
        return workload.task(burst.task_id)

    @classmethod
    def _schedule_burst(cls, system: Any, burst: Burst) -> None:
        task = cls._resolve_burst_task(system, burst)
        batched = getattr(system, "arrival_batching", False)
        for i in range(burst.jobs):
            arrival = burst.time + i * burst.spacing
            if batched:
                # Burst jobs ride the batched delivery path, so arrivals
                # that land on the same timestamp (or pile up behind the
                # AC's dispatch thread) are admitted as one burst.
                system.sim.schedule_batch(
                    arrival,
                    system._arrive_batch,
                    (task, burst.base_index + i, arrival),
                )
            else:
                system.sim.schedule_at(
                    arrival, system._arrive, task, burst.base_index + i, arrival
                )

    @staticmethod
    def _schedule_slowdown(system: Any, slowdown: Slowdown) -> None:
        nodes = slowdown.nodes or tuple(system.workload.app_nodes)
        for node in nodes:
            if node not in system.processors:
                raise ConfigurationError(
                    f"slowdown disturbance references unknown processor {node!r}"
                )

        def throttle() -> None:
            for node in nodes:
                system.processors[node].set_speed(slowdown.factor)

        system.sim.schedule_at(slowdown.time, throttle)

    # -- execution --------------------------------------------------------
    def run(self) -> RunResult:
        """Deploy (if needed), run to completion, and summarize."""
        if self._result is not None:
            raise ConfigurationError("this session already ran")
        scenario = self.scenario
        if scenario.engine == ENGINE_REPLAY:
            self._result = self._run_replay()
        elif scenario.engine == ENGINE_DISTRIBUTED:
            self._result = self._run_distributed()
        else:
            self._result = self._run_middleware()
        return self._result

    @property
    def result(self) -> Optional[RunResult]:
        return self._result

    def _snapshot_metrics(self) -> Optional[MetricsSnapshot]:
        """Freeze the armed registry after a run; None when unarmed."""
        return self.metrics.snapshot() if self.metrics is not None else None

    def _run_middleware(self) -> RunResult:
        scenario = self.scenario
        system = self.deploy()
        results = system.run(scenario.duration, drain=scenario.drain)
        metrics = results.metrics
        injector = getattr(system.network, "fault_injector", None)
        fault_metrics = injector.metrics if injector is not None else None
        return RunResult(
            scenario_label=scenario.effective_label,
            combo_label=results.combo_label,
            engine=scenario.engine,
            seed=scenario.seed,
            duration=results.duration,
            arrived_jobs=metrics.arrived_jobs,
            released_jobs=metrics.released_jobs,
            rejected_jobs=metrics.rejected_jobs,
            completed_jobs=metrics.completed_jobs,
            deadline_misses=metrics.latency.deadline_misses,
            accepted_utilization_ratio=metrics.accepted_utilization_ratio,
            mean_response_time=metrics.latency.response_times.mean,
            events_executed=results.events_executed,
            messages_sent=results.messages_sent,
            cpu_utilization=dict(results.cpu_utilization),
            final_synthetic_utilization=dict(
                results.final_synthetic_utilization
            ),
            overhead={
                name: StatSnapshot.from_series(results.overhead.series(name))
                for name in ALL_ROWS
            },
            comm_delay=StatSnapshot.from_series(system.network.delay_stats),
            messages_dropped=(
                fault_metrics.messages_dropped if fault_metrics else 0
            ),
            messages_delay_spiked=(
                fault_metrics.messages_delay_spiked if fault_metrics else 0
            ),
            metrics_snapshot=self._snapshot_metrics(),
        )

    def _run_distributed(self) -> RunResult:
        scenario = self.scenario
        system = self.deploy()
        results = system.run(scenario.duration, drain=scenario.drain)
        metrics = results.metrics
        return RunResult(
            scenario_label=scenario.effective_label,
            combo_label=scenario.strategy_combo.label,
            engine=scenario.engine,
            seed=scenario.seed,
            duration=results.duration,
            arrived_jobs=metrics.arrived_jobs,
            released_jobs=metrics.released_jobs,
            rejected_jobs=metrics.rejected_jobs,
            completed_jobs=metrics.completed_jobs,
            deadline_misses=metrics.latency.deadline_misses,
            accepted_utilization_ratio=metrics.accepted_utilization_ratio,
            mean_response_time=metrics.latency.response_times.mean,
            events_executed=system.sim.events_executed,
            messages_sent=results.messages_sent,
            reserve_messages=results.reserve_messages,
            final_synthetic_utilization=dict(results.final_utilization),
            comm_delay=StatSnapshot.from_series(system.network.delay_stats),
            messages_dropped=results.messages_dropped,
            messages_delay_spiked=results.messages_delay_spiked,
            vote_timeouts=results.vote_timeouts,
            retries_sent=results.retries_sent,
            transactions_aborted=results.transactions_aborted,
            metrics_snapshot=self._snapshot_metrics(),
        )

    def _run_replay(self) -> RunResult:
        from repro.sched.replay import jobs_from_plan, replay
        from repro.sim.rng import RngRegistry
        from repro.workloads.arrivals import build_arrival_plan

        scenario = self.scenario
        workload = scenario.workload.materialize()
        rngs = RngRegistry(scenario.seed)
        plan = build_arrival_plan(
            workload,
            scenario.duration,
            rngs.stream(scenario.arrival_stream),
            scenario.aperiodic_interarrival_factor,
        )
        policy = default_registry().policy(
            scenario.policy,
            list(workload.app_nodes),
            **dict(scenario.policy_params),
        )
        outcome = replay(jobs_from_plan(workload, plan), policy)
        return RunResult(
            scenario_label=scenario.effective_label,
            combo_label=scenario.strategy_combo.label,
            engine=scenario.engine,
            seed=scenario.seed,
            duration=scenario.duration,
            arrived_jobs=outcome.arrived_jobs,
            released_jobs=outcome.admitted_jobs,
            rejected_jobs=outcome.arrived_jobs - outcome.admitted_jobs,
            completed_jobs=outcome.admitted_jobs,
            deadline_misses=0,
            accepted_utilization_ratio=outcome.accepted_utilization_ratio,
            metrics_snapshot=self._snapshot_metrics(),
        )


def run_scenario(
    scenario: Scenario, via_dance: bool = False, with_metrics: bool = False
) -> RunResult:
    """One-shot convenience: ``Session(scenario).run()``.

    ``with_metrics=True`` arms the run with a fresh
    :class:`MetricsRegistry` so the result carries ``metrics_snapshot``.
    A plain bool (rather than a registry argument) keeps this function
    picklable-friendly for ``run_cells`` fan-out.
    """
    registry = MetricsRegistry() if with_metrics else None
    return Session(scenario, via_dance=via_dance, metrics=registry).run()

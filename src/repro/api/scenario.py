"""The declarative :class:`Scenario`: one data object per deployment run.

A scenario captures *everything* that previously lived in divergent
``MiddlewareSystem(...)`` keyword arguments spread over examples and
experiment modules: the workload (explicit or generated-by-recipe), the
strategy combination (by registry name), duration, seed, cost model,
delay model, disturbance hooks, and the execution engine (centralized
middleware, distributed-AC prototype, or analytic trace replay).

Scenarios are frozen, validated on construction, picklable (so the
multiprocessing experiment runner can fan them out), and JSON-round-trip
serializable (so grids can be exported, diffed, and re-run exactly).
Unknown or conflicting fields raise
:class:`~repro.errors.ConfigurationError` — a scenario either fully
describes a runnable deployment or refuses to exist.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.api.registry import default_registry
from repro.core.cost_model import CostModel
from repro.core.strategies import StrategyCombo
from repro.errors import ConfigurationError
from repro.net.latency import (
    ConstantDelay,
    DelayModel,
    NormalDelay,
    TriangularDelay,
    UniformDelay,
)
from repro.sched.task import SubtaskSpec, TaskKind, TaskSpec
from repro.sim.rng import RngRegistry
from repro.workloads.generator import RandomWorkloadParams, generate_random_workload
from repro.workloads.imbalanced import (
    ImbalancedWorkloadParams,
    generate_imbalanced_workload,
)
from repro.workloads.model import Workload

#: Execution engines a scenario can target.
ENGINE_MIDDLEWARE = "middleware"
ENGINE_DISTRIBUTED = "distributed"
ENGINE_REPLAY = "replay"
ENGINES = (ENGINE_MIDDLEWARE, ENGINE_DISTRIBUTED, ENGINE_REPLAY)

#: Workload source kinds.
SOURCE_EXPLICIT = "explicit"
SOURCE_RANDOM = "random"
SOURCE_IMBALANCED = "imbalanced"
SOURCE_KINDS = (SOURCE_EXPLICIT, SOURCE_RANDOM, SOURCE_IMBALANCED)


# ----------------------------------------------------------------------
# JSON codecs for the embedded value objects
# ----------------------------------------------------------------------
def _reject_unknown(data: Dict[str, Any], allowed: Iterable[str], what: str) -> None:
    unknown = set(data) - set(allowed)
    if unknown:
        raise ConfigurationError(
            f"unknown {what} field(s): {', '.join(sorted(unknown))}"
        )


def workload_to_json(workload: Workload) -> Dict[str, Any]:
    """Serialize an explicit :class:`Workload` (tasks + topology)."""
    return {
        "manager_node": workload.manager_node,
        "app_nodes": list(workload.app_nodes),
        "tasks": [
            {
                "task_id": task.task_id,
                "kind": task.kind.value,
                "deadline": task.deadline,
                "period": task.period,
                "phase": task.phase,
                "subtasks": [
                    {
                        "index": s.index,
                        "execution_time": s.execution_time,
                        "home": s.home,
                        "replicas": list(s.replicas),
                    }
                    for s in task.subtasks
                ],
            }
            for task in workload.tasks
        ],
    }


def workload_from_json(data: Dict[str, Any]) -> Workload:
    """Rebuild a :class:`Workload` from :func:`workload_to_json` output."""
    _reject_unknown(data, ("manager_node", "app_nodes", "tasks"), "workload")
    tasks: List[TaskSpec] = []
    for t in data.get("tasks", ()):
        _reject_unknown(
            t,
            ("task_id", "kind", "deadline", "period", "phase", "subtasks"),
            "task",
        )
        subtasks: List[SubtaskSpec] = []
        for s in t.get("subtasks", ()):
            _reject_unknown(
                s, ("index", "execution_time", "home", "replicas"), "subtask"
            )
            subtasks.append(
                SubtaskSpec(
                    index=s["index"],
                    execution_time=s["execution_time"],
                    home=s["home"],
                    replicas=tuple(s.get("replicas", ())),
                )
            )
        tasks.append(
            TaskSpec(
                task_id=t["task_id"],
                kind=TaskKind(t["kind"]),
                deadline=t["deadline"],
                subtasks=tuple(subtasks),
                period=t.get("period"),
                phase=t.get("phase", 0.0),
            )
        )
    return Workload(
        tasks=tuple(tasks),
        app_nodes=tuple(data["app_nodes"]),
        manager_node=data.get("manager_node", "task_manager"),
    )


def cost_model_to_json(model: Optional[CostModel]) -> Optional[Dict[str, Any]]:
    if model is None:
        return None
    return dataclasses.asdict(model)


def cost_model_from_json(data: Optional[Dict[str, Any]]) -> Optional[CostModel]:
    if data is None:
        return None
    allowed = {f.name for f in fields(CostModel)}
    _reject_unknown(data, allowed, "cost model")
    return CostModel(**data)


#: Delay-model type tag -> (class, constructor-argument attribute names).
_DELAY_TYPES: Dict[str, Tuple[Any, Tuple[str, ...]]] = {
    "constant": (ConstantDelay, ("delay",)),
    "uniform": (UniformDelay, ("low", "high")),
    "triangular": (TriangularDelay, ("low", "mode", "high")),
    "normal": (NormalDelay, ("mu", "sigma", "floor")),
}


def delay_model_to_json(model: Optional[DelayModel]) -> Optional[Dict[str, Any]]:
    if model is None:
        return None
    for tag, (cls, attrs) in _DELAY_TYPES.items():
        if type(model) is cls:
            spec: Dict[str, Any] = {"type": tag}
            spec.update({a: getattr(model, a) for a in attrs})
            return spec
    raise ConfigurationError(
        f"delay model {model!r} has no JSON representation; use one of "
        f"{', '.join(sorted(_DELAY_TYPES))}"
    )


def delay_model_from_json(data: Optional[Dict[str, Any]]) -> Optional[DelayModel]:
    if data is None:
        return None
    tag = data.get("type")
    if tag not in _DELAY_TYPES:
        raise ConfigurationError(
            f"unknown delay model type {tag!r}; known types: "
            f"{', '.join(sorted(_DELAY_TYPES))}"
        )
    cls, attrs = _DELAY_TYPES[tag]
    _reject_unknown(data, ("type",) + attrs, "delay model")
    try:
        return cls(**{a: data[a] for a in attrs if a in data})
    except TypeError as exc:
        raise ConfigurationError(
            f"incomplete {tag} delay model: {exc}"
        ) from None


# ----------------------------------------------------------------------
# Workload source
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadSource:
    """Where a scenario's workload comes from.

    ``explicit`` embeds a concrete :class:`Workload`; ``random`` and
    ``imbalanced`` carry the generator recipe (seed, RNG stream name,
    draw index, parameters) so workers — or a rerun months later —
    regenerate the *identical* task set.  ``index`` reproduces shared-
    stream draws: set *i* of an experiment grid is the (i+1)-th workload
    drawn from the named stream.
    """

    kind: str
    workload: Optional[Workload] = None
    seed: Optional[int] = None
    index: int = 0
    stream: str = "task_sets"
    params: Optional[Union[RandomWorkloadParams, ImbalancedWorkloadParams]] = None

    def __post_init__(self) -> None:
        if self.kind not in SOURCE_KINDS:
            raise ConfigurationError(
                f"unknown workload source kind {self.kind!r}; "
                f"expected one of {', '.join(SOURCE_KINDS)}"
            )
        if self.kind == SOURCE_EXPLICIT:
            if self.workload is None:
                raise ConfigurationError(
                    "explicit workload source needs a workload"
                )
            if (
                self.seed is not None
                or self.params is not None
                or self.index != 0
                or self.stream != "task_sets"
            ):
                raise ConfigurationError(
                    "explicit workload source must not carry generator "
                    "seed/params/index/stream (conflicting fields)"
                )
        else:
            if self.workload is not None:
                raise ConfigurationError(
                    f"{self.kind} workload source must not embed an explicit "
                    "workload (conflicting fields)"
                )
            if self.seed is None:
                raise ConfigurationError(
                    f"{self.kind} workload source needs a generator seed"
                )
            if self.index < 0:
                raise ConfigurationError("workload index must be >= 0")
            expected = (
                RandomWorkloadParams
                if self.kind == SOURCE_RANDOM
                else ImbalancedWorkloadParams
            )
            if self.params is not None and not isinstance(self.params, expected):
                raise ConfigurationError(
                    f"{self.kind} workload source needs {expected.__name__}, "
                    f"got {type(self.params).__name__}"
                )

    # -- constructors ---------------------------------------------------
    @classmethod
    def explicit(cls, workload: Workload) -> "WorkloadSource":
        return cls(kind=SOURCE_EXPLICIT, workload=workload)

    @classmethod
    def random(
        cls,
        seed: int,
        index: int = 0,
        params: Optional[RandomWorkloadParams] = None,
        stream: str = "task_sets",
    ) -> "WorkloadSource":
        return cls(
            kind=SOURCE_RANDOM, seed=seed, index=index, params=params, stream=stream
        )

    @classmethod
    def imbalanced(
        cls,
        seed: int,
        index: int = 0,
        params: Optional[ImbalancedWorkloadParams] = None,
        stream: str = "task_sets",
    ) -> "WorkloadSource":
        return cls(
            kind=SOURCE_IMBALANCED,
            seed=seed,
            index=index,
            params=params,
            stream=stream,
        )

    # -- materialization ------------------------------------------------
    def materialize(self) -> Workload:
        """The concrete workload this source denotes."""
        if self.kind == SOURCE_EXPLICIT:
            assert self.workload is not None  # enforced by __post_init__
            return self.workload
        assert self.seed is not None  # enforced by __post_init__
        rng = RngRegistry(self.seed).stream(self.stream)
        generate = (
            generate_random_workload
            if self.kind == SOURCE_RANDOM
            else generate_imbalanced_workload
        )
        # Draw index+1 workloads so shared-stream grids reproduce exactly.
        for _ in range(self.index):
            generate(rng, self.params)
        return generate(rng, self.params)

    # -- JSON ------------------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"kind": self.kind}
        if self.kind == SOURCE_EXPLICIT:
            assert self.workload is not None  # enforced by __post_init__
            data["workload"] = workload_to_json(self.workload)
        else:
            data["seed"] = self.seed
            data["index"] = self.index
            data["stream"] = self.stream
            if self.params is not None:
                data["params"] = dataclasses.asdict(self.params)
        return data

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "WorkloadSource":
        _reject_unknown(
            data,
            ("kind", "workload", "seed", "index", "stream", "params"),
            "workload source",
        )
        kind = data.get("kind")
        if kind == SOURCE_EXPLICIT:
            if "workload" not in data:
                raise ConfigurationError("explicit workload source needs a workload")
            return cls.explicit(workload_from_json(data["workload"]))
        if kind not in SOURCE_KINDS:
            raise ConfigurationError(
                f"unknown workload source kind {kind!r}; "
                f"expected one of {', '.join(SOURCE_KINDS)}"
            )
        params = None
        if data.get("params") is not None:
            params_cls = (
                RandomWorkloadParams
                if kind == SOURCE_RANDOM
                else ImbalancedWorkloadParams
            )
            allowed = {f.name for f in fields(params_cls)}
            _reject_unknown(data["params"], allowed, "workload params")
            params = params_cls(**data["params"])
        return cls(
            kind=kind,
            seed=data.get("seed"),
            index=data.get("index", 0),
            stream=data.get("stream", "task_sets"),
            params=params,
        )


# ----------------------------------------------------------------------
# Disturbances
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Burst:
    """A dense burst of aperiodic arrivals injected mid-run.

    ``task_id`` selects the task to burst (default: the workload's first
    aperiodic task); job indices start at ``base_index`` to stay clear of
    the generated arrival plan's numbering.
    """

    time: float
    jobs: int
    task_id: Optional[str] = None
    spacing: float = 1e-3
    base_index: int = 100_000

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError("burst time must be >= 0")
        if self.jobs < 0:
            raise ConfigurationError("burst job count must be >= 0")
        if self.spacing <= 0:
            raise ConfigurationError("burst spacing must be > 0")

    def to_json(self) -> Dict[str, Any]:
        return {
            "type": "burst",
            "time": self.time,
            "jobs": self.jobs,
            "task_id": self.task_id,
            "spacing": self.spacing,
            "base_index": self.base_index,
        }


@dataclass(frozen=True)
class Slowdown:
    """Throttle processors to ``factor`` x nominal speed at ``time``.

    An empty ``nodes`` tuple means every application processor — the
    paper's known-WCET-assumption violation.
    """

    time: float
    factor: float
    nodes: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError("slowdown time must be >= 0")
        if self.factor <= 0:
            raise ConfigurationError("slowdown factor must be > 0")

    def to_json(self) -> Dict[str, Any]:
        return {
            "type": "slowdown",
            "time": self.time,
            "factor": self.factor,
            "nodes": list(self.nodes),
        }


@dataclass(frozen=True)
class NodeCrash:
    """Fail-silent crash of one node at ``time``.

    While crashed the node neither sends nor receives network messages,
    its distributed-AC shard rejects every arrival immediately, and its
    ledger entries are quarantined (in-flight transactions it coordinates
    abort; locks it holds for remote coordinators are released by their
    expiry backstop).  ``recovery`` (``None`` = never) re-admits the node
    with an empty ledger shard.
    """

    node: str
    time: float
    recovery: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.node:
            raise ConfigurationError("node crash needs a node name")
        if self.time < 0:
            raise ConfigurationError("node crash time must be >= 0")
        if self.recovery is not None and self.recovery <= self.time:
            raise ConfigurationError(
                "node crash recovery must be after the crash time"
            )

    def to_json(self) -> Dict[str, Any]:
        return {
            "type": "node_crash",
            "node": self.node,
            "time": self.time,
            "recovery": self.recovery,
        }


@dataclass(frozen=True)
class Partition:
    """A network partition separating two node groups until ``heal``.

    Messages crossing the cut in either direction are dropped at send
    time for ``time <= now < heal``.  Messages within a group — and to
    or from nodes in neither group — are unaffected.  In-flight messages
    sent before the partition started still deliver (the fault model
    decides at send time, matching a LAN switch losing a segment).
    """

    time: float
    heal: float
    group_a: Tuple[str, ...] = ()
    group_b: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError("partition time must be >= 0")
        if self.heal <= self.time:
            raise ConfigurationError(
                "partition heal must be after the partition time"
            )
        if not self.group_a or not self.group_b:
            raise ConfigurationError(
                "partition needs two non-empty node groups"
            )
        overlap = set(self.group_a) & set(self.group_b)
        if overlap:
            raise ConfigurationError(
                "partition groups must be disjoint; both sides contain "
                f"{sorted(overlap)}"
            )

    def to_json(self) -> Dict[str, Any]:
        return {
            "type": "partition",
            "time": self.time,
            "heal": self.heal,
            "group_a": list(self.group_a),
            "group_b": list(self.group_b),
        }


@dataclass(frozen=True)
class DelaySpike:
    """Multiply every sampled link delay by ``factor`` during a window.

    Overlapping spikes compound (factors multiply).  The spike scales the
    scenario's delay model's samples, so relative link jitter is
    preserved — it models congestion, not a different network.
    """

    time: float
    until: float
    factor: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError("delay spike time must be >= 0")
        if self.until <= self.time:
            raise ConfigurationError(
                "delay spike until must be after its start time"
            )
        if self.factor <= 0:
            raise ConfigurationError("delay spike factor must be > 0")

    def to_json(self) -> Dict[str, Any]:
        return {
            "type": "delay_spike",
            "time": self.time,
            "until": self.until,
            "factor": self.factor,
        }


@dataclass(frozen=True)
class MessageLoss:
    """Drop each remote message independently with ``probability``.

    Drops draw from a named :class:`~repro.sim.rng.RngRegistry` stream,
    one per directed link (``"<stream>:<src>-><dst>"``), so loss on one
    link never perturbs the draws — or the behavior — of another and
    runs stay bit-identical for a fixed seed.  ``until`` ``None`` means
    the window never closes.
    """

    probability: float
    time: float = 0.0
    until: Optional[float] = None
    stream: str = "message_loss"

    def __post_init__(self) -> None:
        if not 0.0 < self.probability <= 1.0:
            raise ConfigurationError(
                "message loss probability must be in (0, 1], got "
                f"{self.probability}"
            )
        if self.time < 0:
            raise ConfigurationError("message loss time must be >= 0")
        if self.until is not None and self.until <= self.time:
            raise ConfigurationError(
                "message loss until must be after its start time"
            )
        if not self.stream:
            raise ConfigurationError("message loss needs an RNG stream name")

    def to_json(self) -> Dict[str, Any]:
        return {
            "type": "message_loss",
            "probability": self.probability,
            "time": self.time,
            "until": self.until,
            "stream": self.stream,
        }


Disturbance = Union[Burst, Slowdown, NodeCrash, Partition, DelaySpike, MessageLoss]

#: Disturbances that inject faults through the network layer (the
#: chaos-engineering set, as opposed to the workload-shaping set).
FAULT_DISTURBANCE_TYPES = (NodeCrash, Partition, DelaySpike, MessageLoss)


def disturbance_from_json(data: Dict[str, Any]) -> Disturbance:
    tag = data.get("type")
    if tag == "burst":
        _reject_unknown(
            data,
            ("type", "time", "jobs", "task_id", "spacing", "base_index"),
            "burst",
        )
        return Burst(
            time=data["time"],
            jobs=data["jobs"],
            task_id=data.get("task_id"),
            spacing=data.get("spacing", 1e-3),
            base_index=data.get("base_index", 100_000),
        )
    if tag == "slowdown":
        _reject_unknown(data, ("type", "time", "factor", "nodes"), "slowdown")
        return Slowdown(
            time=data["time"],
            factor=data["factor"],
            nodes=tuple(data.get("nodes", ())),
        )
    if tag == "node_crash":
        _reject_unknown(data, ("type", "node", "time", "recovery"), "node crash")
        return NodeCrash(
            node=data["node"],
            time=data["time"],
            recovery=data.get("recovery"),
        )
    if tag == "partition":
        _reject_unknown(
            data, ("type", "time", "heal", "group_a", "group_b"), "partition"
        )
        return Partition(
            time=data["time"],
            heal=data["heal"],
            group_a=tuple(data.get("group_a", ())),
            group_b=tuple(data.get("group_b", ())),
        )
    if tag == "delay_spike":
        _reject_unknown(data, ("type", "time", "until", "factor"), "delay spike")
        return DelaySpike(
            time=data["time"],
            until=data["until"],
            factor=data["factor"],
        )
    if tag == "message_loss":
        _reject_unknown(
            data,
            ("type", "probability", "time", "until", "stream"),
            "message loss",
        )
        return MessageLoss(
            probability=data["probability"],
            time=data.get("time", 0.0),
            until=data.get("until"),
            stream=data.get("stream", "message_loss"),
        )
    raise ConfigurationError(
        f"unknown disturbance type {tag!r}; expected one of 'burst', "
        "'slowdown', 'node_crash', 'partition', 'delay_spike', 'message_loss'"
    )


# ----------------------------------------------------------------------
# Scenario
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Scenario:
    """A complete, validated description of one deployment run."""

    workload: WorkloadSource
    combo: str = "default"
    duration: float = 60.0
    seed: int = 0
    engine: str = ENGINE_MIDDLEWARE
    policy: Optional[str] = None
    policy_params: Tuple[Tuple[str, float], ...] = ()
    cost_model: Optional[CostModel] = None
    delay_model: Optional[DelayModel] = None
    aperiodic_interarrival_factor: float = 2.0
    arrival_stream: str = "arrivals"
    #: Batched hot path: deliver simultaneous arrivals as kernel batches
    #: and let the admission layer drain its arrival queue through one
    #: batched decision pass per burst (Burst disturbances exercise it).
    #: Composes with every strategy combo — load-balanced combos plan
    #: placements through a batch session, and the distributed engine
    #: piggybacks the burst onto one coordination round — and with both
    #: engines that have an admission controller.
    arrival_batching: bool = False
    disturbances: Tuple[Disturbance, ...] = ()
    trace: bool = False
    drain: bool = True
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.workload, WorkloadSource):
            raise ConfigurationError(
                "scenario workload must be a WorkloadSource "
                "(use WorkloadSource.explicit/random/imbalanced)"
            )
        if self.duration <= 0:
            raise ConfigurationError(
                f"scenario duration must be > 0, got {self.duration}"
            )
        if self.aperiodic_interarrival_factor <= 0:
            raise ConfigurationError(
                "aperiodic_interarrival_factor must be > 0, got "
                f"{self.aperiodic_interarrival_factor}"
            )
        if self.engine not in ENGINES:
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; expected one of "
                f"{', '.join(ENGINES)}"
            )
        # Normalize policy params to a canonical sorted tuple so equal
        # scenarios compare (and JSON-round-trip) equal regardless of the
        # order the caller supplied; duplicate names are ambiguous.
        params = tuple(tuple(p) for p in self.policy_params)
        names = [name for name, _value in params]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"duplicate policy parameter name(s): "
                f"{sorted(n for n in names if names.count(n) > 1)}"
            )
        object.__setattr__(self, "policy_params", tuple(sorted(params)))
        # Resolving eagerly surfaces unknown-combo errors at build time.
        combo = default_registry().combo(self.combo)
        if self.engine == ENGINE_REPLAY:
            if self.policy is None:
                raise ConfigurationError(
                    "replay scenarios need an admission policy name "
                    "(e.g. 'aub' or 'deferrable_server')"
                )
            if self.disturbances:
                raise ConfigurationError(
                    "replay scenarios are analytic: disturbances conflict "
                    "with the replay engine"
                )
            if self.trace:
                raise ConfigurationError(
                    "replay scenarios have no tracer: trace=True conflicts "
                    "with the replay engine"
                )
            if self.cost_model is not None or self.delay_model is not None:
                raise ConfigurationError(
                    "replay scenarios are overhead-free: cost/delay models "
                    "conflict with the replay engine"
                )
            if self.arrival_batching:
                raise ConfigurationError(
                    "replay scenarios have no admission controller: "
                    "arrival_batching conflicts with the replay engine"
                )
        else:
            if self.policy is not None or self.policy_params:
                raise ConfigurationError(
                    f"admission policies only apply to the replay engine, "
                    f"not {self.engine!r} (conflicting fields)"
                )
            if self.arrival_stream != "arrivals":
                raise ConfigurationError(
                    f"the {self.engine} engine draws arrivals from the "
                    "fixed 'arrivals' RNG stream; a custom arrival_stream "
                    "only applies to the replay engine (conflicting fields)"
                )
        if self.engine == ENGINE_DISTRIBUTED:
            if combo.label != "J_N_N":
                raise ConfigurationError(
                    "the distributed-AC prototype supports only the J_N_N "
                    f"configuration, got {combo.label!r}"
                )
            if any(isinstance(d, (Burst, Slowdown)) for d in self.disturbances):
                raise ConfigurationError(
                    "burst/slowdown disturbances are not supported by the "
                    "distributed engine"
                )
            if self.trace:
                raise ConfigurationError(
                    "tracing is not supported by the distributed engine"
                )
        if self.engine == ENGINE_MIDDLEWARE:
            # The centralized accept/reject round trip has no timeout: a
            # dropped decision would strand the job at its effector
            # forever, so only the delay-shaping fault is meaningful here.
            blocked = [
                d for d in self.disturbances
                if isinstance(d, (NodeCrash, Partition, MessageLoss))
            ]
            if blocked:
                raise ConfigurationError(
                    "node crash/partition/message loss disturbances require "
                    "the distributed engine (the centralized middleware "
                    "protocol has no timeout to recover from a lost message)"
                )
        for disturbance in self.disturbances:
            if not isinstance(
                disturbance,
                (Burst, Slowdown) + FAULT_DISTURBANCE_TYPES,
            ):
                raise ConfigurationError(
                    f"unknown disturbance object {disturbance!r}"
                )
        self._check_burst_index_overlap()

    def _check_burst_index_overlap(self) -> None:
        # Burst jobs are keyed (task_id, base_index + i); overlapping index
        # ranges on the same task would collide in the admission registry
        # (re-registering a job key replaces the previous entry), silently
        # corrupting the AUB bookkeeping.
        ranges: Dict[Optional[str], List[Tuple[int, int]]] = {}
        for disturbance in self.disturbances:
            if not isinstance(disturbance, Burst) or disturbance.jobs == 0:
                continue
            span = (disturbance.base_index,
                    disturbance.base_index + disturbance.jobs)
            for other in ranges.get(disturbance.task_id, ()):
                if span[0] < other[1] and other[0] < span[1]:
                    raise ConfigurationError(
                        "burst disturbances on task "
                        f"{disturbance.task_id or '<first aperiodic>'} have "
                        f"overlapping job index ranges {other} and {span}; "
                        "give each burst a distinct base_index"
                    )
            ranges.setdefault(disturbance.task_id, []).append(span)

    # -- resolution -------------------------------------------------------
    @property
    def strategy_combo(self) -> StrategyCombo:
        """The resolved :class:`StrategyCombo` for this scenario."""
        return default_registry().combo(self.combo)

    @property
    def effective_label(self) -> str:
        """Display label: user label, else combo label + engine tag."""
        if self.label:
            return self.label
        suffix = "" if self.engine == ENGINE_MIDDLEWARE else f"@{self.engine}"
        core = self.policy if self.engine == ENGINE_REPLAY else (
            self.strategy_combo.label
        )
        return f"{core}{suffix}"

    @classmethod
    def builder(cls) -> "ScenarioBuilder":
        return ScenarioBuilder()

    def with_changes(self, **changes: Any) -> "Scenario":
        """A copy with the given fields replaced (re-validated)."""
        return replace(self, **changes)

    # -- JSON -------------------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "workload": self.workload.to_json(),
            "combo": self.combo,
            "duration": self.duration,
            "seed": self.seed,
            "engine": self.engine,
            "aperiodic_interarrival_factor": self.aperiodic_interarrival_factor,
            "arrival_stream": self.arrival_stream,
            "trace": self.trace,
            "drain": self.drain,
        }
        if self.policy is not None:
            data["policy"] = self.policy
        if self.policy_params:
            data["policy_params"] = dict(self.policy_params)
        if self.arrival_batching:
            data["arrival_batching"] = True
        if self.cost_model is not None:
            data["cost_model"] = cost_model_to_json(self.cost_model)
        if self.delay_model is not None:
            data["delay_model"] = delay_model_to_json(self.delay_model)
        if self.disturbances:
            data["disturbances"] = [d.to_json() for d in self.disturbances]
        if self.label is not None:
            data["label"] = self.label
        return data

    def to_json_str(self, indent: int = 2) -> str:
        return json.dumps(self.to_json(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "Scenario":
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"scenario JSON must be an object, got {type(data).__name__}"
            )
        allowed = {f.name for f in fields(cls)}
        _reject_unknown(data, allowed, "scenario")
        if "workload" not in data:
            raise ConfigurationError("scenario JSON needs a workload source")
        kwargs: Dict[str, Any] = {
            "workload": WorkloadSource.from_json(data["workload"])
        }
        for name in (
            "combo",
            "duration",
            "seed",
            "engine",
            "policy",
            "aperiodic_interarrival_factor",
            "arrival_stream",
            "arrival_batching",
            "trace",
            "drain",
            "label",
        ):
            if name in data:
                kwargs[name] = data[name]
        if "policy_params" in data:
            params = data["policy_params"]
            if not isinstance(params, dict):
                raise ConfigurationError("policy_params must be an object")
            kwargs["policy_params"] = tuple(sorted(params.items()))
        if "cost_model" in data:
            kwargs["cost_model"] = cost_model_from_json(data["cost_model"])
        if "delay_model" in data:
            kwargs["delay_model"] = delay_model_from_json(data["delay_model"])
        if "disturbances" in data:
            kwargs["disturbances"] = tuple(
                disturbance_from_json(d) for d in data["disturbances"]
            )
        return cls(**kwargs)

    @classmethod
    def from_json_str(cls, text: str) -> "Scenario":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid scenario JSON: {exc}") from None
        return cls.from_json(data)

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json_str() + "\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Scenario":
        return cls.from_json_str(Path(path).read_text())


# ----------------------------------------------------------------------
# Builder
# ----------------------------------------------------------------------
class ScenarioBuilder:
    """Fluent construction: ``Scenario.builder().workload(w)...build()``.

    Every setter returns the builder; :meth:`build` validates and returns
    the frozen :class:`Scenario`.  Conflicting settings (two workload
    sources, a policy on a non-replay engine, ...) fail at build time with
    :class:`~repro.errors.ConfigurationError`.
    """

    def __init__(self) -> None:
        self._fields: Dict[str, Any] = {}

    def _set(self, name: str, value: Any) -> "ScenarioBuilder":
        self._fields[name] = value
        return self

    # -- workload sources -------------------------------------------------
    def workload(self, workload: Workload) -> "ScenarioBuilder":
        return self._source(WorkloadSource.explicit(workload))

    def random_workload(
        self,
        seed: int,
        index: int = 0,
        params: Optional[RandomWorkloadParams] = None,
        stream: str = "task_sets",
    ) -> "ScenarioBuilder":
        return self._source(WorkloadSource.random(seed, index, params, stream))

    def imbalanced_workload(
        self,
        seed: int,
        index: int = 0,
        params: Optional[ImbalancedWorkloadParams] = None,
        stream: str = "task_sets",
    ) -> "ScenarioBuilder":
        return self._source(WorkloadSource.imbalanced(seed, index, params, stream))

    def workload_source(self, source: WorkloadSource) -> "ScenarioBuilder":
        return self._source(source)

    def _source(self, source: WorkloadSource) -> "ScenarioBuilder":
        if "workload" in self._fields:
            raise ConfigurationError(
                "scenario already has a workload source (conflicting fields)"
            )
        return self._set("workload", source)

    # -- knobs ------------------------------------------------------------
    def combo(self, name: Union[str, StrategyCombo]) -> "ScenarioBuilder":
        if isinstance(name, StrategyCombo):
            name = name.label
        return self._set("combo", name)

    def duration(self, seconds: float) -> "ScenarioBuilder":
        return self._set("duration", seconds)

    def seed(self, seed: int) -> "ScenarioBuilder":
        return self._set("seed", seed)

    def cost_model(self, model: Optional[CostModel]) -> "ScenarioBuilder":
        return self._set("cost_model", model)

    def delay_model(self, model: Optional[DelayModel]) -> "ScenarioBuilder":
        return self._set("delay_model", model)

    def interarrival_factor(self, factor: float) -> "ScenarioBuilder":
        return self._set("aperiodic_interarrival_factor", factor)

    def arrival_stream(self, name: str) -> "ScenarioBuilder":
        return self._set("arrival_stream", name)

    def arrival_batching(self, enabled: bool = True) -> "ScenarioBuilder":
        return self._set("arrival_batching", enabled)

    def trace(self, enabled: bool = True) -> "ScenarioBuilder":
        return self._set("trace", enabled)

    def drain(self, enabled: bool = True) -> "ScenarioBuilder":
        return self._set("drain", enabled)

    def label(self, text: str) -> "ScenarioBuilder":
        return self._set("label", text)

    # -- engines ----------------------------------------------------------
    def distributed(self) -> "ScenarioBuilder":
        self._fields.setdefault("combo", "J_N_N")
        return self._set("engine", ENGINE_DISTRIBUTED)

    def replay(self, policy: str, **params: float) -> "ScenarioBuilder":
        self._set("engine", ENGINE_REPLAY)
        self._set("policy", policy)
        if params:
            self._set("policy_params", tuple(sorted(params.items())))
        return self

    # -- disturbances -----------------------------------------------------
    def burst(
        self,
        time: float,
        jobs: int,
        task_id: Optional[str] = None,
        spacing: float = 1e-3,
        base_index: int = 100_000,
    ) -> "ScenarioBuilder":
        return self._disturb(Burst(time=time, jobs=jobs, task_id=task_id,
                                   spacing=spacing, base_index=base_index))

    def slowdown(
        self, time: float, factor: float, nodes: Tuple[str, ...] = ()
    ) -> "ScenarioBuilder":
        return self._disturb(Slowdown(time=time, factor=factor, nodes=tuple(nodes)))

    def node_crash(
        self, node: str, time: float, recovery: Optional[float] = None
    ) -> "ScenarioBuilder":
        return self._disturb(NodeCrash(node=node, time=time, recovery=recovery))

    def partition(
        self,
        time: float,
        heal: float,
        group_a: Tuple[str, ...],
        group_b: Tuple[str, ...],
    ) -> "ScenarioBuilder":
        return self._disturb(
            Partition(
                time=time,
                heal=heal,
                group_a=tuple(group_a),
                group_b=tuple(group_b),
            )
        )

    def delay_spike(
        self, time: float, until: float, factor: float
    ) -> "ScenarioBuilder":
        return self._disturb(DelaySpike(time=time, until=until, factor=factor))

    def message_loss(
        self,
        probability: float,
        time: float = 0.0,
        until: Optional[float] = None,
        stream: str = "message_loss",
    ) -> "ScenarioBuilder":
        return self._disturb(
            MessageLoss(
                probability=probability, time=time, until=until, stream=stream
            )
        )

    def _disturb(self, disturbance: Disturbance) -> "ScenarioBuilder":
        existing = self._fields.get("disturbances", ())
        return self._set("disturbances", existing + (disturbance,))

    # -- terminal ---------------------------------------------------------
    def build(self) -> Scenario:
        if "workload" not in self._fields:
            raise ConfigurationError(
                "scenario needs a workload source; call .workload(), "
                ".random_workload() or .imbalanced_workload() first"
            )
        return Scenario(**self._fields)

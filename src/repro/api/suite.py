"""ExperimentSuite: declarative grids of cells, one parallel execution path.

A suite is a named, ordered tuple of cells.  Two cell kinds cover every
experiment in the repository:

* :class:`~repro.api.scenario.Scenario` — one simulation/replay run; and
* :class:`MappingCell` — one constant-time Table-1 characteristics
  mapping (no simulation).

``ExperimentSuite.run`` dispatches every cell through the *same*
generalized :func:`repro.experiments.runner.run_cells` multiprocessing
fan-out the PR-1 runner introduced: results come back in cell order, so
callers fold them exactly as a serial loop would — bit-identical for any
worker count.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.api.scenario import Scenario, WorkloadSource, _reject_unknown
from repro.api.session import RunResult, Session
from repro.core.cost_model import CostModel
from repro.core.strategies import StrategyCombo
from repro.errors import ConfigurationError
from repro.workloads.model import Workload


@dataclass(frozen=True)
class MappingCell:
    """One Table-1 row: application characteristics -> strategy combo."""

    category: str
    job_skipping: bool
    replicated_components: bool
    state_persistence: bool
    overhead_tolerance: str  # OverheadTolerance value, e.g. "PT"/"PJ"

    def to_json(self) -> Dict[str, Any]:
        return {
            "type": "mapping",
            "category": self.category,
            "job_skipping": self.job_skipping,
            "replicated_components": self.replicated_components,
            "state_persistence": self.state_persistence,
            "overhead_tolerance": self.overhead_tolerance,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "MappingCell":
        allowed = tuple(f.name for f in fields(cls)) + ("type",)
        _reject_unknown(data, allowed, "mapping cell")
        kwargs = {k: v for k, v in data.items() if k != "type"}
        return cls(**kwargs)


Cell = Union[Scenario, MappingCell]


def execute_cell(cell: Cell) -> Any:
    """Evaluate one suite cell (module-level so it pickles to workers).

    Returns a :class:`RunResult` for scenarios, a ``Table1Row`` for
    mapping cells — ``Any`` because the latter lives in the untyped
    experiment layer.
    """
    if isinstance(cell, Scenario):
        return Session(cell).run()
    if isinstance(cell, MappingCell):
        # Local imports keep workers cheap and avoid import cycles.
        from repro.config.characteristics import (
            ApplicationCharacteristics,
            OverheadTolerance,
        )
        from repro.config.mapping import map_characteristics
        from repro.experiments.table1 import Table1Row

        chars = ApplicationCharacteristics(
            job_skipping=cell.job_skipping,
            replicated_components=cell.replicated_components,
            state_persistence=cell.state_persistence,
            overhead_tolerance=OverheadTolerance(cell.overhead_tolerance),
        )
        combo, notes = map_characteristics(chars)
        return Table1Row(
            category=cell.category,
            characteristics=chars,
            combo_label=combo.label,
            notes=tuple(notes),
        )
    raise ConfigurationError(
        f"unknown suite cell type {type(cell).__name__}"
    )


@dataclass(frozen=True)
class ExperimentSuite:
    """A named, declarative grid of cells executed through one runner."""

    name: str
    cells: Tuple[Cell, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("experiment suite needs a name")
        for cell in self.cells:
            if not isinstance(cell, (Scenario, MappingCell)):
                raise ConfigurationError(
                    f"suite {self.name!r}: unknown cell type "
                    f"{type(cell).__name__}"
                )

    def __len__(self) -> int:
        return len(self.cells)

    @property
    def scenarios(self) -> Tuple[Scenario, ...]:
        return tuple(c for c in self.cells if isinstance(c, Scenario))

    def run(self, n_workers: Optional[int] = None) -> List[Any]:
        """Execute every cell (in parallel) and return results in order."""
        from repro.experiments.runner import run_cells

        results: List[Any] = run_cells(
            execute_cell, [(cell,) for cell in self.cells], n_workers
        )
        return results

    def run_results(self, n_workers: Optional[int] = None) -> List[RunResult]:
        """Like :meth:`run` for all-scenario suites, typed as RunResults."""
        # Reject mixed suites before spending any compute on the grid.
        for cell in self.cells:
            if not isinstance(cell, Scenario):
                raise ConfigurationError(
                    f"suite {self.name!r} contains non-scenario cells; "
                    "use .run() instead"
                )
        return self.run(n_workers)

    # -- JSON -------------------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        cells: List[Dict[str, Any]] = []
        for cell in self.cells:
            if isinstance(cell, Scenario):
                data = cell.to_json()
                data["type"] = "scenario"
                cells.append(data)
            else:
                cells.append(cell.to_json())
        return {
            "name": self.name,
            "description": self.description,
            "cells": cells,
        }

    def to_json_str(self, indent: int = 2) -> str:
        return json.dumps(self.to_json(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "ExperimentSuite":
        _reject_unknown(data, ("name", "description", "cells"), "suite")
        cells: List[Cell] = []
        for entry in data.get("cells", ()):
            tag = entry.get("type", "scenario")
            if tag == "scenario":
                payload = {k: v for k, v in entry.items() if k != "type"}
                cells.append(Scenario.from_json(payload))
            elif tag == "mapping":
                cells.append(MappingCell.from_json(entry))
            else:
                raise ConfigurationError(f"unknown suite cell type {tag!r}")
        return cls(
            name=data["name"],
            cells=tuple(cells),
            description=data.get("description", ""),
        )


# ----------------------------------------------------------------------
# Grid constructors shared by the experiment modules
# ----------------------------------------------------------------------
def combo_grid(
    name: str,
    workloads: Sequence[Workload],
    combos: Sequence[StrategyCombo],
    seed: int,
    duration: float,
    cost_model: Optional[CostModel] = None,
    aperiodic_interarrival_factor: float = 2.0,
) -> ExperimentSuite:
    """The Figures 5/6 grid: every combo x every task set, combo-major.

    Per-cell seeds follow the historical serial loops exactly
    (``seed + 1000 * set_index``), so results are bit-identical to the
    pre-API per-cell runs.
    """
    cells = tuple(
        Scenario(
            workload=WorkloadSource.explicit(workload),
            combo=combo.label,
            duration=duration,
            seed=seed + 1000 * set_index,
            cost_model=cost_model,
            aperiodic_interarrival_factor=aperiodic_interarrival_factor,
            label=f"{combo.label}/set{set_index}",
        )
        for combo in combos
        for set_index, workload in enumerate(workloads)
    )
    return ExperimentSuite(name=name, cells=cells)


def fold_combo_grid(
    results: Sequence[RunResult], combos: Sequence[StrategyCombo], n_sets: int
) -> Tuple[Dict[str, List[float]], int]:
    """Fold :func:`combo_grid` results exactly like the old serial loops:
    combo-major, accumulating deadline misses in submission order."""
    outcomes = iter(results)
    per_combo_sets: Dict[str, List[float]] = {}
    deadline_misses = 0
    for combo in combos:
        ratios: List[float] = []
        for _ in range(n_sets):
            result = next(outcomes)
            ratios.append(result.accepted_utilization_ratio)
            deadline_misses += result.deadline_misses
        per_combo_sets[combo.label] = ratios
    return per_combo_sets, deadline_misses

"""repro.api — the single public surface for building and running deployments.

Build a :class:`Scenario` (declaratively, or with the fluent builder),
hand it to a :class:`Session`, get a typed :class:`RunResult` back::

    from repro.api import Scenario, Session

    scenario = (
        Scenario.builder()
        .random_workload(seed=2008)
        .combo("J_J_J")
        .duration(60.0)
        .seed(7)
        .build()
    )
    result = Session(scenario).run()
    print(result.accepted_utilization_ratio)

Scenarios are frozen, validated and JSON-round-trip serializable
(``scenario.to_json_str()`` / ``Scenario.from_json_str``), strategies are
resolved by name through the :func:`default_registry`, and grids of
scenarios fan out over all cores through :class:`ExperimentSuite` with
results bit-identical to a serial run.

Direct ``MiddlewareSystem(...)`` construction still works but is a
deprecated back-compat path — see ``docs/API.md`` for the migration
table.
"""

from repro.api.registry import REGISTRY, StrategyRegistry, default_registry
from repro.api.scenario import (
    ENGINE_DISTRIBUTED,
    ENGINE_MIDDLEWARE,
    ENGINE_REPLAY,
    Burst,
    DelaySpike,
    Disturbance,
    MessageLoss,
    NodeCrash,
    Partition,
    Scenario,
    ScenarioBuilder,
    Slowdown,
    WorkloadSource,
    disturbance_from_json,
    cost_model_from_json,
    cost_model_to_json,
    delay_model_from_json,
    delay_model_to_json,
    workload_from_json,
    workload_to_json,
)
from repro.api.session import RunResult, Session, StatSnapshot, run_scenario
from repro.metrics.histogram import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    HistogramSnapshot,
)
from repro.metrics.registry import MetricsRegistry, MetricsSnapshot
from repro.api.suite import (
    ExperimentSuite,
    MappingCell,
    combo_grid,
    execute_cell,
)

__all__ = [
    "Scenario",
    "ScenarioBuilder",
    "Session",
    "RunResult",
    "StatSnapshot",
    "run_scenario",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Histogram",
    "HistogramSnapshot",
    "DEFAULT_LATENCY_BUCKETS",
    "WorkloadSource",
    "Burst",
    "Slowdown",
    "NodeCrash",
    "Partition",
    "DelaySpike",
    "MessageLoss",
    "Disturbance",
    "disturbance_from_json",
    "ExperimentSuite",
    "MappingCell",
    "combo_grid",
    "execute_cell",
    "StrategyRegistry",
    "default_registry",
    "REGISTRY",
    "ENGINE_MIDDLEWARE",
    "ENGINE_DISTRIBUTED",
    "ENGINE_REPLAY",
    "workload_to_json",
    "workload_from_json",
    "cost_model_to_json",
    "cost_model_from_json",
    "delay_model_to_json",
    "delay_model_from_json",
]

"""Strategy registry: AC/IR/LB combinations and admission policies by name.

The rest of the codebase historically imported strategy classes
concretely (``StrategyCombo.from_label`` scattered over call sites,
``DeferrableServerPolicy`` imported by the ablation).  The registry makes
strategy selection a *data* decision: scenarios carry strategy **names**,
and the registry resolves them at run time — which is what lets a JSON
scenario file select any strategy without touching Python imports.

Two namespaces are registered:

* **combos** — the paper's 15 valid ``AC_IR_LB`` labels plus semantic
  aliases (``default``, ``paper-best``, ``distributed``).
* **policies** — analytic admission policies for trace replay: the AUB
  core (``aub``) and the Deferrable Server baseline
  (``deferrable_server``).

Unknown names raise :class:`~repro.errors.ConfigurationError` listing
what is available, so typos fail loudly instead of silently defaulting.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Sequence

from repro.core.strategies import StrategyCombo, valid_combinations
from repro.errors import ConfigurationError

#: Factory signature: ``factory(nodes, **params) -> AdmissionPolicy``.
PolicyFactory = Callable[..., object]


class StrategyRegistry:
    """Name -> strategy lookup for combos and replay admission policies."""

    def __init__(self) -> None:
        self._combos: Dict[str, StrategyCombo] = {}
        self._policies: Dict[str, PolicyFactory] = {}

    # ------------------------------------------------------------------
    # Strategy combinations
    # ------------------------------------------------------------------
    def register_combo(
        self, name: str, combo: StrategyCombo, overwrite: bool = False
    ) -> None:
        key = name.strip()
        if not key:
            raise ConfigurationError("combo name must be non-empty")
        if key in self._combos and not overwrite:
            raise ConfigurationError(f"combo {key!r} is already registered")
        self._combos[key] = combo.validate()

    def combo(self, name: str) -> StrategyCombo:
        """Resolve a combo by registered name or raw ``AC_IR_LB`` label."""
        if not isinstance(name, str):
            raise ConfigurationError(
                f"strategy combo must be a name string, got {type(name).__name__}"
            )
        key = name.strip()
        if key in self._combos:
            return self._combos[key]
        normalized = key.upper()
        if normalized in self._combos:
            return self._combos[normalized]
        try:
            return StrategyCombo.from_label(key).validate()
        except ConfigurationError:
            raise ConfigurationError(
                f"unknown strategy combo {name!r}; known names: "
                f"{', '.join(self.combo_names())}"
            ) from None

    def combo_names(self) -> List[str]:
        return sorted(self._combos)

    # ------------------------------------------------------------------
    # Replay admission policies
    # ------------------------------------------------------------------
    def register_policy(
        self, name: str, factory: PolicyFactory, overwrite: bool = False
    ) -> None:
        key = name.strip()
        if not key:
            raise ConfigurationError("policy name must be non-empty")
        if key in self._policies and not overwrite:
            raise ConfigurationError(f"policy {key!r} is already registered")
        self._policies[key] = factory

    def policy(self, name: str, nodes: Sequence[str], **params: Any) -> object:
        """Instantiate the named admission policy over ``nodes``."""
        factory = self._policies.get(name.strip() if isinstance(name, str) else name)
        if factory is None:
            raise ConfigurationError(
                f"unknown admission policy {name!r}; known policies: "
                f"{', '.join(self.policy_names())}"
            )
        try:
            return factory(nodes, **params)
        except TypeError as exc:
            raise ConfigurationError(
                f"bad parameters for policy {name!r}: {exc}"
            ) from None

    def policy_names(self) -> List[str]:
        return sorted(self._policies)


def _aub_policy(nodes: Sequence[str], **params: Any) -> object:
    from repro.sched.replay import AubReplayPolicy

    if params:
        raise ConfigurationError(
            f"policy 'aub' takes no parameters, got {sorted(params)}"
        )
    return AubReplayPolicy(nodes)


def _deferrable_policy(nodes: Sequence[str], **params: Any) -> object:
    from repro.sched.deferrable import DeferrableServerPolicy

    return DeferrableServerPolicy(nodes, **params)


def _build_default_registry() -> StrategyRegistry:
    registry = StrategyRegistry()
    for combo in valid_combinations():
        registry.register_combo(combo.label, combo)
    # Semantic aliases used by scenarios and the CLI.
    registry.register_combo("default", StrategyCombo.from_label("T_T_T"))
    registry.register_combo("paper-best", StrategyCombo.from_label("J_J_J"))
    # The distributed-AC prototype supports exactly this configuration.
    registry.register_combo("distributed", StrategyCombo.from_label("J_N_N"))
    registry.register_policy("aub", _aub_policy)
    registry.register_policy("deferrable_server", _deferrable_policy)
    return registry


#: Process-wide default registry; scenarios resolve against this.
REGISTRY = _build_default_registry()


def default_registry() -> StrategyRegistry:
    """The process-wide registry (all valid combos + replay policies)."""
    return REGISTRY

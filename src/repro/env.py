"""Designated configuration entry point for environment variables.

A scenario is seed-complete: the same Scenario must produce the same
result on any machine, so ambient configuration must never leak into the
engine.  ``repro-lint`` rule RL009 enforces that everything under
``src/repro`` reads the process environment *only* through this module
(and the CLI, which is process-boundary code by definition); every other
layer accepts plain parameters and lets its caller resolve them here.

The helpers below are the complete catalogue of runtime environment
knobs the library honors (benchmark- and test-only knobs such as
``REPRO_BENCH_*`` live with their harnesses, which are outside the
library).  Each knob is read at its use site's entry point — not cached
at import — except where the consumer itself binds the value at import
time (the numpy gate in :mod:`repro.sched.aub`).
"""

from __future__ import annotations

import os
from typing import Optional

#: Worker-count override for the experiment fan-out (``run_cells``).
WORKERS_VAR = "REPRO_WORKERS"

#: Force the scalar f(U) path even when numpy is importable.
PURE_PYTHON_VAR = "REPRO_PURE_PYTHON"

#: Enable the runtime determinism sanitizer (see :mod:`repro.sanitize`).
SANITIZE_VAR = "REPRO_SANITIZE"


def flag(name: str, default: bool = False) -> bool:
    """An on/off env knob: unset means ``default``; ``""`` and ``"0"``
    mean off; anything else means on."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw not in ("", "0")


def pure_python_forced() -> bool:
    """True when ``$REPRO_PURE_PYTHON`` disables the numpy bulk path.

    Results are bit-identical either way (see ``aub_terms_bulk``); the
    knob exists so both paths can be exercised on one machine.
    """
    return flag(PURE_PYTHON_VAR)


def sanitize_enabled() -> bool:
    """True when ``$REPRO_SANITIZE`` turns the runtime sanitizer on.

    Consulted at *object construction* (ledgers, analyzers, RNG
    registries) and at each ``run_cells`` dispatch, never cached at
    import, so one process can build sanitized and unsanitized systems
    side by side (the fault-injection tests rely on this).  The knob is
    process-ambient by design: local worker processes inherit it, but a
    distributed executor must forward it explicitly (see
    docs/LINTING.md, "Runtime sanitizer").
    """
    return flag(SANITIZE_VAR)


def workers_override() -> Optional[int]:
    """``$REPRO_WORKERS`` as an int, or None when unset/empty.

    Raises :class:`ValueError` on a non-integer value — a silently
    ignored typo here would change fan-out behavior without a trace.
    """
    raw = os.environ.get(WORKERS_VAR)
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"${WORKERS_VAR} must be an integer, got {raw!r}"
        ) from None

"""Preemptive fixed-priority processor model.

The processor dispatches the highest-priority ready thread (lowest
numerical priority value).  A running work item is preempted whenever a
higher-priority thread becomes ready; its remaining cost is tracked across
preemptions, giving the standard preemptive fixed-priority semantics that
the AUB/EDMS analysis in :mod:`repro.sched.aub` assumes.

Idle transitions (busy -> no ready work) invoke registered idle listeners.
The Idle Resetting service does not use those listeners for its reports —
it queues report work on a lowest-priority thread instead — but tests and
metrics use them to observe idle periods.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional

from repro.cpu.thread import DispatchThread, WorkItem
from repro.errors import SimulationError
from repro.sim.kernel import EventHandle, Simulator
from repro.sim.monitor import TimeWeightedStat

#: Event priority for work-completion events: fire before same-time
#: arrivals so completions release resources promptly and deterministically.
_COMPLETION_EVENT_PRIORITY = 50


class Processor:
    """A single simulated CPU with preemptive fixed-priority dispatching."""

    def __init__(self, sim: Simulator, name: str, speed: float = 1.0) -> None:
        if speed <= 0:
            raise SimulationError(f"processor speed must be positive, got {speed}")
        self.sim = sim
        self.name = name
        #: Relative speed; a work item of cost c takes c / speed seconds.
        self.speed = speed
        self.threads: List[DispatchThread] = []
        self._ready: List[DispatchThread] = []
        self._ready_counter = 0
        self._running: Optional[DispatchThread] = None
        self._segment_start = 0.0
        self._completion: Optional[EventHandle] = None
        self._idle_listeners: List[Callable[[float], None]] = []
        self._busy_stat = TimeWeightedStat(start=sim.now, initial=0.0)
        self.items_completed = 0

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def add_thread(self, thread: DispatchThread) -> DispatchThread:
        """Register a dispatch thread on this processor."""
        if thread.processor is not None:
            raise SimulationError(
                f"thread {thread.name} already bound to {thread.processor.name}"
            )
        thread.processor = self
        self.threads.append(thread)
        return thread

    def new_thread(self, name: str, priority: float) -> DispatchThread:
        """Create and register a new dispatch thread."""
        return self.add_thread(DispatchThread(name, priority))

    def on_idle(self, listener: Callable[[float], None]) -> None:
        """Register ``listener(now)`` invoked at busy->idle transitions."""
        self._idle_listeners.append(listener)

    def set_speed(self, speed: float) -> None:
        """Change the CPU's relative speed at runtime (fault injection:
        thermal throttling, contention from an unmodeled co-tenant).

        A running work item is re-timed: CPU already consumed is credited
        at the old speed, the remainder is rescheduled at the new speed.
        """
        if speed <= 0:
            raise SimulationError(f"processor speed must be positive, got {speed}")
        if self._running is not None:
            thread = self._running
            assert self._completion is not None
            self._completion.cancel()
            consumed = (self.sim.now - self._segment_start) * self.speed
            item = thread.head()
            item.remaining = max(0.0, item.remaining - consumed)
            self.speed = speed
            self._segment_start = self.sim.now
            duration = item.remaining / self.speed
            self._completion = self.sim.schedule(
                duration,
                self._complete,
                thread,
                priority=_COMPLETION_EVENT_PRIORITY,
            )
        else:
            self.speed = speed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def running(self) -> Optional[DispatchThread]:
        return self._running

    @property
    def idle(self) -> bool:
        """True when no thread is running or ready."""
        return self._running is None and not self._ready

    def utilization(self, until: Optional[float] = None) -> float:
        """Fraction of time the CPU has been busy."""
        return self._busy_stat.average(until if until is not None else self.sim.now)

    # ------------------------------------------------------------------
    # Work submission
    # ------------------------------------------------------------------
    def submit(self, thread: DispatchThread, item: WorkItem) -> None:
        """Enqueue ``item`` on ``thread`` and reschedule the CPU."""
        if thread.processor is not self:
            raise SimulationError(
                f"thread {thread.name} does not belong to processor {self.name}"
            )
        item.enqueued_at = self.sim.now
        was_busy = thread.busy
        thread.queue.append(item)
        if not was_busy and thread is not self._running:
            self._make_ready(thread)
        self._reschedule()

    # ------------------------------------------------------------------
    # Internal scheduling machinery
    # ------------------------------------------------------------------
    def _make_ready(self, thread: DispatchThread) -> None:
        self._ready_counter += 1
        thread._ready_seq = self._ready_counter
        self._ready.append(thread)

    def _pick_ready(self) -> Optional[DispatchThread]:
        if not self._ready:
            return None
        best = min(self._ready, key=lambda t: (t.priority, t._ready_seq))
        return best

    def _reschedule(self) -> None:
        """Ensure the highest-priority ready/running thread holds the CPU."""
        challenger = self._pick_ready()
        if self._running is None:
            if challenger is None:
                return
            self._ready.remove(challenger)
            self._start(challenger)
            return
        if challenger is None:
            return
        if challenger.priority < self._running.priority:
            self._preempt()
            self._ready.remove(challenger)
            self._start(challenger)

    def _start(self, thread: DispatchThread) -> None:
        item = thread.head()
        if item.started_at is None:
            item.started_at = self.sim.now
        self._running = thread
        self._segment_start = self.sim.now
        self._busy_stat.update(self.sim.now, 1.0)
        duration = item.remaining / self.speed
        self._completion = self.sim.schedule(
            duration,
            self._complete,
            thread,
            priority=_COMPLETION_EVENT_PRIORITY,
        )

    def _preempt(self) -> None:
        """Stop the running thread, crediting the CPU time it consumed."""
        thread = self._running
        assert thread is not None
        assert self._completion is not None
        self._completion.cancel()
        self._completion = None
        consumed = (self.sim.now - self._segment_start) * self.speed
        item = thread.head()
        item.remaining = max(0.0, item.remaining - consumed)
        self._running = None
        self._make_ready(thread)

    def _complete(self, thread: DispatchThread) -> None:
        if thread is not self._running:  # pragma: no cover - defensive
            raise SimulationError("completion fired for non-running thread")
        item = thread.queue.popleft()
        item.remaining = 0.0
        self._running = None
        self._completion = None
        self.items_completed += 1
        if thread.busy:
            self._make_ready(thread)
        # Dispatch the next thread *before* running the completion callback
        # so callbacks observe a consistent CPU state; but record idleness
        # after callbacks may have submitted new work.
        self._reschedule()
        if item.on_complete is not None:
            item.on_complete(item.payload)
            # The callback may have submitted new work; pick it up.
            self._reschedule()
        if self._running is None and not self._ready:
            self._busy_stat.update(self.sim.now, 0.0)
            for listener in self._idle_listeners:
                listener(self.sim.now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "idle" if self.idle else f"running={self._running}"
        return f"<Processor {self.name} {state}>"

"""Processor substrate: preemptive fixed-priority CPU simulation.

Each simulated machine from the paper's testbed is a
:class:`~repro.cpu.processor.Processor` that dispatches
:class:`~repro.cpu.thread.DispatchThread` work under preemptive
fixed-priority scheduling.  End-to-end Deadline Monotonic Scheduling (EDMS)
is realized by giving each subtask component's dispatch thread a priority
equal to its task's end-to-end deadline (smaller deadline = higher
priority), exactly as the paper's configuration engine assigns priorities.

The *idle detector* from the paper's Idle Resetting service maps onto a
lowest-priority thread (``priority=+inf``): its work only runs when no
application subtask is ready, which reproduces the paper's "runs when the
processor is idle" semantics without a special-case hook.
"""

from repro.cpu.processor import Processor
from repro.cpu.thread import DispatchThread, WorkItem

__all__ = ["Processor", "DispatchThread", "WorkItem"]

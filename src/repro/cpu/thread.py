"""Dispatch threads: prioritized work queues bound to a processor.

A :class:`DispatchThread` mirrors the dispatching thread inside each of the
paper's F/I Subtask and Last Subtask components: it executes work items
(subjob executions, service operations) at a fixed priority.  Lower
numerical priority values are *more* important; the End-to-end Deadline
Monotonic policy is obtained by using the task's end-to-end deadline as the
priority value.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional

from repro.errors import SimulationError


class WorkItem:
    """A unit of CPU demand executed by a :class:`DispatchThread`.

    Attributes
    ----------
    cost:
        CPU seconds required to finish the item.
    on_complete:
        Callback invoked (with ``payload``) when the item finishes.
    payload:
        Opaque data passed through to ``on_complete``.
    label:
        Human-readable label for traces.
    remaining:
        CPU seconds still owed; decreases across preemptions.
    """

    __slots__ = ("cost", "on_complete", "payload", "label", "remaining", "enqueued_at", "started_at")

    def __init__(
        self,
        cost: float,
        on_complete: Optional[Callable[[Any], None]] = None,
        payload: Any = None,
        label: str = "",
    ) -> None:
        if cost < 0:
            raise SimulationError(f"work item cost must be >= 0, got {cost}")
        self.cost = cost
        self.on_complete = on_complete
        self.payload = payload
        self.label = label
        self.remaining = cost
        self.enqueued_at: Optional[float] = None
        self.started_at: Optional[float] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WorkItem {self.label or 'anon'} cost={self.cost} remaining={self.remaining}>"


class DispatchThread:
    """A fixed-priority thread with a FIFO queue of :class:`WorkItem`.

    Threads are passive: all scheduling decisions are made by the owning
    :class:`~repro.cpu.processor.Processor`.
    """

    def __init__(self, name: str, priority: float) -> None:
        self.name = name
        self.priority = float(priority)
        self.queue: Deque[WorkItem] = deque()
        self.processor = None  # set by Processor.add_thread
        #: Monotonic sequence assigned by the processor when the thread
        #: becomes ready; used as a FIFO tie-break between equal priorities.
        self._ready_seq = 0

    @property
    def busy(self) -> bool:
        """True when the thread has queued or in-progress work."""
        return bool(self.queue)

    def head(self) -> WorkItem:
        if not self.queue:
            raise SimulationError(f"thread {self.name} has no work")
        return self.queue[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DispatchThread {self.name} prio={self.priority} depth={len(self.queue)}>"

"""One-way communication-delay models.

Figure 8 of the paper reports a one-way communication delay of mean 322 us
and max 361 us between the application processors and the admission-control
processor (measured with 1000 round trips on 100 Mbps Ethernet).
:func:`paper_calibrated_delay` reproduces that distribution shape with a
triangular model.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from repro.errors import SimulationError
from repro.sim.kernel import USEC


class DelayModel(ABC):
    """A distribution of one-way message delays, in seconds."""

    @abstractmethod
    def sample(self, rng: random.Random) -> float:
        """Draw a delay sample using ``rng``."""

    def mean(self) -> float:
        """The analytic mean of the distribution (for documentation/tests)."""
        raise NotImplementedError

    # Delay models are value objects: scenarios embedding them compare
    # (and serialize) by parameters, not identity.
    def __eq__(self, other: object) -> bool:
        return type(other) is type(self) and other.__dict__ == self.__dict__

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(sorted(self.__dict__.items()))))


class ConstantDelay(DelayModel):
    """Always the same delay."""

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        self.delay = delay

    def sample(self, rng: random.Random) -> float:
        return self.delay

    def mean(self) -> float:
        return self.delay

    def __repr__(self) -> str:
        return f"ConstantDelay({self.delay!r})"


class UniformDelay(DelayModel):
    """Uniform on ``[low, high]``."""

    def __init__(self, low: float, high: float) -> None:
        if not 0 <= low <= high:
            raise SimulationError(f"invalid uniform bounds [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def __repr__(self) -> str:
        return f"UniformDelay({self.low!r}, {self.high!r})"


class TriangularDelay(DelayModel):
    """Triangular on ``[low, high]`` with the given ``mode``."""

    def __init__(self, low: float, mode: float, high: float) -> None:
        if not 0 <= low <= mode <= high:
            raise SimulationError(
                f"invalid triangular parameters ({low}, {mode}, {high})"
            )
        self.low = low
        self.mode = mode
        self.high = high

    def sample(self, rng: random.Random) -> float:
        return rng.triangular(self.low, self.high, self.mode)

    def mean(self) -> float:
        return (self.low + self.mode + self.high) / 3.0

    def __repr__(self) -> str:
        return f"TriangularDelay({self.low!r}, {self.mode!r}, {self.high!r})"


class NormalDelay(DelayModel):
    """Normal(mu, sigma) truncated below at ``floor`` (default 0)."""

    def __init__(self, mu: float, sigma: float, floor: float = 0.0) -> None:
        if sigma < 0:
            raise SimulationError(f"sigma must be >= 0, got {sigma}")
        self.mu = mu
        self.sigma = sigma
        self.floor = floor

    def sample(self, rng: random.Random) -> float:
        return max(self.floor, rng.gauss(self.mu, self.sigma))

    def mean(self) -> float:
        # Truncation bias is negligible for the parameters we use.
        return self.mu

    def __repr__(self) -> str:
        return f"NormalDelay({self.mu!r}, {self.sigma!r}, floor={self.floor!r})"


def paper_calibrated_delay() -> TriangularDelay:
    """One-way delay calibrated to the paper's testbed (Figure 8).

    The paper measured mean 322 us and max 361 us.  A triangular
    distribution on [283 us, 361 us] with mode 322 us has mean 322 us and
    the observed maximum.
    """
    return TriangularDelay(283 * USEC, 322 * USEC, 361 * USEC)

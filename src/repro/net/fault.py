"""Deterministic network fault injection.

The :class:`FaultInjector` is the single point where chaos disturbances
(:class:`~repro.api.scenario.NodeCrash`, ``Partition``, ``DelaySpike``,
``MessageLoss``) touch the message layer.  :meth:`Network.send
<repro.net.network.Network.send>` consults it for every *remote* send and
either suppresses the message (crash / partition / loss) or stretches its
sampled delay (spike).  Local deliveries (source == destination) never
traverse the injector, matching the paper's local event channel that
bypasses the gateway.

Determinism contract
--------------------
* All fault decisions are pure functions of ``(source, destination,
  now)`` and the injector's static window configuration — except message
  loss, which draws from one named RNG stream *per directed link*
  (``"<stream>:<src>-><dst>"``), so loss on one link never perturbs
  another link's draws and a run is bit-identical for a fixed seed
  regardless of worker count or rerun.
* An injector with no faults configured (``armed`` is ``False``) makes
  no RNG draws and changes no behavior: a fault-free run with the
  injector installed is bit-identical to a run without it (the
  ``fault_injection`` benchmark section bounds the residual overhead).
* Drops are decided at *send* time: messages already in flight when a
  partition starts (or a node crashes) still deliver, like frames
  already on the wire when a switch loses a segment.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.metrics.faults import FaultMetrics
from repro.sim.rng import RngRegistry

#: Drop causes recorded into :class:`FaultMetrics.dropped_by_cause`.
DROP_CRASH = "crash"
DROP_PARTITION = "partition"
DROP_LOSS = "loss"


@dataclass(frozen=True)
class _PartitionWindow:
    start: float
    end: float
    group_a: frozenset
    group_b: frozenset

    def severs(self, source: str, destination: str, now: float) -> bool:
        if not self.start <= now < self.end:
            return False
        return (source in self.group_a and destination in self.group_b) or (
            source in self.group_b and destination in self.group_a
        )


@dataclass(frozen=True)
class _SpikeWindow:
    start: float
    end: float
    factor: float


@dataclass(frozen=True)
class _LossConfig:
    probability: float
    start: float
    end: float
    stream: str


class FaultInjector:
    """Static fault-window configuration consulted on every remote send.

    Build one with the ``add_*`` methods (or
    :func:`injector_from_disturbances`) before the run starts; windows
    are immutable thereafter, so two runs of the same scenario consult
    identical state.
    """

    def __init__(self, rngs: RngRegistry) -> None:
        self._rngs = rngs
        #: node -> list of (crash time, recovery time) windows.
        self._crashes: Dict[str, List[Tuple[float, float]]] = {}
        self._partitions: List[_PartitionWindow] = []
        self._spikes: List[_SpikeWindow] = []
        self._losses: List[_LossConfig] = []
        #: Lazily created per-directed-link loss streams, keyed by
        #: (loss stream name, source, destination).
        self._loss_rngs: Dict[Tuple[str, str, str], random.Random] = {}
        self.metrics = FaultMetrics()

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def add_crash(
        self, node: str, time: float, recovery: Optional[float] = None
    ) -> None:
        end = math.inf if recovery is None else recovery
        self._crashes.setdefault(node, []).append((time, end))

    def add_partition(
        self,
        time: float,
        heal: float,
        group_a: Tuple[str, ...],
        group_b: Tuple[str, ...],
    ) -> None:
        self._partitions.append(
            _PartitionWindow(
                start=time,
                end=heal,
                group_a=frozenset(group_a),
                group_b=frozenset(group_b),
            )
        )

    def add_delay_spike(self, time: float, until: float, factor: float) -> None:
        self._spikes.append(_SpikeWindow(start=time, end=until, factor=factor))

    def add_message_loss(
        self,
        probability: float,
        time: float = 0.0,
        until: Optional[float] = None,
        stream: str = "message_loss",
    ) -> None:
        end = math.inf if until is None else until
        self._losses.append(
            _LossConfig(probability=probability, start=time, end=end, stream=stream)
        )

    @property
    def armed(self) -> bool:
        """True when at least one fault window is configured.

        ``Network.send`` skips the injector entirely when this is
        ``False``, keeping the fault-free hot path at two attribute
        loads of overhead.
        """
        return bool(
            self._crashes or self._partitions or self._spikes or self._losses
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def node_crashed(self, node: str, now: float) -> bool:
        """True while ``node`` is inside one of its crash windows."""
        for start, end in self._crashes.get(node, ()):
            if start <= now < end:
                return True
        return False

    def delay_factor(self, now: float) -> float:
        """Product of all active spike factors (1.0 outside windows)."""
        factor = 1.0
        for spike in self._spikes:
            if spike.start <= now < spike.end:
                factor *= spike.factor
        return factor

    def on_send(
        self, source: str, destination: str, now: float
    ) -> Tuple[Optional[str], float]:
        """Decide the fate of one remote send at time ``now``.

        Returns ``(drop_cause, delay_factor)``: a non-``None`` cause
        means the message is suppressed (and the drop already counted);
        otherwise the sampled delay should be multiplied by the factor.
        Crash and partition checks run before loss draws so suppressed
        links consume no RNG draws.
        """
        if self.node_crashed(source, now) or self.node_crashed(destination, now):
            self.metrics.record_drop(DROP_CRASH)
            return DROP_CRASH, 1.0
        for window in self._partitions:
            if window.severs(source, destination, now):
                self.metrics.record_drop(DROP_PARTITION)
                return DROP_PARTITION, 1.0
        for loss in self._losses:
            if not loss.start <= now < loss.end:
                continue
            if self._link_rng(loss.stream, source, destination).random() < (
                loss.probability
            ):
                self.metrics.record_drop(DROP_LOSS)
                return DROP_LOSS, 1.0
        factor = self.delay_factor(now)
        if factor != 1.0:  # repro-lint: disable=RL004
            self.metrics.record_spike()
        return None, factor

    def _link_rng(
        self, stream: str, source: str, destination: str
    ) -> random.Random:
        key = (stream, source, destination)
        rng = self._loss_rngs.get(key)
        if rng is None:
            rng = self._rngs.stream(f"{stream}:{source}->{destination}")
            self._loss_rngs[key] = rng
        return rng


def injector_from_disturbances(disturbances, rngs: RngRegistry):
    """Build a :class:`FaultInjector` from a scenario's fault disturbances.

    Returns ``None`` when no fault disturbance is present, so callers can
    leave the network's injector slot empty on fault-free runs.  Burst
    and slowdown disturbances are ignored here — they shape the workload,
    not the network — and are handled by the session layer.
    """
    # Local import: repro.api.scenario imports the net package, so the
    # dispatch table cannot be a module-level import without a cycle.
    from repro.api.scenario import DelaySpike, MessageLoss, NodeCrash, Partition

    injector = FaultInjector(rngs)
    for disturbance in disturbances:
        if isinstance(disturbance, NodeCrash):
            injector.add_crash(
                disturbance.node, disturbance.time, disturbance.recovery
            )
        elif isinstance(disturbance, Partition):
            injector.add_partition(
                disturbance.time,
                disturbance.heal,
                disturbance.group_a,
                disturbance.group_b,
            )
        elif isinstance(disturbance, DelaySpike):
            injector.add_delay_spike(
                disturbance.time, disturbance.until, disturbance.factor
            )
        elif isinstance(disturbance, MessageLoss):
            injector.add_message_loss(
                disturbance.probability,
                disturbance.time,
                disturbance.until,
                disturbance.stream,
            )
    return injector if injector.armed else None

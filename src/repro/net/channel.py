"""Local (per-node) typed publish/subscribe event channel.

Models one of TAO's real-time event channels running on a single
processor: publishers push events by topic; all local subscribers receive
them synchronously (network delays only apply when the federation forwards
an event to another node).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

Subscriber = Callable[[Any], None]


class LocalEventChannel:
    """Topic-based pub/sub within a single node."""

    def __init__(self, node: str) -> None:
        self.node = node
        self._subscribers: Dict[str, List[Subscriber]] = {}
        self.events_delivered = 0

    def subscribe(self, topic: str, consumer: Subscriber) -> None:
        """Register ``consumer`` for all events pushed to ``topic``."""
        self._subscribers.setdefault(topic, []).append(consumer)

    def unsubscribe(self, topic: str, consumer: Subscriber) -> None:
        consumers = self._subscribers.get(topic, [])
        if consumer in consumers:
            consumers.remove(consumer)

    def subscriber_count(self, topic: str) -> int:
        return len(self._subscribers.get(topic, ()))

    def push(self, topic: str, payload: Any) -> int:
        """Deliver ``payload`` to every local subscriber of ``topic``.

        Returns the number of subscribers notified.
        """
        consumers = list(self._subscribers.get(topic, ()))
        for consumer in consumers:
            self.events_delivered += 1
            consumer(payload)
        return len(consumers)

"""Point-to-point message delivery between named nodes.

The :class:`Network` is intentionally simple — a switched LAN where every
ordered pair of distinct nodes shares one delay model — because the paper's
evaluation depends only on the one-way delay magnitude, not on topology.
Per-link overrides are supported for experiments that need asymmetric
latency (e.g. fault-injection tests).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro.errors import SimulationError
from repro.net.fault import FaultInjector
from repro.net.latency import DelayModel, paper_calibrated_delay
from repro.sim.kernel import Simulator
from repro.sim.monitor import StatSeries

#: Event priority for message deliveries: after CPU completions (50) but
#: before default events (100), so a completion at time t is visible to a
#: message arriving at the same instant.
_DELIVERY_EVENT_PRIORITY = 75


@dataclass(frozen=True)
class Message:
    """An in-flight network message (exposed to delivery callbacks)."""

    source: str
    destination: str
    topic: str
    payload: Any
    sent_at: float
    delay: float

    @property
    def delivered_at(self) -> float:
        return self.sent_at + self.delay


class Network:
    """A LAN of named nodes with stochastic one-way delays.

    Parameters
    ----------
    sim:
        The simulation kernel.
    rng:
        Random stream for delay sampling.
    default_delay:
        Delay model for all links without an override; defaults to the
        paper-calibrated triangular distribution.
    """

    def __init__(
        self,
        sim: Simulator,
        rng: random.Random,
        default_delay: Optional[DelayModel] = None,
    ) -> None:
        self.sim = sim
        self.rng = rng
        self.default_delay = default_delay or paper_calibrated_delay()
        self._nodes: Set[str] = set()
        self._link_overrides: Dict[Tuple[str, str], DelayModel] = {}
        #: One-way delay samples, for the Figure 8 "communication delay" row.
        self.delay_stats = StatSeries()
        self.messages_sent = 0
        #: Chaos layer: consulted on every remote send when installed and
        #: armed (see repro.net.fault).  None on ordinary runs.
        self.fault_injector: Optional[FaultInjector] = None

    def install_fault_injector(self, injector: Optional[FaultInjector]) -> None:
        """Install (or clear) the fault injector consulted by :meth:`send`."""
        self.fault_injector = injector

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def add_node(self, name: str) -> None:
        if name in self._nodes:
            raise SimulationError(f"node {name!r} already exists")
        self._nodes.add(name)

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    @property
    def nodes(self) -> Set[str]:
        return set(self._nodes)

    def set_link_delay(self, source: str, destination: str, model: DelayModel) -> None:
        """Override the delay model for the ordered link (source, destination)."""
        self._check(source)
        self._check(destination)
        self._link_overrides[(source, destination)] = model

    def _check(self, name: str) -> None:
        if name not in self._nodes:
            raise SimulationError(f"unknown node {name!r}")

    def _model_for(self, source: str, destination: str) -> DelayModel:
        return self._link_overrides.get((source, destination), self.default_delay)

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send(
        self,
        source: str,
        destination: str,
        topic: str,
        payload: Any,
        on_deliver: Callable[[Message], None],
    ) -> Message:
        """Send ``payload`` from ``source`` to ``destination``.

        ``on_deliver(message)`` fires after the sampled one-way delay.
        Sending to the local node delivers after zero delay (the paper's
        local event channel does not traverse the gateway) and never
        consults the fault injector.

        With an armed fault injector installed, a remote send inside a
        crash/partition/loss window is *suppressed*: it still counts in
        ``messages_sent`` (the sender paid for it) but samples no delay,
        records no delay statistic, and never delivers — the returned
        message carries an infinite delay as the dropped marker.
        """
        self._check(source)
        self._check(destination)
        if source == destination:
            delay = 0.0
        else:
            injector = self.fault_injector
            if injector is not None and injector.armed:
                cause, factor = injector.on_send(
                    source, destination, self.sim.now
                )
                if cause is not None:
                    self.messages_sent += 1
                    return Message(
                        source, destination, topic, payload,
                        self.sim.now, math.inf,
                    )
                delay = self._model_for(source, destination).sample(self.rng)
                delay *= factor
            else:
                delay = self._model_for(source, destination).sample(self.rng)
            self.delay_stats.add(delay)
        message = Message(source, destination, topic, payload, self.sim.now, delay)
        self.messages_sent += 1
        self.sim.schedule(
            delay, on_deliver, message, priority=_DELIVERY_EVENT_PRIORITY
        )
        return message

"""Network substrate: links, message delivery and event channels.

Replaces the paper's 100 Mbps switched Ethernet and TAO's federated event
channel.  The communication-delay distribution is configurable; the default
(:func:`repro.net.latency.paper_calibrated_delay`) is calibrated to the
paper's Figure 8 measurement (mean 322 us, max 361 us one-way).
"""

from repro.net.channel import LocalEventChannel
from repro.net.federation import FederatedEventChannel
from repro.net.latency import (
    ConstantDelay,
    DelayModel,
    NormalDelay,
    TriangularDelay,
    UniformDelay,
    paper_calibrated_delay,
)
from repro.net.network import Message, Network

__all__ = [
    "LocalEventChannel",
    "FederatedEventChannel",
    "ConstantDelay",
    "DelayModel",
    "NormalDelay",
    "TriangularDelay",
    "UniformDelay",
    "paper_calibrated_delay",
    "Message",
    "Network",
]

"""Federated event channel spanning all processors.

Mirrors TAO's federated event channel architecture (paper section 3): each
processor hosts a local event channel; gateways forward events between
local channels over the network.  Two delivery modes are offered:

* :meth:`FederatedEventChannel.publish` — push to *all* subscribers of a
  topic, on every node (local subscribers synchronously, remote ones after
  a sampled network delay per node).
* :meth:`FederatedEventChannel.send` — point-to-point push to subscribers
  of a topic on one destination node.  The paper's control events
  ("Task Arrive", "Accept", "Trigger", "Idle Resetting") are all
  point-to-point, so this is the mode the middleware services use.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.errors import SimulationError
from repro.net.channel import LocalEventChannel
from repro.net.network import Message, Network


class FederatedEventChannel:
    """A federation of per-node local event channels joined by gateways."""

    def __init__(self, network: Network) -> None:
        self.network = network
        self._channels: Dict[str, LocalEventChannel] = {}
        self.remote_forwards = 0

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def add_node(self, node: str) -> LocalEventChannel:
        """Create the local event channel (and gateway) for ``node``."""
        if node in self._channels:
            raise SimulationError(f"node {node!r} already federated")
        if not self.network.has_node(node):
            self.network.add_node(node)
        channel = LocalEventChannel(node)
        self._channels[node] = channel
        return channel

    def channel(self, node: str) -> LocalEventChannel:
        try:
            return self._channels[node]
        except KeyError:
            raise SimulationError(f"node {node!r} is not federated") from None

    @property
    def nodes(self) -> list:
        return sorted(self._channels)

    # ------------------------------------------------------------------
    # Subscription
    # ------------------------------------------------------------------
    def subscribe(self, node: str, topic: str, consumer: Callable[[Any], None]) -> None:
        """Subscribe ``consumer`` on ``node`` to ``topic``."""
        self.channel(node).subscribe(topic, consumer)

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def send(self, source: str, destination: str, topic: str, payload: Any) -> None:
        """Point-to-point push: deliver to ``topic`` subscribers on
        ``destination`` only, after one network hop from ``source``."""
        channel = self.channel(destination)
        if source == destination:
            channel.push(topic, payload)
            return
        self.remote_forwards += 1

        def _deliver(message: Message) -> None:
            channel.push(topic, message.payload)

        self.network.send(source, destination, topic, payload, _deliver)

    def publish(self, source: str, topic: str, payload: Any) -> None:
        """Broadcast push: deliver to ``topic`` subscribers on every node."""
        for node, channel in self._channels.items():
            if channel.subscriber_count(topic) == 0:
                continue
            if node == source:
                channel.push(topic, payload)
            else:
                self.remote_forwards += 1
                self.network.send(
                    source,
                    node,
                    topic,
                    payload,
                    lambda message, _ch=channel: _ch.push(topic, message.payload),
                )

"""Arrival-trace replay engine for admission policies.

A lightweight, simulator-free path for comparing admission policies on the
*same* arrival trace: it iterates arrivals in time order, feeds each to a
policy, and accumulates the accepted utilization ratio.  Used by the
AUB-vs-Deferrable-Server ablation benchmark and by property tests that
exercise AUB bookkeeping at high arrival volume without the cost of the
full middleware simulation.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.sched.admission import AdmissionDecision, AdmissionPolicy
from repro.sched.aub import RESERVED, AubAnalyzer, SyntheticUtilizationLedger
from repro.sched.task import Job, TaskKind


@dataclass
class ReplayResult:
    """Outcome of replaying one arrival trace through one policy."""

    arrived_jobs: int = 0
    admitted_jobs: int = 0
    arrived_utilization: float = 0.0
    admitted_utilization: float = 0.0
    decisions: List[AdmissionDecision] = field(default_factory=list)

    @property
    def accepted_utilization_ratio(self) -> float:
        if self.arrived_utilization == 0:
            return 1.0
        return self.admitted_utilization / self.arrived_utilization

    @property
    def acceptance_rate(self) -> float:
        if self.arrived_jobs == 0:
            return 1.0
        return self.admitted_jobs / self.arrived_jobs


def replay(arrivals: Iterable[Job], policy: AdmissionPolicy) -> ReplayResult:
    """Feed ``arrivals`` (any order; sorted internally) through ``policy``.

    Deadline expirations are delivered to the policy in timestamp order
    interleaved with arrivals, so policies relying on ``on_deadline`` for
    reclamation see a faithful event order.
    """
    result = ReplayResult()
    pending: List[Tuple[float, int, Job]] = []
    counter = 0
    for job in sorted(arrivals, key=lambda j: (j.arrival_time, j.task.task_id, j.index)):
        now = job.arrival_time
        while pending and pending[0][0] <= now:
            expiry, _n, expired_job = heapq.heappop(pending)
            policy.on_deadline(expired_job, expiry)
        result.arrived_jobs += 1
        result.arrived_utilization += job.utilization
        decision = policy.on_arrival(job, now)
        result.decisions.append(decision)
        if decision.admitted:
            result.admitted_jobs += 1
            result.admitted_utilization += job.utilization
            counter += 1
            heapq.heappush(pending, (job.absolute_deadline, counter, job))
    while pending:
        expiry, _n, expired_job = heapq.heappop(pending)
        policy.on_deadline(expired_job, expiry)
    return result


class AubReplayPolicy(AdmissionPolicy):
    """Pure-AUB admission policy for trace replay (AC per job, no IR/LB).

    Every job — periodic or aperiodic — is tested on arrival against
    condition (1) with contributions on home processors, which expire at
    the job's absolute deadline.  This is the `J_N_N` configuration of the
    paper reduced to its analytical core.
    """

    def __init__(self, nodes: Sequence[str]) -> None:
        self.ledger = SyntheticUtilizationLedger(nodes)
        self.analyzer = AubAnalyzer(self.ledger)

    def on_arrival(self, job: Job, now: float) -> AdmissionDecision:
        task = job.task
        assignment = task.home_assignment()
        visits = task.visited_processors(assignment)
        contribs: Dict[str, float] = {}
        for subtask in task.subtasks:
            node = assignment[subtask.index]
            contribs[node] = contribs.get(node, 0.0) + task.subtask_utilization(
                subtask.index
            )
        admitted = self.analyzer.admissible(visits, contribs, now)
        if admitted:
            for subtask in task.subtasks:
                node = assignment[subtask.index]
                self.ledger.add(
                    node,
                    (task.task_id, job.index, subtask.index),
                    task.subtask_utilization(subtask.index),
                    now,
                )
            self.analyzer.register(job.key, visits, job.absolute_deadline)
        return AdmissionDecision(
            job_key=job.key,
            admitted=admitted,
            tested_at=now,
            assignment=assignment if admitted else None,
            reason="AUB condition (1)" if admitted else "AUB condition (1) violated",
        )

    def on_deadline(self, job: Job, now: float) -> None:
        task = job.task
        for subtask in task.subtasks:
            node = job.assignment.get(subtask.index, subtask.home)
            self.ledger.remove(node, (task.task_id, job.index, subtask.index), now)
        self.analyzer.unregister(job.key)
        self.analyzer.prune(now)


def jobs_from_plan(workload, plan) -> List[Job]:
    """Materialize an :class:`~repro.workloads.arrivals.ArrivalPlan` into
    home-assigned :class:`Job` objects ready for :func:`replay`."""
    jobs: List[Job] = []
    tasks = {t.task_id: t for t in workload.tasks}
    for task_id, times in plan.times.items():
        task = tasks[task_id]
        arrival_node = task.subtasks[0].home
        for index, t in enumerate(times):
            job = Job(
                task=task, index=index, arrival_time=t, arrival_node=arrival_node
            )
            job.assignment = task.home_assignment()
            jobs.append(job)
    return jobs

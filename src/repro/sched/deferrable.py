"""Deferrable Server (DS) baseline admission policy.

The paper's earlier work (Zhang et al., RTAS 2007) compared AUB-based
admission against a Deferrable Server design (Strosnider, Lehoczky & Sha,
IEEE ToC 1995) and found comparable performance with AUB requiring simpler
middleware mechanisms — the reason the paper adopts AUB exclusively.  This
module provides a DS baseline so the ablation benchmark can reproduce that
comparison.

Model
-----
Each processor reserves a deferrable server with utilization ``Us`` (budget
``Cs = Us * Ts`` replenished every ``Ts``).  Periodic tasks are admitted per
task against a deadline-monotonic utilization bound diminished by the
server's interference; aperiodic jobs are served from the per-processor
server budget, admitted when every visited processor can supply the
subtask's demand before the job's end-to-end deadline net of demand already
committed to earlier admitted aperiodic jobs.

The budget-supply bound is the standard DS lower bound: in a window of
length ``w`` the server supplies at least ``floor(w / Ts) * Cs`` plus the
residue of the current period.  We use the slightly conservative
``max(0, floor(w / Ts)) * Cs`` form, which never over-promises.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Tuple

from repro.errors import SchedulingError
from repro.sched.admission import AdmissionDecision, AdmissionPolicy
from repro.sched.task import Job, TaskKind


def rm_utilization_bound(n: int) -> float:
    """Liu & Layland bound ``n (2^{1/n} - 1)`` for ``n`` tasks."""
    if n <= 0:
        return 1.0
    return n * (2.0 ** (1.0 / n) - 1.0)


class DeferrableServerPolicy(AdmissionPolicy):
    """DS-based admission over a set of processors.

    Parameters
    ----------
    nodes:
        Processor names.
    server_utilization:
        Us, the CPU fraction reserved for aperiodic service per processor.
    server_period:
        Ts, the replenishment period in seconds.
    """

    def __init__(
        self,
        nodes: Iterable[str],
        server_utilization: float = 0.3,
        server_period: float = 0.1,
    ) -> None:
        self.nodes = sorted(set(nodes))
        if not self.nodes:
            raise SchedulingError("deferrable server needs at least one processor")
        if not 0 < server_utilization < 1:
            raise SchedulingError(
                f"server utilization must be in (0, 1), got {server_utilization}"
            )
        if server_period <= 0:
            raise SchedulingError(
                f"server period must be > 0, got {server_period}"
            )
        self.server_utilization = server_utilization
        self.server_period = server_period
        self.budget = server_utilization * server_period
        self._periodic_util: Dict[str, float] = {n: 0.0 for n in self.nodes}
        self._periodic_count: Dict[str, int] = {n: 0 for n in self.nodes}
        #: Outstanding aperiodic demand: node -> list of (expiry, demand).
        self._committed: Dict[str, List[Tuple[float, float]]] = {
            n: [] for n in self.nodes
        }
        self._admitted_tasks: Dict[str, bool] = {}
        self.decisions: List[AdmissionDecision] = []

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _prune(self, node: str, now: float) -> None:
        self._committed[node] = [
            (expiry, demand)
            for expiry, demand in self._committed[node]
            if expiry > now
        ]

    def _supply(self, node: str, now: float, deadline: float) -> float:
        """Guaranteed server supply on ``node`` in [now, deadline], minus
        demand already committed in that window."""
        window = deadline - now
        if window <= 0:
            return 0.0
        whole_periods = math.floor(window / self.server_period)
        supply = whole_periods * self.budget
        self._prune(node, now)
        committed = sum(
            demand
            for expiry, demand in self._committed[node]
            if expiry <= deadline
        )
        return supply - committed

    def _admit_periodic(self, job: Job, now: float) -> bool:
        task = job.task
        # Hypothetically place each subtask on its home processor and run
        # the DM utilization test with the server treated as one more task.
        for subtask in task.subtasks:
            node = subtask.home
            u = subtask.execution_time / task.deadline
            n_tasks = self._periodic_count[node] + 2  # + this task + server
            bound = rm_utilization_bound(n_tasks)
            total = self._periodic_util[node] + u + self.server_utilization
            if total > bound:
                return False
        for subtask in task.subtasks:
            node = subtask.home
            self._periodic_util[node] += subtask.execution_time / task.deadline
            self._periodic_count[node] += 1
        return True

    def _admit_aperiodic(self, job: Job, now: float) -> bool:
        task = job.task
        for subtask in task.subtasks:
            node = subtask.home
            if self._supply(node, now, job.absolute_deadline) < subtask.execution_time:
                return False
        for subtask in task.subtasks:
            self._committed[subtask.home].append(
                (job.absolute_deadline, subtask.execution_time)
            )
        return True

    # ------------------------------------------------------------------
    # AdmissionPolicy interface
    # ------------------------------------------------------------------
    def on_arrival(self, job: Job, now: float) -> AdmissionDecision:
        task = job.task
        if task.kind is TaskKind.PERIODIC:
            if task.task_id in self._admitted_tasks:
                admitted = self._admitted_tasks[task.task_id]
                reason = "task decision cached (DS admits periodic tasks per task)"
            else:
                admitted = self._admit_periodic(job, now)
                self._admitted_tasks[task.task_id] = admitted
                reason = "DM utilization test with server interference"
        else:
            admitted = self._admit_aperiodic(job, now)
            reason = "server budget supply test"
        decision = AdmissionDecision(
            job_key=job.key,
            admitted=admitted,
            tested_at=now,
            assignment=task.home_assignment() if admitted else None,
            reason=reason,
        )
        self.decisions.append(decision)
        return decision

    def on_deadline(self, job: Job, now: float) -> None:
        # Committed demand is pruned lazily by expiry time; nothing to do.
        for subtask in job.task.subtasks:
            self._prune(subtask.home, now)

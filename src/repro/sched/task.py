"""End-to-end task model (paper section 2).

A **task** ``Ti`` is a chain of **subtasks** ``Ti,j`` located on different
processors; processing one event of the chain is a **subjob**, one release
of the whole task is a **job**.  A task has an end-to-end deadline; a
periodic task additionally has a period (the paper's workloads use period
= deadline).  Aperiodic tasks have no period — interarrival times can be
arbitrarily small.

Replication (criterion C3) is captured per subtask: ``replicas`` lists the
processors holding duplicates of the subtask's component, so the subtask
may execute on ``home`` or any replica when load balancing is enabled.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import TaskModelError


class TaskKind(enum.Enum):
    """Whether a task's releases are time-driven or event-driven."""

    PERIODIC = "periodic"
    APERIODIC = "aperiodic"


class JobStatus(enum.Enum):
    """Lifecycle of one job through the middleware."""

    ARRIVED = "arrived"       # held by the task effector
    RELEASED = "released"     # admitted, subjobs executing
    REJECTED = "rejected"     # admission denied (job skipped)
    COMPLETED = "completed"   # last subjob finished


@dataclass(frozen=True)
class SubtaskSpec:
    """One stage of an end-to-end task.

    Attributes
    ----------
    index:
        Zero-based position in the task chain.
    execution_time:
        Worst-case execution time of each subjob, in seconds.
    home:
        Processor the subtask is assigned to when load balancing is off.
    replicas:
        Other processors hosting duplicates of this subtask's component.
    """

    index: int
    execution_time: float
    home: str
    replicas: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.index < 0:
            raise TaskModelError(f"subtask index must be >= 0, got {self.index}")
        if self.execution_time <= 0:
            raise TaskModelError(
                f"subtask execution time must be > 0, got {self.execution_time}"
            )
        if self.home in self.replicas:
            raise TaskModelError(
                f"subtask {self.index}: home {self.home!r} repeated in replicas"
            )
        if len(set(self.replicas)) != len(self.replicas):
            raise TaskModelError(f"subtask {self.index}: duplicate replicas")

    @property
    def eligible(self) -> Tuple[str, ...]:
        """All processors this subtask may execute on (home first)."""
        return (self.home,) + self.replicas


@dataclass(frozen=True)
class TaskSpec:
    """An end-to-end task: a chain of subtasks with a deadline.

    ``phase`` is the arrival time of the first job (periodic tasks) or the
    earliest possible arrival (aperiodic tasks).
    """

    task_id: str
    kind: TaskKind
    deadline: float
    subtasks: Tuple[SubtaskSpec, ...]
    period: Optional[float] = None
    phase: float = 0.0

    def __post_init__(self) -> None:
        if not self.task_id:
            raise TaskModelError("task_id must be non-empty")
        if self.deadline <= 0:
            raise TaskModelError(
                f"task {self.task_id}: deadline must be > 0, got {self.deadline}"
            )
        if not self.subtasks:
            raise TaskModelError(f"task {self.task_id}: needs at least one subtask")
        for pos, subtask in enumerate(self.subtasks):
            if subtask.index != pos:
                raise TaskModelError(
                    f"task {self.task_id}: subtask indices must be consecutive "
                    f"from 0 (position {pos} has index {subtask.index})"
                )
        if self.kind is TaskKind.PERIODIC:
            if self.period is None or self.period <= 0:
                raise TaskModelError(
                    f"periodic task {self.task_id}: period must be > 0, "
                    f"got {self.period}"
                )
        elif self.period is not None:
            raise TaskModelError(
                f"aperiodic task {self.task_id}: must not declare a period"
            )
        if self.phase < 0:
            raise TaskModelError(
                f"task {self.task_id}: phase must be >= 0, got {self.phase}"
            )
        total_exec = sum(s.execution_time for s in self.subtasks)
        if total_exec > self.deadline:
            raise TaskModelError(
                f"task {self.task_id}: total execution time {total_exec} "
                f"exceeds end-to-end deadline {self.deadline}"
            )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def is_periodic(self) -> bool:
        return self.kind is TaskKind.PERIODIC

    @property
    def n_subtasks(self) -> int:
        return len(self.subtasks)

    def subtask_utilization(self, index: int) -> float:
        """AUB per-subtask utilization: C_ij / D_i."""
        return self.subtasks[index].execution_time / self.deadline

    @property
    def total_utilization(self) -> float:
        """Sum of subtask utilizations; the job's weight in the
        accepted-utilization-ratio metric."""
        return sum(s.execution_time for s in self.subtasks) / self.deadline

    def home_assignment(self) -> Dict[int, str]:
        """Assignment map when load balancing is disabled."""
        return {s.index: s.home for s in self.subtasks}

    def visited_processors(self, assignment: Dict[int, str]) -> List[str]:
        """The processor list V_ij the task visits under ``assignment``.

        Repeated visits to the same processor appear multiple times, per
        the AUB condition's per-stage sum.
        """
        return [assignment[s.index] for s in self.subtasks]


@dataclass
class Job:
    """One release of an end-to-end task.

    A job carries its own assignment map (subtask index -> processor)
    because load balancing per job may place different jobs of the same
    task on different processors.
    """

    task: TaskSpec
    index: int
    arrival_time: float
    arrival_node: str
    status: JobStatus = JobStatus.ARRIVED
    assignment: Dict[int, str] = field(default_factory=dict)
    released_at: Optional[float] = None
    release_node: Optional[str] = None
    completed_at: Optional[float] = None
    subjob_finish_times: Dict[int, float] = field(default_factory=dict)

    @property
    def key(self) -> Tuple[str, int]:
        """Globally unique job identity: (task id, job index)."""
        return (self.task.task_id, self.index)

    @property
    def absolute_deadline(self) -> float:
        return self.arrival_time + self.task.deadline

    @property
    def utilization(self) -> float:
        return self.task.total_utilization

    @property
    def response_time(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.arrival_time

    @property
    def met_deadline(self) -> Optional[bool]:
        if self.completed_at is None:
            return None
        return self.completed_at <= self.absolute_deadline + 1e-12

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Job {self.task.task_id}#{self.index} t={self.arrival_time:.6f} "
            f"{self.status.value}>"
        )

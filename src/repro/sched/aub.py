"""Aperiodic Utilization Bound (AUB) analysis.

Implements the schedulability machinery from Abdelzaher, Thaker & Lardieri
(ICDCS 2004) as used by the paper (section 2):

* **Synthetic utilization** ``U_j(t)``: the sum of subtask utilizations
  ``C_ij / D_i`` on processor ``j`` accrued over all *current* tasks —
  tasks released whose deadlines have not expired.  Tracked by
  :class:`SyntheticUtilizationLedger` with per-contribution lifecycle.
* **The admission condition** (paper equation 1): under EDMS, task ``Ti``
  meets its deadline if ``sum_j f(U_Vij) <= 1`` with
  ``f(u) = u * (1 - u/2) / (1 - u)``; a task or job is admitted only if the
  condition holds for every admitted task *and* the candidate
  (:meth:`AubAnalyzer.admissible`).
* **The resetting rule**: when a processor idles, contributions of
  completed subjobs may be removed without invalidating the analysis —
  the mechanism behind the paper's Idle Resetting service.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SchedulingError
from repro.sim.monitor import TimeWeightedStat

#: Numeric slack for condition comparisons, so contributions that sum to
#: exactly the bound are not rejected by floating-point noise.
EPSILON = 1e-9

#: A ledger contribution key: (task_id, job_index, subtask_index).
#: ``job_index == RESERVED`` marks a per-task reservation (AC-per-Task
#: strategy) that persists for the task's lifetime.
ContributionKey = Tuple[str, int, int]

#: Sentinel job index for per-task (lifetime) reservations.
RESERVED = -1


def aub_term(u: float) -> float:
    """The per-processor term ``f(u) = u(1 - u/2)/(1 - u)`` of condition (1).

    Defined for ``0 <= u < 1``; returns ``+inf`` for ``u >= 1`` (a
    saturated processor can never satisfy the condition).
    """
    if u < 0:
        raise SchedulingError(f"synthetic utilization cannot be negative: {u}")
    if u >= 1.0:
        return math.inf
    return u * (1.0 - u / 2.0) / (1.0 - u)


def aub_term_inverse(t: float) -> float:
    """Inverse of :func:`aub_term` on [0, 1): the utilization ``u`` with
    ``f(u) = t``.

    Solving ``u(1 - u/2) = t(1 - u)`` gives
    ``u = (1 + t) - sqrt((1 + t)^2 - 2t)``.  Used by the decentralized
    admission-control extension to convert per-task slack budgets into
    local per-processor utilization caps.
    """
    if t < 0:
        raise SchedulingError(f"term value cannot be negative: {t}")
    if math.isinf(t):
        return 1.0
    return (1.0 + t) - math.sqrt((1.0 + t) ** 2 - 2.0 * t)


def task_condition_holds(visit_utils: Sequence[float]) -> bool:
    """Check condition (1) for one task given the synthetic utilizations of
    the processors it visits (one entry per stage, repeats allowed)."""
    total = 0.0
    for u in visit_utils:
        total += aub_term(u)
        if total > 1.0 + EPSILON:
            return False
    return True


class SyntheticUtilizationLedger:
    """Tracks per-processor synthetic utilization with explicit lifecycle.

    Contributions are keyed by :data:`ContributionKey` per processor, so
    each (job, subtask) contribution can be removed exactly once by either
    deadline expiry or an idle reset — making the strategy semantics of the
    AC/IR services executable and auditable.
    """

    def __init__(self, nodes: Iterable[str], track_time: bool = False) -> None:
        node_list = list(nodes)
        if not node_list:
            raise SchedulingError("ledger needs at least one processor")
        self._contribs: Dict[str, Dict[ContributionKey, float]] = {
            n: {} for n in node_list
        }
        self._totals: Dict[str, float] = {n: 0.0 for n in node_list}
        self._stats: Optional[Dict[str, TimeWeightedStat]] = None
        if track_time:
            self._stats = {n: TimeWeightedStat() for n in node_list}

    # ------------------------------------------------------------------
    # Node access
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[str]:
        return sorted(self._contribs)

    def _node(self, node: str) -> Dict[ContributionKey, float]:
        try:
            return self._contribs[node]
        except KeyError:
            raise SchedulingError(f"unknown processor {node!r}") from None

    # ------------------------------------------------------------------
    # Contribution lifecycle
    # ------------------------------------------------------------------
    def add(self, node: str, key: ContributionKey, value: float, now: float = 0.0) -> None:
        """Accrue a contribution.  Re-adding an existing key is an error."""
        contribs = self._node(node)
        if key in contribs:
            raise SchedulingError(
                f"contribution {key} already present on {node!r}"
            )
        if value < 0:
            raise SchedulingError(f"contribution must be >= 0, got {value}")
        contribs[key] = value
        self._totals[node] += value
        if self._stats is not None:
            self._stats[node].update(now, self._totals[node])

    def remove(self, node: str, key: ContributionKey, now: float = 0.0) -> bool:
        """Remove a contribution if present; returns whether it existed.

        Removal is tolerant of absent keys because deadline expiry and idle
        resetting race benignly: whichever fires second finds the key gone.
        """
        contribs = self._node(node)
        value = contribs.pop(key, None)
        if value is None:
            return False
        self._totals[node] -= value
        if not contribs:
            # Snap to exactly zero when the last contribution leaves, so
            # float residue cannot accumulate across add/remove cycles.
            self._totals[node] = 0.0
        if self._totals[node] < 0:
            # Guard against float drift; totals are sums of removals of
            # previously added values so true negatives are impossible.
            self._totals[node] = 0.0 if self._totals[node] > -1e-12 else self._totals[node]
            if self._totals[node] < 0:
                raise SchedulingError(
                    f"negative synthetic utilization on {node!r}"
                )
        if self._stats is not None:
            self._stats[node].update(now, self._totals[node])
        return True

    def contains(self, node: str, key: ContributionKey) -> bool:
        return key in self._node(node)

    def utilization(self, node: str) -> float:
        """Current synthetic utilization U_j(t) of ``node``."""
        self._node(node)
        return self._totals[node]

    def snapshot(self) -> Dict[str, float]:
        """Copy of all current synthetic utilizations."""
        return dict(self._totals)

    def contribution_count(self, node: str) -> int:
        return len(self._node(node))

    def average_utilization(self, node: str, until: float) -> float:
        """Time-weighted average of U_j (requires ``track_time=True``)."""
        if self._stats is None:
            raise SchedulingError("ledger was not created with track_time=True")
        return self._stats[node].average(until)


class AubAnalyzer:
    """System-wide AUB admission testing over a ledger.

    The analyzer tracks the *visit lists* of all tasks that currently hold
    contributions, because condition (1) must keep holding for **every**
    admitted task when a new one is admitted.  Entries expire lazily: each
    has an expiry time (the job's absolute deadline) or ``None`` for
    lifetime reservations (AC-per-Task).
    """

    def __init__(self, ledger: SyntheticUtilizationLedger) -> None:
        self.ledger = ledger
        #: registrant key -> (visit list, expiry time or None)
        self._visits: Dict[Tuple[str, int], Tuple[List[str], Optional[float]]] = {}
        self.tests_performed = 0

    # ------------------------------------------------------------------
    # Current-task registry
    # ------------------------------------------------------------------
    def register(
        self,
        key: Tuple[str, int],
        visits: Sequence[str],
        expiry: Optional[float],
    ) -> None:
        """Record that the task/job ``key`` visits ``visits`` until ``expiry``."""
        self._visits[key] = (list(visits), expiry)

    def unregister(self, key: Tuple[str, int]) -> None:
        self._visits.pop(key, None)

    def prune(self, now: float) -> None:
        """Drop registry entries whose expiry has passed."""
        expired = [
            k
            for k, (_visits, expiry) in self._visits.items()
            if expiry is not None and expiry <= now + EPSILON
        ]
        for k in expired:
            del self._visits[k]

    @property
    def registered(self) -> int:
        return len(self._visits)

    # ------------------------------------------------------------------
    # Admission testing
    # ------------------------------------------------------------------
    def admissible(
        self,
        candidate_visits: Sequence[str],
        candidate_contribs: Mapping[str, float],
        now: float,
        exclude: Optional[Tuple[str, int]] = None,
    ) -> bool:
        """Would the system stay schedulable after adding the candidate?

        Parameters
        ----------
        candidate_visits:
            Processor list the candidate task visits (one per stage).
        candidate_contribs:
            node -> synthetic-utilization delta the candidate adds.  Deltas
            may be negative when evaluating a *relocation* of an already
            admitted task (contributions move between processors).
        now:
            Current time, used to prune expired registry entries.
        exclude:
            Registry key whose old visit list should be ignored (the task
            being relocated; its new visit list is ``candidate_visits``).
        """
        self.tests_performed += 1
        self.prune(now)
        totals = self.ledger.snapshot()
        for node, extra in candidate_contribs.items():
            totals[node] = max(0.0, totals.get(node, 0.0) + extra)
        # Every processor must stay below saturation for f(u) to be finite.
        for node in set(candidate_visits):
            if totals.get(node, 0.0) >= 1.0:
                return False
        if not task_condition_holds([totals[n] for n in candidate_visits]):
            return False
        for key, (visits, _expiry) in self._visits.items():
            if exclude is not None and key == exclude:
                continue
            if not task_condition_holds([totals.get(n, 0.0) for n in visits]):
                return False
        return True

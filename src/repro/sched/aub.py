"""Aperiodic Utilization Bound (AUB) analysis.

Implements the schedulability machinery from Abdelzaher, Thaker & Lardieri
(ICDCS 2004) as used by the paper (section 2):

* **Synthetic utilization** ``U_j(t)``: the sum of subtask utilizations
  ``C_ij / D_i`` on processor ``j`` accrued over all *current* tasks —
  tasks released whose deadlines have not expired.  Tracked by
  :class:`SyntheticUtilizationLedger` with per-contribution lifecycle.
* **The admission condition** (paper equation 1): under EDMS, task ``Ti``
  meets its deadline if ``sum_j f(U_Vij) <= 1`` with
  ``f(u) = u * (1 - u/2) / (1 - u)``; a task or job is admitted only if the
  condition holds for every admitted task *and* the candidate
  (:meth:`AubAnalyzer.admissible`).
* **The resetting rule**: when a processor idles, contributions of
  completed subjobs may be removed without invalidating the analysis —
  the mechanism behind the paper's Idle Resetting service.

Two analyzer implementations share the same API:

* :class:`AubAnalyzer` — the **incremental engine** used by the
  middleware.  It caches per-node ``f(U_j)`` terms (invalidated through a
  ledger change listener), keeps a node -> registered-tasks reverse index
  with per-task cached condition totals, and retires expired registrations
  through a min-heap instead of a linear sweep.  An admission test only
  evaluates the candidate plus the tasks that visit a node whose
  utilization would actually change.
* :class:`NaiveAubAnalyzer` — the direct transcription of condition (1)
  (snapshot the ledger, rescan every registered task).  Retained as the
  reference implementation: property tests assert the incremental engine
  makes bit-identical decisions, and the hot-path benchmark measures the
  speedup against it.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import SchedulingError
from repro.sim.monitor import TimeWeightedStat

#: Numeric slack for condition comparisons, so contributions that sum to
#: exactly the bound are not rejected by floating-point noise.
EPSILON = 1e-9

#: A ledger contribution key: (task_id, job_index, subtask_index).
#: ``job_index == RESERVED`` marks a per-task reservation (AC-per-Task
#: strategy) that persists for the task's lifetime.
ContributionKey = Tuple[str, int, int]

#: Sentinel job index for per-task (lifetime) reservations.
RESERVED = -1


def aub_term(u: float) -> float:
    """The per-processor term ``f(u) = u(1 - u/2)/(1 - u)`` of condition (1).

    Defined for ``0 <= u < 1``; returns ``+inf`` for ``u >= 1`` (a
    saturated processor can never satisfy the condition).
    """
    if u < 0:
        raise SchedulingError(f"synthetic utilization cannot be negative: {u}")
    if u >= 1.0:
        return math.inf
    return u * (1.0 - u / 2.0) / (1.0 - u)


def aub_term_inverse(t: float) -> float:
    """Inverse of :func:`aub_term` on [0, 1): the utilization ``u`` with
    ``f(u) = t``.

    Solving ``u(1 - u/2) = t(1 - u)`` gives the root
    ``u = (1 + t) - sqrt(1 + t^2)``, which cancels catastrophically for
    large ``t`` (both operands grow like ``t`` while the result approaches
    1, so the old form collapsed to exactly 1.0 around ``t ~ 1e8``).  The
    conjugate form ``u = 2t / ((1 + t) + sqrt(1 + t^2))`` only adds
    same-sign quantities, so it stays accurate — and strictly below 1 —
    over the whole domain.  ``hypot`` computes ``sqrt(1 + t^2)`` without
    overflow.  Used by the decentralized admission-control extension to
    convert per-task slack budgets into local per-processor caps.
    """
    if t < 0:
        raise SchedulingError(f"term value cannot be negative: {t}")
    if math.isinf(t):
        return 1.0
    return 2.0 * t / ((1.0 + t) + math.hypot(1.0, t))


def task_condition_holds(visit_utils: Sequence[float]) -> bool:
    """Check condition (1) for one task given the synthetic utilizations of
    the processors it visits (one entry per stage, repeats allowed)."""
    total = 0.0
    for u in visit_utils:
        total += aub_term(u)
        if total > 1.0 + EPSILON:
            return False
    return True


class SyntheticUtilizationLedger:
    """Tracks per-processor synthetic utilization with explicit lifecycle.

    Contributions are keyed by :data:`ContributionKey` per processor, so
    each (job, subtask) contribution can be removed exactly once by either
    deadline expiry or an idle reset — making the strategy semantics of the
    AC/IR services executable and auditable.

    Observers registered through :meth:`subscribe` are notified with the
    node name whenever that node's total changes; the incremental analyzer
    uses this to invalidate its cached ``f(U_j)`` terms.
    """

    def __init__(self, nodes: Iterable[str], track_time: bool = False) -> None:
        node_list = list(nodes)
        if not node_list:
            raise SchedulingError("ledger needs at least one processor")
        self._contribs: Dict[str, Dict[ContributionKey, float]] = {
            n: {} for n in node_list
        }
        self._totals: Dict[str, float] = {n: 0.0 for n in node_list}
        self._observers: List[Callable[[str], None]] = []
        self._stats: Optional[Dict[str, TimeWeightedStat]] = None
        if track_time:
            self._stats = {n: TimeWeightedStat() for n in node_list}

    # ------------------------------------------------------------------
    # Node access
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[str]:
        return sorted(self._contribs)

    def _node(self, node: str) -> Dict[ContributionKey, float]:
        try:
            return self._contribs[node]
        except KeyError:
            raise SchedulingError(f"unknown processor {node!r}") from None

    def subscribe(self, callback: Callable[[str], None]) -> None:
        """Register a change listener called with each mutated node name."""
        self._observers.append(callback)

    # ------------------------------------------------------------------
    # Contribution lifecycle
    # ------------------------------------------------------------------
    def add(self, node: str, key: ContributionKey, value: float, now: float = 0.0) -> None:
        """Accrue a contribution.  Re-adding an existing key is an error."""
        contribs = self._node(node)
        if key in contribs:
            raise SchedulingError(
                f"contribution {key} already present on {node!r}"
            )
        if value < 0:
            raise SchedulingError(f"contribution must be >= 0, got {value}")
        contribs[key] = value
        self._totals[node] += value
        if self._stats is not None:
            self._stats[node].update(now, self._totals[node])
        for observer in self._observers:
            observer(node)

    def remove(self, node: str, key: ContributionKey, now: float = 0.0) -> bool:
        """Remove a contribution if present; returns whether it existed.

        Removal is tolerant of absent keys because deadline expiry and idle
        resetting race benignly: whichever fires second finds the key gone.
        """
        contribs = self._node(node)
        value = contribs.pop(key, None)
        if value is None:
            return False
        self._totals[node] -= value
        if not contribs:
            # Snap to exactly zero when the last contribution leaves, so
            # float residue cannot accumulate across add/remove cycles.
            self._totals[node] = 0.0
        if self._totals[node] < 0:
            # Guard against float drift; totals are sums of removals of
            # previously added values so true negatives are impossible.
            self._totals[node] = 0.0 if self._totals[node] > -1e-12 else self._totals[node]
            if self._totals[node] < 0:
                raise SchedulingError(
                    f"negative synthetic utilization on {node!r}"
                )
        if self._stats is not None:
            self._stats[node].update(now, self._totals[node])
        for observer in self._observers:
            observer(node)
        return True

    def contains(self, node: str, key: ContributionKey) -> bool:
        return key in self._node(node)

    def utilization(self, node: str) -> float:
        """Current synthetic utilization U_j(t) of ``node``."""
        self._node(node)
        return self._totals[node]

    def utilization_or_zero(self, node: str) -> float:
        """Like :meth:`utilization` but 0.0 for unknown processors (the
        tolerance the admission test extends to hypothetical nodes)."""
        return self._totals.get(node, 0.0)

    def snapshot(self) -> Dict[str, float]:
        """Copy of all current synthetic utilizations."""
        return dict(self._totals)

    def contribution_count(self, node: str) -> int:
        return len(self._node(node))

    def average_utilization(self, node: str, until: float) -> float:
        """Time-weighted average of U_j (requires ``track_time=True``)."""
        if self._stats is None:
            raise SchedulingError("ledger was not created with track_time=True")
        return self._stats[node].average(until)


class AubAnalyzer:
    """System-wide AUB admission testing over a ledger — incremental engine.

    The analyzer tracks the *visit lists* of all tasks that currently hold
    contributions, because condition (1) must keep holding for **every**
    admitted task when a new one is admitted.  Three structures make the
    test incremental:

    * ``f(U_j)`` is cached per node and invalidated by the ledger's change
      listener, so unchanged processors never recompute the term;
    * a node -> registered-tasks reverse index plus cached per-task
      condition totals restrict each test to the candidate and the tasks
      visiting a node whose utilization would actually change;
    * expirations sit in a min-heap popped as time advances, replacing the
      per-test linear sweep over the whole registry.

    Decisions are bit-identical to :class:`NaiveAubAnalyzer`: hypothetical
    utilizations use the same ``max(0, U + delta)`` expression, per-task
    sums run in visit order with the same early exit, and tasks untouched
    by the candidate are covered by the cached-total invariant (their
    condition value cannot have changed since it was last computed).
    """

    def __init__(self, ledger: SyntheticUtilizationLedger) -> None:
        self.ledger = ledger
        #: registrant key -> (visit list, expiry time or None)
        self._visits: Dict[Tuple[str, int], Tuple[Sequence[str], Optional[float]]] = {}
        #: node -> keys of registered tasks visiting it
        self._by_node: Dict[str, Set[Tuple[str, int]]] = {}
        #: node -> cached f(U_j) under the current ledger state
        self._node_terms: Dict[str, float] = {}
        #: key -> cached visit-order sum of f over the task's visits
        self._task_totals: Dict[Tuple[str, int], float] = {}
        #: keys whose cached total is stale (a visited node changed)
        self._dirty: Set[Tuple[str, int]] = set()
        #: keys whose cached total exceeds the bound (normally empty; can
        #: occur when the ledger is mutated behind the analyzer's back)
        self._violating: Set[Tuple[str, int]] = set()
        #: (expiry, key) min-heap with lazy invalidation
        self._expiry_heap: List[Tuple[float, Tuple[str, int]]] = []
        self.tests_performed = 0
        ledger.subscribe(self._on_ledger_change)

    # ------------------------------------------------------------------
    # Cache maintenance
    # ------------------------------------------------------------------
    def _on_ledger_change(self, node: str) -> None:
        self._node_terms.pop(node, None)
        affected = self._by_node.get(node)
        if affected:
            self._dirty.update(affected)

    def _term(self, node: str) -> float:
        """Cached f(U_j) for ``node`` under the current ledger state."""
        term = self._node_terms.get(node)
        if term is None:
            term = aub_term(self.ledger.utilization_or_zero(node))
            self._node_terms[node] = term
        return term

    def _refresh_dirty(self) -> None:
        """Recompute cached condition totals for stale registrations."""
        while self._dirty:
            key = self._dirty.pop()
            entry = self._visits.get(key)
            if entry is None:
                continue
            total = 0.0
            for node in entry[0]:
                total += self._term(node)
            self._task_totals[key] = total
            if total > 1.0 + EPSILON:
                self._violating.add(key)
            else:
                self._violating.discard(key)

    # ------------------------------------------------------------------
    # Current-task registry
    # ------------------------------------------------------------------
    def register(
        self,
        key: Tuple[str, int],
        visits: Sequence[str],
        expiry: Optional[float],
    ) -> None:
        """Record that the task/job ``key`` visits ``visits`` until ``expiry``.

        The analyzer takes ownership of ``visits`` (callers pass freshly
        built lists); re-registering a key replaces its previous entry.
        """
        old = self._visits.get(key)
        if old is not None:
            self._detach(key, old[0])
        self._visits[key] = (visits, expiry)
        by_node = self._by_node
        for node in visits:
            keys = by_node.get(node)
            if keys is None:
                by_node[node] = {key}
            else:
                keys.add(key)
        if expiry is not None:
            heapq.heappush(self._expiry_heap, (expiry, key))
        self._dirty.add(key)

    def _detach(self, key: Tuple[str, int], visits: Sequence[str]) -> None:
        by_node = self._by_node
        for node in visits:
            keys = by_node.get(node)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del by_node[node]
        self._task_totals.pop(key, None)
        self._dirty.discard(key)
        self._violating.discard(key)

    def unregister(self, key: Tuple[str, int]) -> None:
        entry = self._visits.pop(key, None)
        if entry is not None:
            self._detach(key, entry[0])

    def prune(self, now: float) -> None:
        """Retire registry entries whose expiry has passed.

        Stale heap entries (keys re-registered with a different expiry, or
        already unregistered) are skipped lazily on pop.
        """
        heap = self._expiry_heap
        limit = now + EPSILON
        while heap and heap[0][0] <= limit:
            expiry, key = heapq.heappop(heap)
            entry = self._visits.get(key)
            if entry is not None and entry[1] == expiry:
                del self._visits[key]
                self._detach(key, entry[0])

    @property
    def registered(self) -> int:
        return len(self._visits)

    # ------------------------------------------------------------------
    # Admission testing
    # ------------------------------------------------------------------
    def admissible(
        self,
        candidate_visits: Sequence[str],
        candidate_contribs: Mapping[str, float],
        now: float,
        exclude: Optional[Tuple[str, int]] = None,
    ) -> bool:
        """Would the system stay schedulable after adding the candidate?

        Parameters
        ----------
        candidate_visits:
            Processor list the candidate task visits (one per stage).
        candidate_contribs:
            node -> synthetic-utilization delta the candidate adds.  Deltas
            may be negative when evaluating a *relocation* of an already
            admitted task (contributions move between processors).
        now:
            Current time; expired registry entries are retired first.
        exclude:
            Registry key whose old visit list should be ignored (the task
            being relocated; its new visit list is ``candidate_visits``).
        """
        self.tests_performed += 1
        self.prune(now)
        ledger = self.ledger
        # Hypothetical post-admission utilization on each touched node.
        hyp: Dict[str, float] = {}
        for node, extra in candidate_contribs.items():
            hyp[node] = max(0.0, ledger.utilization_or_zero(node) + extra)
        # Every processor must stay below saturation for f(u) to be finite.
        for node in set(candidate_visits):
            u = hyp.get(node)
            if u is None:
                u = ledger.utilization_or_zero(node)
            if u >= 1.0:
                return False
        # The candidate's own condition.
        total = 0.0
        for node in candidate_visits:
            u = hyp.get(node)
            total += self._term(node) if u is None else aub_term(u)
            if total > 1.0 + EPSILON:
                return False
        # Registered tasks: only those visiting a node whose utilization
        # would actually change can see their condition value move.
        self._refresh_dirty()
        affected: Set[Tuple[str, int]] = set()
        by_node = self._by_node
        for node, extra in candidate_contribs.items():
            if extra == 0.0:
                continue
            keys = by_node.get(node)
            if keys:
                affected.update(keys)
        if self._violating:
            # A task already over the bound fails the test no matter what
            # the candidate changes elsewhere (mirrors the full rescan).
            for key in self._violating:
                if key != exclude and key not in affected:
                    return False
        for key in affected:
            if key == exclude:
                continue
            visits = self._visits[key][0]
            total = 0.0
            for node in visits:
                u = hyp.get(node)
                total += self._term(node) if u is None else aub_term(u)
                if total > 1.0 + EPSILON:
                    return False
        return True


class NaiveAubAnalyzer:
    """Reference implementation: full-registry rescan per admission test.

    This is the direct transcription of condition (1): snapshot the whole
    ledger, apply the candidate's deltas, then re-evaluate every registered
    task.  O(tasks * visits) per test plus an O(tasks) expiry sweep —
    kept verbatim so property tests can assert the incremental
    :class:`AubAnalyzer` agrees decision-for-decision, and so the hot-path
    benchmark can quantify the speedup.
    """

    def __init__(self, ledger: SyntheticUtilizationLedger) -> None:
        self.ledger = ledger
        self._visits: Dict[Tuple[str, int], Tuple[List[str], Optional[float]]] = {}
        self.tests_performed = 0

    def register(
        self,
        key: Tuple[str, int],
        visits: Sequence[str],
        expiry: Optional[float],
    ) -> None:
        self._visits[key] = (list(visits), expiry)

    def unregister(self, key: Tuple[str, int]) -> None:
        self._visits.pop(key, None)

    def prune(self, now: float) -> None:
        expired = [
            k
            for k, (_visits, expiry) in self._visits.items()
            if expiry is not None and expiry <= now + EPSILON
        ]
        for k in expired:
            del self._visits[k]

    @property
    def registered(self) -> int:
        return len(self._visits)

    def admissible(
        self,
        candidate_visits: Sequence[str],
        candidate_contribs: Mapping[str, float],
        now: float,
        exclude: Optional[Tuple[str, int]] = None,
    ) -> bool:
        self.tests_performed += 1
        self.prune(now)
        totals = self.ledger.snapshot()
        for node, extra in candidate_contribs.items():
            totals[node] = max(0.0, totals.get(node, 0.0) + extra)
        for node in set(candidate_visits):
            if totals.get(node, 0.0) >= 1.0:
                return False
        if not task_condition_holds([totals[n] for n in candidate_visits]):
            return False
        for key, (visits, _expiry) in self._visits.items():
            if exclude is not None and key == exclude:
                continue
            if not task_condition_holds([totals.get(n, 0.0) for n in visits]):
                return False
        return True

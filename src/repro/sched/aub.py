"""Aperiodic Utilization Bound (AUB) analysis.

Implements the schedulability machinery from Abdelzaher, Thaker & Lardieri
(ICDCS 2004) as used by the paper (section 2):

* **Synthetic utilization** ``U_j(t)``: the sum of subtask utilizations
  ``C_ij / D_i`` on processor ``j`` accrued over all *current* tasks —
  tasks released whose deadlines have not expired.  Tracked by
  :class:`SyntheticUtilizationLedger` with per-contribution lifecycle.
* **The admission condition** (paper equation 1): under EDMS, task ``Ti``
  meets its deadline if ``sum_j f(U_Vij) <= 1`` with
  ``f(u) = u * (1 - u/2) / (1 - u)``; a task or job is admitted only if the
  condition holds for every admitted task *and* the candidate
  (:meth:`AubAnalyzer.admissible`).
* **The resetting rule**: when a processor idles, contributions of
  completed subjobs may be removed without invalidating the analysis —
  the mechanism behind the paper's Idle Resetting service.

The ledger is **sharded per processor**: each node owns an independent
:class:`_LedgerShard` (its own contribution map, cached total, optional
time-weighted statistic), so contributions on one processor never touch
another processor's structures and 1000-processor deployments stop
serializing on one shared dict.  :meth:`SyntheticUtilizationLedger.add_batch`
and :meth:`~SyntheticUtilizationLedger.remove_batch` apply a group of
contributions with **one observer notification per touched node** instead
of one per contribution — the mechanism behind batched burst admission
and idle-period reclaim coalescing.

Two analyzer implementations share the same API:

* :class:`AubAnalyzer` — the **incremental engine** used by the
  middleware.  It caches per-node ``f(U_j)`` terms (invalidated through a
  ledger change listener), keeps a node -> registered-tasks reverse index
  with per-task cached condition totals, and retires expired registrations
  through a min-heap instead of a linear sweep.  An admission test only
  evaluates the candidate plus the tasks that visit a node whose
  utilization would actually change.  :meth:`AubAnalyzer.admissible_batch`
  admits a whole burst of simultaneous arrivals in one call: one prune,
  one dirty refresh, shared hypothetical per-node totals, and
  O(changed-nodes) bookkeeping per accepted candidate.
  :meth:`AubAnalyzer.batch_session` opens the same overlay machinery
  incrementally (:class:`BatchAdmissionSession`) for bursts whose
  candidates are built on the fly — load-balanced placement plans that
  must score nodes against the placements accepted before them.
* :class:`NaiveAubAnalyzer` — the direct transcription of condition (1)
  (snapshot the ledger, rescan every registered task).  Retained as the
  reference implementation: property tests assert the incremental engine
  makes bit-identical decisions — per call *and* per batch — and the
  hot-path benchmark measures the speedup against it.

When numpy is available the per-node ``f(U_j)`` term math (the batch
screen's worst-case terms and the dirty-refresh term fill) runs as one
vectorized pass over the ledger's per-node totals (:func:`aub_terms_bulk`);
the pure-python loop is retained when numpy is absent or
``REPRO_PURE_PYTHON`` is set, and both produce bit-identical floats.
"""

from __future__ import annotations

import heapq
import math
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.env import pure_python_forced, sanitize_enabled
from repro.errors import SchedulingError
from repro.sanitize import LedgerShadow, SanitizeViolation
from repro.sim.monitor import TimeWeightedStat

# numpy is an optional accelerator (the ``fast`` extra): the per-node
# f(U) term math vectorizes over the sharded ledger's contiguous totals.
# Setting REPRO_PURE_PYTHON forces the scalar path even when numpy is
# installed, so both paths can be exercised on one machine; results are
# bit-identical either way (see ``aub_terms_bulk``).
try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None
if pure_python_forced():
    _np = None

#: Below this many values the scalar loop beats the array round-trip.
_BULK_MIN = 16

#: Numeric slack for condition comparisons, so contributions that sum to
#: exactly the bound are not rejected by floating-point noise.
EPSILON = 1e-9

#: Safety margin of the batch screen (see ``admissible_batch``): a task
#: is exempted from per-candidate re-evaluation only if its condition
#: under the burst's worst-case totals stays this far *below* the
#: admission bound.  The margin dwarfs the ulp-scale wobble of float
#: monotonicity (~1e-15 for realistic visit lists), so tasks anywhere
#: near the boundary take the exact per-candidate path and decisions
#: remain bit-identical to the sequential oracle.
SCREEN_GUARD = 1e-12

#: A ledger contribution key: (task_id, job_index, subtask_index).
#: ``job_index == RESERVED`` marks a per-task reservation (AC-per-Task
#: strategy) that persists for the task's lifetime.
ContributionKey = Tuple[str, int, int]

#: Sentinel job index for per-task (lifetime) reservations.
RESERVED = -1


def aub_term(u: float) -> float:
    """The per-processor term ``f(u) = u(1 - u/2)/(1 - u)`` of condition (1).

    Defined for ``0 <= u < 1``; returns ``+inf`` for ``u >= 1`` (a
    saturated processor can never satisfy the condition).
    """
    if u < 0:
        raise SchedulingError(f"synthetic utilization cannot be negative: {u}")
    if u >= 1.0:
        return math.inf
    return u * (1.0 - u / 2.0) / (1.0 - u)


def aub_term_inverse(t: float) -> float:
    """Inverse of :func:`aub_term` on [0, 1): the utilization ``u`` with
    ``f(u) = t``.

    Solving ``u(1 - u/2) = t(1 - u)`` gives the root
    ``u = (1 + t) - sqrt(1 + t^2)``, which cancels catastrophically for
    large ``t`` (both operands grow like ``t`` while the result approaches
    1, so the old form collapsed to exactly 1.0 around ``t ~ 1e8``).  The
    conjugate form ``u = 2t / ((1 + t) + sqrt(1 + t^2))`` only adds
    same-sign quantities, so it stays accurate — and strictly below 1 —
    over the whole domain.  ``hypot`` computes ``sqrt(1 + t^2)`` without
    overflow.  Used by the decentralized admission-control extension to
    convert per-task slack budgets into local per-processor caps.
    """
    if t < 0:
        raise SchedulingError(f"term value cannot be negative: {t}")
    if math.isinf(t):
        return 1.0
    return 2.0 * t / ((1.0 + t) + math.hypot(1.0, t))


def _aub_terms_python(values: Sequence[float]) -> List[float]:
    return [aub_term(u) for u in values]


def _aub_terms_numpy(values: Sequence[float]) -> List[float]:
    arr = _np.asarray(values, dtype=_np.float64)
    if (arr < 0.0).any():
        bad = float(arr[arr < 0.0][0])
        raise SchedulingError(f"synthetic utilization cannot be negative: {bad}")
    saturated = arr >= 1.0
    any_saturated = bool(saturated.any())
    # Saturated entries are masked to 0 before the division (their result
    # is overwritten with +inf), so no divide-by-zero is ever evaluated.
    safe = _np.where(saturated, 0.0, arr) if any_saturated else arr
    terms = safe * (1.0 - safe / 2.0) / (1.0 - safe)
    if any_saturated:
        terms[saturated] = _np.inf
    return terms.tolist()


def aub_terms_bulk(values: Sequence[float]) -> List[float]:
    """Vectorized :func:`aub_term` over many utilizations.

    Elementwise IEEE-754 double arithmetic evaluates the same expression
    ``u * (1 - u/2) / (1 - u)`` the scalar function uses, so the results
    are **bit-identical** to ``[aub_term(u) for u in values]`` — numpy
    only changes how fast the terms are produced, never their values.
    Falls back to the scalar loop when numpy is absent (or disabled via
    ``REPRO_PURE_PYTHON``) or when the input is too small to amortize the
    array round-trip.
    """
    if _np is None or len(values) < _BULK_MIN:
        return _aub_terms_python(values)
    return _aub_terms_numpy(values)


def task_condition_holds(visit_utils: Sequence[float]) -> bool:
    """Check condition (1) for one task given the synthetic utilizations of
    the processors it visits (one entry per stage, repeats allowed)."""
    total = 0.0
    for u in visit_utils:
        total += aub_term(u)
        if total > 1.0 + EPSILON:
            return False
    return True


class _LedgerShard:
    """One processor's slice of the ledger.

    Each shard owns its contribution map, its cached total, and (when time
    tracking is on) its time-weighted statistic.  A mutation on one node
    therefore touches only that node's shard — no shared structure is
    written on the hot path, which is what lets 1000-processor deployments
    scale without serializing on one dict.
    """

    __slots__ = ("contribs", "total", "stat")

    def __init__(self, stat: Optional[TimeWeightedStat] = None) -> None:
        self.contribs: Dict[ContributionKey, float] = {}
        self.total: float = 0.0
        self.stat = stat


class SyntheticUtilizationLedger:
    """Tracks per-processor synthetic utilization with explicit lifecycle.

    Contributions are keyed by :data:`ContributionKey` per processor, so
    each (job, subtask) contribution can be removed exactly once by either
    deadline expiry or an idle reset — making the strategy semantics of the
    AC/IR services executable and auditable.  Storage is sharded per node
    (:class:`_LedgerShard`).

    Observers registered through :meth:`subscribe` are notified with the
    node name whenever that node's total changes; the incremental analyzer
    uses this to invalidate its cached ``f(U_j)`` terms.  The batch
    mutators (:meth:`add_batch`, :meth:`remove_batch`) notify **once per
    touched node** — equivalent for any idempotent invalidation listener,
    and the reason a burst commit or an idle-period reclaim costs one AUB
    refresh instead of one per subjob.
    """

    def __init__(self, nodes: Iterable[str], track_time: bool = False) -> None:
        node_list = list(nodes)
        if not node_list:
            raise SchedulingError("ledger needs at least one processor")
        self._shards: Dict[str, _LedgerShard] = {
            n: _LedgerShard(TimeWeightedStat() if track_time else None)
            for n in node_list
        }
        self._observers: List[Callable[[str], None]] = []
        self._track_time = track_time
        # REPRO_SANITIZE=1 (checked once, at construction): mirror every
        # mutation into an unsharded shadow and cross-check each touched
        # shard against it — identical keys, identical values, total
        # within float-drift tolerance of an order-independent fsum.
        self._shadow: Optional[LedgerShadow] = (
            LedgerShadow() if sanitize_enabled() else None
        )

    # ------------------------------------------------------------------
    # Node access
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[str]:
        return sorted(self._shards)

    def _shard(self, node: str) -> _LedgerShard:
        try:
            return self._shards[node]
        except KeyError:
            raise SchedulingError(f"unknown processor {node!r}") from None

    def subscribe(self, callback: Callable[[str], None]) -> None:
        """Register a change listener called with each mutated node name."""
        self._observers.append(callback)

    # ------------------------------------------------------------------
    # Contribution lifecycle
    # ------------------------------------------------------------------
    def add(self, node: str, key: ContributionKey, value: float, now: float = 0.0) -> None:
        """Accrue a contribution.  Re-adding an existing key is an error."""
        shard = self._shard(node)
        self._add_to_shard(shard, node, key, value)
        if self._shadow is not None:
            self._shadow.add(node, key, value)
            self._shadow.verify_shard(node, shard.contribs, shard.total)
        if shard.stat is not None:
            shard.stat.update(now, shard.total)
        for observer in self._observers:
            observer(node)

    @staticmethod
    def _add_to_shard(
        shard: _LedgerShard, node: str, key: ContributionKey, value: float
    ) -> None:
        contribs = shard.contribs
        if key in contribs:
            raise SchedulingError(
                f"contribution {key} already present on {node!r}"
            )
        if value < 0:
            raise SchedulingError(f"contribution must be >= 0, got {value}")
        contribs[key] = value
        shard.total += value

    def remove(self, node: str, key: ContributionKey, now: float = 0.0) -> bool:
        """Remove a contribution if present; returns whether it existed.

        Removal is tolerant of absent keys because deadline expiry and idle
        resetting race benignly: whichever fires second finds the key gone.
        """
        shard = self._shard(node)
        if not self._remove_from_shard(shard, node, key):
            return False
        if self._shadow is not None:
            self._shadow.remove(node, key)
            self._shadow.verify_shard(node, shard.contribs, shard.total)
        if shard.stat is not None:
            shard.stat.update(now, shard.total)
        for observer in self._observers:
            observer(node)
        return True

    @staticmethod
    def _remove_from_shard(
        shard: _LedgerShard, node: str, key: ContributionKey
    ) -> bool:
        value = shard.contribs.pop(key, None)
        if value is None:
            return False
        shard.total -= value
        if not shard.contribs:
            # Snap to exactly zero when the last contribution leaves, so
            # float residue cannot accumulate across add/remove cycles.
            shard.total = 0.0
        if shard.total < 0:
            # Guard against float drift; totals are sums of removals of
            # previously added values so true negatives are impossible.
            if shard.total > -1e-12:
                shard.total = 0.0
            else:
                raise SchedulingError(
                    f"negative synthetic utilization on {node!r}"
                )
        return True

    # ------------------------------------------------------------------
    # Batched lifecycle (one notification per touched node)
    # ------------------------------------------------------------------
    def add_batch(
        self,
        entries: Iterable[Tuple[str, ContributionKey, float]],
        now: float = 0.0,
    ) -> None:
        """Accrue many contributions at once.

        ``entries`` is applied **in order** (per-stage float accumulation
        is kept bit-identical to a loop of :meth:`add` calls); observers
        and time statistics see one update per touched node instead of one
        per contribution.
        """
        touched: Dict[str, _LedgerShard] = {}
        try:
            for node, key, value in entries:
                shard = touched.get(node)
                if shard is None:
                    shard = self._shard(node)
                    touched[node] = shard
                self._add_to_shard(shard, node, key, value)
                if self._shadow is not None:
                    self._shadow.add(node, key, value)
        finally:
            self._notify_touched(touched, now)

    def remove_batch(
        self,
        entries: Iterable[Tuple[str, ContributionKey]],
        now: float = 0.0,
    ) -> int:
        """Remove many contributions at once; returns how many existed.

        Tolerant of absent keys like :meth:`remove`; nodes where nothing
        was actually removed are not notified.
        """
        removed = 0
        touched: Dict[str, _LedgerShard] = {}
        try:
            for node, key in entries:
                shard = touched.get(node)
                known = shard is not None
                if not known:
                    shard = self._shard(node)
                if self._remove_from_shard(shard, node, key):
                    removed += 1
                    if self._shadow is not None:
                        self._shadow.remove(node, key)
                    if not known:
                        touched[node] = shard
        finally:
            self._notify_touched(touched, now)
        return removed

    def _notify_touched(
        self, touched: Dict[str, _LedgerShard], now: float
    ) -> None:
        for node, shard in touched.items():
            if self._shadow is not None:
                self._shadow.verify_shard(node, shard.contribs, shard.total)
            if shard.stat is not None:
                shard.stat.update(now, shard.total)
            for observer in self._observers:
                observer(node)

    def contains(self, node: str, key: ContributionKey) -> bool:
        return key in self._shard(node).contribs

    def utilization(self, node: str) -> float:
        """Current synthetic utilization U_j(t) of ``node``."""
        return self._shard(node).total

    def utilization_or_zero(self, node: str) -> float:
        """Like :meth:`utilization` but 0.0 for unknown processors (the
        tolerance the admission test extends to hypothetical nodes)."""
        shard = self._shards.get(node)
        return shard.total if shard is not None else 0.0

    def snapshot(self) -> Dict[str, float]:
        """Copy of all current synthetic utilizations."""
        return {node: shard.total for node, shard in self._shards.items()}

    def contribution_count(self, node: str) -> int:
        return len(self._shard(node).contribs)

    def average_utilization(self, node: str, until: float) -> float:
        """Time-weighted average of U_j (requires ``track_time=True``)."""
        if not self._track_time:
            raise SchedulingError("ledger was not created with track_time=True")
        return self._shard(node).stat.average(until)


class BatchCandidate:
    """One arrival in a burst submitted to ``admissible_batch``.

    Parameters
    ----------
    visits:
        Processor list the candidate visits (one entry per stage).
    stage_contribs:
        The per-stage ``(node, utilization)`` contributions **in commit
        order**.  Kept separate from the aggregated ``contribs`` mapping
        because the ledger accrues stage values one at a time and float
        addition is not associative — replaying the exact commit order is
        what keeps batch decisions bit-identical to the sequential
        test-and-commit path.
    key:
        Optional registry key carried for the caller's bookkeeping;
        ``admissible_batch`` itself never registers anything.

    Batch candidates model *arrivals*, so stage contributions must be
    non-negative (relocations with mixed-sign deltas go through the
    per-candidate :meth:`AubAnalyzer.admissible` path).
    """

    __slots__ = ("visits", "stage_contribs", "contribs", "key")

    def __init__(
        self,
        visits: Sequence[str],
        stage_contribs: Sequence[Tuple[str, float]],
        key: Optional[Tuple[str, int]] = None,
    ) -> None:
        self.visits: Tuple[str, ...] = tuple(visits)
        self.stage_contribs: Tuple[Tuple[str, float], ...] = tuple(
            (node, float(value)) for node, value in stage_contribs
        )
        contribs: Dict[str, float] = {}
        for node, value in self.stage_contribs:
            if value < 0:
                raise SchedulingError(
                    f"batch candidates are arrivals; stage contribution on "
                    f"{node!r} must be >= 0, got {value}"
                )
            # The same aggregation expression the admission controller
            # uses, so the tested deltas are the same floats.
            contribs[node] = contribs.get(node, 0.0) + value
        self.contribs = contribs
        self.key = key


class AubAnalyzer:
    """System-wide AUB admission testing over a ledger — incremental engine.

    The analyzer tracks the *visit lists* of all tasks that currently hold
    contributions, because condition (1) must keep holding for **every**
    admitted task when a new one is admitted.  Three structures make the
    test incremental:

    * ``f(U_j)`` is cached per node and invalidated by the ledger's change
      listener, so unchanged processors never recompute the term;
    * a node -> registered-tasks reverse index plus cached per-task
      condition totals restrict each test to the candidate and the tasks
      visiting a node whose utilization would actually change;
    * expirations sit in a min-heap popped as time advances, replacing the
      per-test linear sweep over the whole registry (the heap is compacted
      during :meth:`prune` when lazily-invalidated stale entries outnumber
      live ones).

    Decisions are bit-identical to :class:`NaiveAubAnalyzer`: hypothetical
    utilizations use the same ``max(0, U + delta)`` expression, per-task
    sums run in visit order with the same early exit, and tasks untouched
    by the candidate are covered by the cached-total invariant (their
    condition value cannot have changed since it was last computed).

    :meth:`admissible_batch` extends the same machinery to a burst of
    simultaneous arrivals: prune and dirty-refresh run once, hypothetical
    per-node totals are shared across the burst, and each accepted
    candidate costs only O(changed nodes) overlay updates — no ledger
    mutation, no cache invalidation, no per-candidate refresh storm.
    """

    #: Compact the expiry heap only beyond this size (below it, lazy
    #: skipping is cheaper than rebuilding).
    _HEAP_COMPACT_MIN = 64

    def __init__(self, ledger: SyntheticUtilizationLedger) -> None:
        self.ledger = ledger
        #: registrant key -> (visit list, expiry time or None)
        self._visits: Dict[Tuple[str, int], Tuple[Sequence[str], Optional[float]]] = {}
        #: node -> keys of registered tasks visiting it
        self._by_node: Dict[str, Set[Tuple[str, int]]] = {}
        #: node -> cached f(U_j) under the current ledger state
        self._node_terms: Dict[str, float] = {}
        #: key -> cached visit-order sum of f over the task's visits
        self._task_totals: Dict[Tuple[str, int], float] = {}
        #: keys whose cached total is stale (a visited node changed)
        self._dirty: Set[Tuple[str, int]] = set()
        #: keys whose cached total exceeds the bound (normally empty; can
        #: occur when the ledger is mutated behind the analyzer's back)
        self._violating: Set[Tuple[str, int]] = set()
        #: (expiry, key) min-heap with lazy invalidation
        self._expiry_heap: List[Tuple[float, Tuple[str, int]]] = []
        #: Upper bound on stale heap entries (re-registered or
        #: unregistered keys whose old entry still sits in the heap);
        #: drives compaction in :meth:`prune`.
        self._expiry_stale = 0
        self.tests_performed = 0
        #: Burst-admission sessions opened (observability; see
        #: MiddlewareSystem._publish_final_metrics).
        self.batch_sessions = 0
        # REPRO_SANITIZE=1 (checked once, at construction): audit the
        # caches against a fresh recompute at every admission entry point.
        self._sanitize = sanitize_enabled()
        ledger.subscribe(self._on_ledger_change)

    # ------------------------------------------------------------------
    # Cache maintenance
    # ------------------------------------------------------------------
    def _on_ledger_change(self, node: str) -> None:
        self._node_terms.pop(node, None)
        affected = self._by_node.get(node)
        if affected:
            self._dirty.update(affected)

    def _term(self, node: str) -> float:
        """Cached f(U_j) for ``node`` under the current ledger state."""
        term = self._node_terms.get(node)
        if term is None:
            term = aub_term(self.ledger.utilization_or_zero(node))
            self._node_terms[node] = term
        return term

    def _prime_node_terms(self, nodes: Iterable[str]) -> None:
        """Batch-fill the ``f(U_j)`` cache for the given nodes.

        One :func:`aub_terms_bulk` pass (vectorized under numpy) computes
        every term missing from the cache; subsequent :meth:`_term` calls
        are pure cache hits.  The cached values are bit-identical to the
        ones the scalar path would have produced one at a time.
        """
        node_terms = self._node_terms
        missing: List[str] = []
        seen: Set[str] = set()
        for node in nodes:
            if node not in node_terms and node not in seen:
                seen.add(node)
                missing.append(node)
        if not missing:
            return
        ledger = self.ledger
        utils = [ledger.utilization_or_zero(node) for node in missing]
        for node, term in zip(missing, aub_terms_bulk(utils)):
            node_terms[node] = term

    def _refresh_dirty(self) -> None:
        """Recompute cached condition totals for stale registrations."""
        if len(self._dirty) >= _BULK_MIN:
            # Vectorized term refresh: fill the f(U_j) cache for every
            # node the stale registrations visit in one bulk pass, so the
            # per-task loop below never computes a term scalar-by-scalar.
            visits = self._visits
            self._prime_node_terms(
                node
                for key in self._dirty
                for entry in (visits.get(key),)
                if entry is not None
                for node in entry[0]
            )
        while self._dirty:
            key = self._dirty.pop()
            entry = self._visits.get(key)
            if entry is None:
                continue
            total = 0.0
            for node in entry[0]:
                total += self._term(node)
            self._task_totals[key] = total
            if total > 1.0 + EPSILON:
                self._violating.add(key)
            else:
                self._violating.discard(key)

    def _sanitize_audit_caches(self) -> None:
        """Cached ``f(U_j)`` terms and clean task totals vs a fresh
        recompute, bit for bit (``REPRO_SANITIZE=1`` only).

        The incremental engine's correctness rests on one invariant: a
        cache entry either matches what a from-scratch evaluation of the
        current ledger state would produce, or it is marked dirty.  This
        audit recomputes every cached per-node term with :func:`aub_term`
        and every clean cached per-task condition total in visit order —
        the exact floats :meth:`_term` / :meth:`_refresh_dirty` would
        produce — and fails on the first mismatch.
        """
        ledger = self.ledger
        for node in sorted(self._node_terms):
            cached = self._node_terms[node]
            fresh = aub_term(ledger.utilization_or_zero(node))
            if cached != fresh:
                raise SanitizeViolation(
                    f"sanitize: analyzer cached f(U) term for node "
                    f"{node!r} is {cached!r} but the ledger state gives "
                    f"{fresh!r} — a ledger mutation bypassed the change "
                    "listener"
                )
        for key in sorted(self._task_totals):
            if key in self._dirty:
                continue
            entry = self._visits.get(key)
            if entry is None:
                continue
            fresh_total = 0.0
            for node in entry[0]:
                fresh_total += aub_term(ledger.utilization_or_zero(node))
            cached_total = self._task_totals[key]
            if cached_total != fresh_total:
                raise SanitizeViolation(
                    f"sanitize: analyzer cached condition total for "
                    f"registration {key!r} is {cached_total!r} but a "
                    f"visit-order recompute gives {fresh_total!r} — the "
                    "entry should have been marked dirty"
                )

    # ------------------------------------------------------------------
    # Current-task registry
    # ------------------------------------------------------------------
    def register(
        self,
        key: Tuple[str, int],
        visits: Sequence[str],
        expiry: Optional[float],
    ) -> None:
        """Record that the task/job ``key`` visits ``visits`` until ``expiry``.

        The analyzer takes ownership of ``visits`` (callers pass freshly
        built lists); re-registering a key replaces its previous entry.
        """
        old = self._visits.get(key)
        if old is not None:
            if old[1] is not None:
                # The old registration's heap entry is now stale.
                self._expiry_stale += 1
            self._detach(key, old[0])
        self._visits[key] = (visits, expiry)
        by_node = self._by_node
        for node in visits:
            keys = by_node.get(node)
            if keys is None:
                by_node[node] = {key}
            else:
                keys.add(key)
        if expiry is not None:
            heapq.heappush(self._expiry_heap, (expiry, key))
        self._dirty.add(key)

    def _detach(self, key: Tuple[str, int], visits: Sequence[str]) -> None:
        by_node = self._by_node
        for node in visits:
            keys = by_node.get(node)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del by_node[node]
        self._task_totals.pop(key, None)
        self._dirty.discard(key)
        self._violating.discard(key)

    def unregister(self, key: Tuple[str, int]) -> None:
        entry = self._visits.pop(key, None)
        if entry is not None:
            if entry[1] is not None:
                # Its heap entry outlives the registration — now stale.
                self._expiry_stale += 1
            self._detach(key, entry[0])

    def prune(self, now: float) -> None:
        """Retire registry entries whose expiry has passed.

        Stale heap entries (keys re-registered with a different expiry, or
        already unregistered) are skipped lazily on pop; when they come to
        outnumber the live entries the heap is compacted — rebuilt from
        the registry — so churn-heavy runs (relocations, per-job
        re-registrations) cannot grow the heap without bound.
        """
        heap = self._expiry_heap
        limit = now + EPSILON
        visits = self._visits
        while heap and heap[0][0] <= limit:
            expiry, key = heapq.heappop(heap)
            entry = visits.get(key)
            if entry is not None and entry[1] == expiry:
                del visits[key]
                self._detach(key, entry[0])
            elif self._expiry_stale > 0:
                self._expiry_stale -= 1
        if (
            len(heap) >= self._HEAP_COMPACT_MIN
            and self._expiry_stale * 2 > len(heap)
        ):
            self._compact_expiry_heap()

    def _compact_expiry_heap(self) -> None:
        """Rebuild the expiry heap from live registrations only."""
        self._expiry_heap = [
            (expiry, key)
            for key, (_visits, expiry) in self._visits.items()
            if expiry is not None
        ]
        heapq.heapify(self._expiry_heap)
        self._expiry_stale = 0

    @property
    def registered(self) -> int:
        return len(self._visits)

    # ------------------------------------------------------------------
    # Admission testing
    # ------------------------------------------------------------------
    def admissible(
        self,
        candidate_visits: Sequence[str],
        candidate_contribs: Mapping[str, float],
        now: float,
        exclude: Optional[Tuple[str, int]] = None,
    ) -> bool:
        """Would the system stay schedulable after adding the candidate?

        Parameters
        ----------
        candidate_visits:
            Processor list the candidate task visits (one per stage).
        candidate_contribs:
            node -> synthetic-utilization delta the candidate adds.  Deltas
            may be negative when evaluating a *relocation* of an already
            admitted task (contributions move between processors).
        now:
            Current time; expired registry entries are retired first.
        exclude:
            Registry key whose old visit list should be ignored (the task
            being relocated; its new visit list is ``candidate_visits``).
        """
        self.tests_performed += 1
        if self._sanitize:
            self._sanitize_audit_caches()
        self.prune(now)
        ledger = self.ledger
        # Hypothetical post-admission utilization on each touched node.
        hyp: Dict[str, float] = {}
        for node, extra in candidate_contribs.items():
            hyp[node] = max(0.0, ledger.utilization_or_zero(node) + extra)
        # Every processor must stay below saturation for f(u) to be finite.
        for node in set(candidate_visits):
            u = hyp.get(node)
            if u is None:
                u = ledger.utilization_or_zero(node)
            if u >= 1.0:
                return False
        # The candidate's own condition.
        total = 0.0
        for node in candidate_visits:
            u = hyp.get(node)
            total += self._term(node) if u is None else aub_term(u)
            if total > 1.0 + EPSILON:
                return False
        # Registered tasks: only those visiting a node whose utilization
        # would actually change can see their condition value move.
        self._refresh_dirty()
        affected: Set[Tuple[str, int]] = set()
        by_node = self._by_node
        for node, extra in candidate_contribs.items():
            if extra == 0.0:
                continue
            keys = by_node.get(node)
            if keys:
                affected.update(keys)
        if self._violating:
            # A task already over the bound fails the test no matter what
            # the candidate changes elsewhere (mirrors the full rescan).
            for key in self._violating:
                if key != exclude and key not in affected:
                    return False
        for key in affected:
            if key == exclude:
                continue
            visits = self._visits[key][0]
            total = 0.0
            for node in visits:
                u = hyp.get(node)
                total += self._term(node) if u is None else aub_term(u)
                if total > 1.0 + EPSILON:
                    return False
        return True

    def admissible_batch(
        self,
        candidates: Sequence[BatchCandidate],
        now: float,
    ) -> List[bool]:
        """Greedy burst admission: one decision per candidate, in order.

        Decisions are **bit-identical** to testing each candidate with
        :meth:`admissible` and committing each accepted candidate's
        contributions (stage by stage, in order) to the ledger before
        testing the next — the prefix-greedy set.  The call is pure: the
        ledger and the registry are untouched; the caller commits accepted
        candidates afterwards (e.g. one
        :meth:`SyntheticUtilizationLedger.add_batch` over the accepted
        stage contributions in candidate order, then ``register()`` each).

        The batch amortizes everything the per-arrival path pays per
        arrival.  Prune and dirty-refresh run once.  Then the **shared
        hypothetical totals screen** runs once: the worst-case per-node
        totals ``U_max`` (current totals plus *every* candidate's stage
        deltas) are built in one pass, and every registered task on a
        burst-touched node is evaluated once against them.  Burst deltas
        are non-negative and ``f`` is monotone, so any hypothetical state
        a candidate can produce lies at or below ``U_max`` node-wise — a
        task whose condition holds under ``U_max`` (by at least
        :data:`SCREEN_GUARD`, which absorbs ulp-scale float wobble) can
        never fail inside this batch and is exempted from every
        per-candidate rescan.  Only the tasks the screen puts on watch
        are re-evaluated exactly, per candidate, with the same floats the
        sequential path would compute.  An accepted candidate costs
        O(changed nodes) overlay updates plus its own one-off screen —
        no ledger mutation, so no cache invalidation and no re-refresh
        storm between candidates.
        """
        if self._sanitize:
            self._sanitize_audit_caches()
        self.prune(now)
        self._refresh_dirty()
        ledger = self.ledger
        by_node = self._by_node
        registry = self._visits
        violating = self._violating
        # ---- one-pass screen: shared worst-case hypothetical totals ----
        umax: Dict[str, float] = {}
        for cand in candidates:
            for node, value in cand.stage_contribs:
                base = umax.get(node)
                if base is None:
                    base = ledger.utilization_or_zero(node)
                umax[node] = base + value
        # Vectorized f over the shared worst-case totals (values are
        # bit-identical to the scalar loop; see aub_terms_bulk).
        umax_terms = dict(zip(umax, aub_terms_bulk(list(umax.values()))))
        screen_bound = 1.0 + EPSILON - SCREEN_GUARD
        watch: Set[Tuple[str, int]] = set()
        to_screen: Set[Tuple[str, int]] = set()
        for node in umax:
            keys = by_node.get(node)
            if keys:
                to_screen.update(keys)
        if len(to_screen) >= _BULK_MIN:
            # The screen falls back to current-state terms for visited
            # nodes outside the burst; bulk-fill those in one pass too.
            self._prime_node_terms(
                node
                for key in to_screen
                for node in registry[key][0]
                if node not in umax_terms
            )
        for key in to_screen:
            total = 0.0
            for node in registry[key][0]:
                term = umax_terms.get(node)
                total += self._term(node) if term is None else term
                if total > screen_bound:
                    watch.add(key)
                    break
        # Batch-local overlay over the ledger: running totals for nodes an
        # accepted candidate touched, cached f() terms for those nodes,
        # and a node -> watched-accepted-candidate reverse index (accepted
        # candidates join the rescan set exactly like registered tasks,
        # and are screened against U_max the same way).
        over_totals: Dict[str, float] = {}
        over_terms: Dict[str, float] = {}
        accepted_by_node: Dict[str, Set[int]] = {}
        accepted_visits: List[Tuple[str, ...]] = []
        decisions: List[bool] = []
        for cand in candidates:
            self.tests_performed += 1
            visits = cand.visits
            contribs = cand.contribs
            # Hypothetical post-admission utilization on each touched node.
            hyp: Dict[str, float] = {}
            for node, extra in contribs.items():
                base = over_totals.get(node)
                if base is None:
                    base = ledger.utilization_or_zero(node)
                hyp[node] = max(0.0, base + extra)
            ok = True
            # Every processor must stay below saturation.
            for node in set(visits):
                u = hyp.get(node)
                if u is None:
                    u = over_totals.get(node)
                    if u is None:
                        u = ledger.utilization_or_zero(node)
                if u >= 1.0:
                    ok = False
                    break
            # The candidate's own condition.
            if ok:
                total = 0.0
                for node in visits:
                    u = hyp.get(node)
                    if u is None:
                        total += self._overlay_term(node, over_totals, over_terms)
                    else:
                        total += aub_term(u)
                    if total > 1.0 + EPSILON:
                        ok = False
                        break
            # Watched registered tasks and watched earlier-accepted
            # candidates visiting a node this candidate would change.
            # (Screened-out tasks cannot fail under any state <= U_max.)
            affected: Set[Tuple[str, int]] = set()
            affected_accepted: Set[int] = set()
            if ok and (watch or accepted_by_node):
                for node, extra in contribs.items():
                    if extra == 0.0:
                        continue
                    keys = by_node.get(node)
                    if keys and watch:
                        affected.update(keys & watch)
                    batch_keys = accepted_by_node.get(node)
                    if batch_keys:
                        affected_accepted.update(batch_keys)
            if ok and violating:
                # A task already over the bound fails the test no matter
                # what this candidate changes elsewhere; with non-negative
                # arrival deltas it cannot recover inside the batch, so
                # every candidate is rejected either here or in the
                # affected rescan below (violating tasks screen onto the
                # watch list whenever a candidate touches their nodes).
                for key in violating:
                    if key not in affected:
                        ok = False
                        break
            if ok:
                for key in affected:
                    total = 0.0
                    for node in registry[key][0]:
                        u = hyp.get(node)
                        if u is None:
                            total += self._overlay_term(
                                node, over_totals, over_terms
                            )
                        else:
                            total += aub_term(u)
                        if total > 1.0 + EPSILON:
                            ok = False
                            break
                    if not ok:
                        break
            if ok:
                for index in affected_accepted:
                    total = 0.0
                    for node in accepted_visits[index]:
                        u = hyp.get(node)
                        if u is None:
                            total += self._overlay_term(
                                node, over_totals, over_terms
                            )
                        else:
                            total += aub_term(u)
                        if total > 1.0 + EPSILON:
                            ok = False
                            break
                    if not ok:
                        break
            decisions.append(ok)
            if ok:
                # Commit into the overlay: replay the exact per-stage
                # additions the ledger would perform, then invalidate the
                # overlay terms of the changed nodes — O(changed nodes).
                index = len(accepted_visits)
                accepted_visits.append(visits)
                for node, value in cand.stage_contribs:
                    base = over_totals.get(node)
                    if base is None:
                        base = ledger.utilization_or_zero(node)
                    over_totals[node] = base + value
                # Screen the accepted candidate against U_max like a
                # registered task: only watched ones are ever rescanned.
                total = 0.0
                watched = False
                for node in visits:
                    term = umax_terms.get(node)
                    total += self._term(node) if term is None else term
                    if total > screen_bound:
                        watched = True
                        break
                for node in contribs:
                    over_terms.pop(node, None)
                    if watched:
                        members = accepted_by_node.get(node)
                        if members is None:
                            accepted_by_node[node] = {index}
                        else:
                            members.add(index)
        return decisions

    def _overlay_term(
        self,
        node: str,
        over_totals: Dict[str, float],
        over_terms: Dict[str, float],
    ) -> float:
        """Cached f(U_j) under the batch overlay (falls back to the
        ledger-level cached term for nodes the batch has not changed)."""
        term = over_terms.get(node)
        if term is None:
            u = over_totals.get(node)
            if u is None:
                return self._term(node)
            term = aub_term(u)
            over_terms[node] = term
        return term

    def batch_session(
        self, now: float, demand: Optional[Mapping[str, float]] = None
    ) -> "BatchAdmissionSession":
        """Open an incremental burst-admission session.

        :meth:`admissible_batch` needs every candidate up front;
        load-balanced bursts cannot provide that because each placement
        plan scores nodes against the utilization left by the plans
        accepted before it.  A session exposes the same batch-local
        overlay one candidate at a time (see
        :class:`BatchAdmissionSession`); prune and dirty-refresh run once
        here, at session start.

        ``demand`` optionally maps node -> the worst-case synthetic
        utilization the whole burst could add there (every stage of every
        queued arrival counted on each of its eligible processors).  The
        placements are unknown up front but their demand envelope is not,
        and it is enough to run the same worst-case screen
        ``admissible_batch`` builds from its candidate list: registered
        tasks whose condition holds under the envelope can never fail
        inside the burst and are exempted from every per-candidate
        rescan.  Every candidate later offered to ``try_admit`` must stay
        inside the envelope, or the screen is unsound.
        """
        if self._sanitize:
            self._sanitize_audit_caches()
        self.batch_sessions += 1
        return BatchAdmissionSession(self, now, demand)


class BatchAdmissionSession:
    """Incremental burst admission for candidates built *during* the batch.

    The load balancer plans one placement at a time: each plan's node
    scores must include the contributions of every placement accepted
    earlier in the burst.  A session carries the same batch-local overlay
    :meth:`AubAnalyzer.admissible_batch` uses — running per-node totals,
    cached overlay terms, and the accepted-candidate rescan index — but
    accepts candidates one by one: :meth:`utilization` is the planner's
    view (overlay where the batch changed a node, live ledger otherwise)
    and :meth:`try_admit` tests a candidate and folds it into the overlay
    on success, at O(changed nodes) cost with no ledger mutation and no
    cache invalidation between candidates.

    Decisions and floats are **bit-identical** to the sequential loop of
    :meth:`AubAnalyzer.admissible` followed by per-stage ledger commits
    and ``register()`` for each accepted candidate: overlay totals replay
    the exact per-stage additions a ledger commit performs, hypothetical
    states use the same ``max(0, U + delta)`` expression, and every
    rescan recomputes the same visit-order sums with the same early exit.
    Each test rescans the registered tasks and earlier-accepted
    candidates on the nodes the candidate would change — exactly the set
    the sequential path rescans — unless a ``demand`` envelope was given
    at session start, in which case the same worst-case screen
    ``admissible_batch`` runs over its candidate list runs here over the
    envelope: burst deltas are non-negative and ``f`` is monotone, so a
    task whose condition holds under the envelope totals (by at least
    :data:`SCREEN_GUARD`) would pass every rescan the sequential path
    performs, and skipping those rescans cannot change a decision.

    Sessions model arrival bursts at one instant: candidate stage
    contributions are non-negative and ``now`` is fixed at session start.
    The session never touches the ledger or the registry; the caller
    commits accepted candidates afterwards (one
    :meth:`SyntheticUtilizationLedger.add_batch` over the accepted stage
    contributions in acceptance order, then ``register()`` each).
    """

    __slots__ = (
        "_analyzer",
        "_over_totals",
        "_over_terms",
        "_accepted_by_node",
        "_accepted_visits",
        "_watch",
        "_umax_terms",
    )

    def __init__(
        self,
        analyzer: AubAnalyzer,
        now: float,
        demand: Optional[Mapping[str, float]] = None,
    ) -> None:
        analyzer.prune(now)
        analyzer._refresh_dirty()
        self._analyzer = analyzer
        #: Running post-commit totals for nodes accepted candidates touched.
        self._over_totals: Dict[str, float] = {}
        #: Cached f() terms for overlay nodes (invalidated on commit).
        self._over_terms: Dict[str, float] = {}
        #: node -> indices of accepted candidates visiting it.
        self._accepted_by_node: Dict[str, Set[int]] = {}
        self._accepted_visits: List[Tuple[str, ...]] = []
        #: Registered keys the worst-case screen could not exempt (None
        #: when no demand envelope was given: rescan everything).
        self._watch: Optional[Set[Tuple[str, int]]] = None
        #: f() terms at the envelope's worst-case per-node totals.
        self._umax_terms: Optional[Dict[str, float]] = None
        if demand is None:
            return
        # One-pass screen, exactly as admissible_batch builds it from its
        # candidate list — the envelope plays the role of the burst's
        # summed stage deltas.
        ledger = analyzer.ledger
        umax = {
            node: ledger.utilization_or_zero(node) + extra
            for node, extra in demand.items()
        }
        umax_terms = dict(zip(umax, aub_terms_bulk(list(umax.values()))))
        screen_bound = 1.0 + EPSILON - SCREEN_GUARD
        by_node = analyzer._by_node
        registry = analyzer._visits
        to_screen: Set[Tuple[str, int]] = set()
        for node in umax:
            keys = by_node.get(node)
            if keys:
                to_screen.update(keys)
        if len(to_screen) >= _BULK_MIN:
            analyzer._prime_node_terms(
                node
                for key in to_screen
                for node in registry[key][0]
                if node not in umax_terms
            )
        watch: Set[Tuple[str, int]] = set()
        for key in to_screen:
            total = 0.0
            for node in registry[key][0]:
                term = umax_terms.get(node)
                total += analyzer._term(node) if term is None else term
                if total > screen_bound:
                    watch.add(key)
                    break
        self._watch = watch
        self._umax_terms = umax_terms

    @property
    def accepted(self) -> int:
        return len(self._accepted_visits)

    def utilization(self, node: str) -> float:
        """The planner's utilization view: the overlay total where this
        batch already placed something, the live ledger total otherwise
        (same floats a ledger commit would have produced)."""
        total = self._over_totals.get(node)
        if total is None:
            return self._analyzer.ledger.utilization(node)
        return total

    def try_admit(self, cand: BatchCandidate) -> bool:
        """Test ``cand`` under ledger + overlay; commit it into the
        overlay and return True when the system stays schedulable."""
        analyzer = self._analyzer
        analyzer.tests_performed += 1
        ledger = analyzer.ledger
        over_totals = self._over_totals
        over_terms = self._over_terms
        visits = cand.visits
        # Hypothetical post-admission utilization on each touched node.
        hyp: Dict[str, float] = {}
        for node, extra in cand.contribs.items():
            base = over_totals.get(node)
            if base is None:
                base = ledger.utilization_or_zero(node)
            hyp[node] = max(0.0, base + extra)
        # Every processor must stay below saturation.
        for node in set(visits):
            u = hyp.get(node)
            if u is None:
                u = over_totals.get(node)
                if u is None:
                    u = ledger.utilization_or_zero(node)
            if u >= 1.0:
                return False
        # The candidate's own condition.
        total = 0.0
        for node in visits:
            u = hyp.get(node)
            if u is None:
                total += analyzer._overlay_term(node, over_totals, over_terms)
            else:
                total += aub_term(u)
            if total > 1.0 + EPSILON:
                return False
        # Registered tasks and earlier-accepted candidates visiting a
        # node this candidate would change (watched ones only, when the
        # demand envelope screened the rest out).
        affected: Set[Tuple[str, int]] = set()
        affected_accepted: Set[int] = set()
        by_node = analyzer._by_node
        accepted_by_node = self._accepted_by_node
        watch = self._watch
        for node, extra in cand.contribs.items():
            if extra == 0.0:
                continue
            keys = by_node.get(node)
            if keys:
                affected.update(keys if watch is None else keys & watch)
            batch_keys = accepted_by_node.get(node)
            if batch_keys:
                affected_accepted.update(batch_keys)
        violating = analyzer._violating
        if violating:
            # A task already over the bound fails the test no matter what
            # the candidate changes elsewhere (mirrors ``admissible``).
            for key in violating:
                if key not in affected:
                    return False
        registry = analyzer._visits
        for key in affected:
            total = 0.0
            for node in registry[key][0]:
                u = hyp.get(node)
                if u is None:
                    total += analyzer._overlay_term(
                        node, over_totals, over_terms
                    )
                else:
                    total += aub_term(u)
                if total > 1.0 + EPSILON:
                    return False
        accepted_visits = self._accepted_visits
        for index in affected_accepted:
            total = 0.0
            for node in accepted_visits[index]:
                u = hyp.get(node)
                if u is None:
                    total += analyzer._overlay_term(
                        node, over_totals, over_terms
                    )
                else:
                    total += aub_term(u)
                if total > 1.0 + EPSILON:
                    return False
        self._commit(cand)
        return True

    def _commit(self, cand: BatchCandidate) -> None:
        """Fold an accepted candidate into the overlay: replay the exact
        per-stage additions the ledger commit will perform, invalidate
        the overlay terms of the changed nodes — O(changed nodes)."""
        over_totals = self._over_totals
        analyzer = self._analyzer
        ledger = analyzer.ledger
        index = len(self._accepted_visits)
        self._accepted_visits.append(cand.visits)
        for node, value in cand.stage_contribs:
            base = over_totals.get(node)
            if base is None:
                base = ledger.utilization_or_zero(node)
            over_totals[node] = base + value
        # Screen the accepted candidate against the demand envelope like
        # a registered task: only watched ones are ever rescanned.
        umax_terms = self._umax_terms
        watched = True
        if umax_terms is not None:
            screen_bound = 1.0 + EPSILON - SCREEN_GUARD
            total = 0.0
            watched = False
            for node in cand.visits:
                term = umax_terms.get(node)
                total += analyzer._term(node) if term is None else term
                if total > screen_bound:
                    watched = True
                    break
        accepted_by_node = self._accepted_by_node
        for node in cand.contribs:
            self._over_terms.pop(node, None)
            if watched:
                members = accepted_by_node.get(node)
                if members is None:
                    accepted_by_node[node] = {index}
                else:
                    members.add(index)


class NaiveAubAnalyzer:
    """Reference implementation: full-registry rescan per admission test.

    This is the direct transcription of condition (1): snapshot the whole
    ledger, apply the candidate's deltas, then re-evaluate every registered
    task.  O(tasks * visits) per test plus an O(tasks) expiry sweep —
    kept verbatim so property tests can assert the incremental
    :class:`AubAnalyzer` agrees decision-for-decision, and so the hot-path
    benchmark can quantify the speedup.
    """

    def __init__(self, ledger: SyntheticUtilizationLedger) -> None:
        self.ledger = ledger
        self._visits: Dict[Tuple[str, int], Tuple[List[str], Optional[float]]] = {}
        self.tests_performed = 0

    def register(
        self,
        key: Tuple[str, int],
        visits: Sequence[str],
        expiry: Optional[float],
    ) -> None:
        self._visits[key] = (list(visits), expiry)

    def unregister(self, key: Tuple[str, int]) -> None:
        self._visits.pop(key, None)

    def prune(self, now: float) -> None:
        expired = [
            k
            for k, (_visits, expiry) in self._visits.items()
            if expiry is not None and expiry <= now + EPSILON
        ]
        for k in expired:
            del self._visits[k]

    @property
    def registered(self) -> int:
        return len(self._visits)

    def admissible(
        self,
        candidate_visits: Sequence[str],
        candidate_contribs: Mapping[str, float],
        now: float,
        exclude: Optional[Tuple[str, int]] = None,
    ) -> bool:
        self.tests_performed += 1
        self.prune(now)
        totals = self.ledger.snapshot()
        for node, extra in candidate_contribs.items():
            totals[node] = max(0.0, totals.get(node, 0.0) + extra)
        for node in set(candidate_visits):
            if totals.get(node, 0.0) >= 1.0:
                return False
        if not task_condition_holds([totals[n] for n in candidate_visits]):
            return False
        for key, (visits, _expiry) in self._visits.items():
            if exclude is not None and key == exclude:
                continue
            if not task_condition_holds([totals.get(n, 0.0) for n in visits]):
                return False
        return True

    def admissible_batch(
        self,
        candidates: Sequence[BatchCandidate],
        now: float,
    ) -> List[bool]:
        """Reference burst admission: the literal sequential loop.

        Each candidate is tested exactly like :meth:`admissible` against
        the running totals; an accepted candidate's stage contributions
        are folded into the totals (in commit order) and its visit list
        joins the rescan set, exactly as if it had been committed to the
        ledger and registered before the next test.
        """
        self.prune(now)
        totals = self.ledger.snapshot()
        accepted: List[Tuple[str, ...]] = []
        decisions: List[bool] = []
        for cand in candidates:
            self.tests_performed += 1
            trial = dict(totals)
            for node, extra in cand.contribs.items():
                trial[node] = max(0.0, trial.get(node, 0.0) + extra)
            ok = True
            for node in set(cand.visits):
                if trial.get(node, 0.0) >= 1.0:
                    ok = False
                    break
            if ok and not task_condition_holds(
                [trial[n] for n in cand.visits]
            ):
                ok = False
            if ok:
                for _key, (visits, _expiry) in self._visits.items():
                    if not task_condition_holds(
                        [trial.get(n, 0.0) for n in visits]
                    ):
                        ok = False
                        break
            if ok:
                for visits in accepted:
                    if not task_condition_holds(
                        [trial.get(n, 0.0) for n in visits]
                    ):
                        ok = False
                        break
            decisions.append(ok)
            if ok:
                for node, value in cand.stage_contribs:
                    totals[node] = totals.get(node, 0.0) + value
                accepted.append(cand.visits)
        return decisions

"""Scheduling theory: task model, AUB analysis, EDMS, baselines.

This package implements the theory underlying the paper's services
(section 2):

* the end-to-end task model — tasks are chains of subtasks on different
  processors; jobs are chains of subjobs (:mod:`repro.sched.task`);
* Aperiodic Utilization Bound (AUB) analysis: synthetic utilization
  bookkeeping, the schedulability condition (paper equation 1), and the
  resetting rule (:mod:`repro.sched.aub`);
* End-to-end Deadline Monotonic Scheduling priority assignment
  (:mod:`repro.sched.edms`);
* the Deferrable Server baseline the paper's earlier work compared AUB
  against (:mod:`repro.sched.deferrable`).
"""

from repro.sched.aub import (
    AubAnalyzer,
    SyntheticUtilizationLedger,
    aub_term,
    task_condition_holds,
)
from repro.sched.edms import assign_priorities, edms_priority
from repro.sched.task import Job, JobStatus, SubtaskSpec, TaskKind, TaskSpec

__all__ = [
    "AubAnalyzer",
    "SyntheticUtilizationLedger",
    "aub_term",
    "task_condition_holds",
    "assign_priorities",
    "edms_priority",
    "Job",
    "JobStatus",
    "SubtaskSpec",
    "TaskKind",
    "TaskSpec",
]

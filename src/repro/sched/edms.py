"""End-to-end Deadline Monotonic Scheduling (EDMS) priority assignment.

Under EDMS a subtask has higher priority if it belongs to a task with a
shorter end-to-end deadline (paper section 2).  The paper's configuration
engine "assigns priorities in order of tasks' end-to-end deadlines" and
writes them into the deployment plan; :func:`assign_priorities` reproduces
that, and :func:`edms_priority` gives the raw priority value used by the
processor model (smaller = more urgent).
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.sched.task import TaskSpec


def edms_priority(task: TaskSpec) -> float:
    """The dispatching priority for all of ``task``'s subtask threads.

    Our processor model treats smaller values as higher priority, so the
    end-to-end deadline itself is a valid EDMS priority value.
    """
    return task.deadline


def assign_priorities(tasks: Iterable[TaskSpec]) -> Dict[str, int]:
    """Assign integer priority levels by end-to-end deadline.

    Returns task_id -> level, where level 0 is the highest priority
    (shortest deadline).  Ties are broken by task id so the assignment is
    deterministic, mirroring the deployment plan the paper's configuration
    engine generates.
    """
    ordered: List[TaskSpec] = sorted(tasks, key=lambda t: (t.deadline, t.task_id))
    return {task.task_id: level for level, task in enumerate(ordered)}

"""Offline (pre-deployment) schedulability analysis.

The paper's services make *on-line* admission decisions; this module
answers the complementary design-time question: if all tasks of a
workload were current simultaneously under their home assignment, which
end-to-end tasks would satisfy AUB condition (1)?  The configuration
engine surfaces this as a feasibility report so a developer sees
structural overload (a task whose path can never be admitted at the
calibrated utilization) before deploying, and the LB axis can be judged:
the report is also computed under best-case greedy placement over
replicas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.sched.aub import aub_term, task_condition_holds
from repro.sched.edms import assign_priorities
from repro.sched.task import TaskSpec
from repro.workloads.model import Workload


@dataclass(frozen=True)
class TaskFeasibility:
    """Condition (1) evaluation for one task under one placement."""

    task_id: str
    visits: Tuple[str, ...]
    condition_sum: float
    schedulable: bool
    priority_level: int


@dataclass
class FeasibilityReport:
    """Design-time schedulability picture of a whole workload."""

    utilization: Dict[str, float] = field(default_factory=dict)
    home_results: List[TaskFeasibility] = field(default_factory=list)
    balanced_results: List[TaskFeasibility] = field(default_factory=list)

    @property
    def all_schedulable_at_home(self) -> bool:
        return all(r.schedulable for r in self.home_results)

    @property
    def all_schedulable_balanced(self) -> bool:
        return all(r.schedulable for r in self.balanced_results)

    def unschedulable_tasks(self, balanced: bool = False) -> List[str]:
        results = self.balanced_results if balanced else self.home_results
        return [r.task_id for r in results if not r.schedulable]

    def load_balancing_helps(self) -> bool:
        """True when greedy replica placement fixes at least one task that
        is unschedulable at home."""
        home_bad = set(self.unschedulable_tasks(balanced=False))
        balanced_bad = set(self.unschedulable_tasks(balanced=True))
        return bool(home_bad - balanced_bad)


def _evaluate(
    workload: Workload,
    assignments: Dict[str, Dict[int, str]],
    levels: Dict[str, int],
) -> Tuple[Dict[str, float], List[TaskFeasibility]]:
    """Worst-case (all tasks current) utilizations and per-task checks."""
    utilization: Dict[str, float] = {n: 0.0 for n in workload.app_nodes}
    for task in workload.tasks:
        assignment = assignments[task.task_id]
        for subtask in task.subtasks:
            utilization[assignment[subtask.index]] += task.subtask_utilization(
                subtask.index
            )
    results = []
    for task in workload.tasks:
        assignment = assignments[task.task_id]
        visits = tuple(task.visited_processors(assignment))
        utils = [utilization[n] for n in visits]
        total = (
            sum(aub_term(u) for u in utils)
            if all(u < 1.0 for u in utils)
            else float("inf")
        )
        results.append(
            TaskFeasibility(
                task_id=task.task_id,
                visits=visits,
                condition_sum=total,
                schedulable=task_condition_holds(utils),
                priority_level=levels[task.task_id],
            )
        )
    return utilization, results


def _greedy_balanced_assignments(
    workload: Workload,
) -> Dict[str, Dict[int, str]]:
    """Greedy lowest-utilization placement over each subtask's eligible
    processors — the LB component's heuristic applied statically."""
    utilization: Dict[str, float] = {n: 0.0 for n in workload.app_nodes}
    assignments: Dict[str, Dict[int, str]] = {}
    for task in workload.tasks:
        assignment: Dict[int, str] = {}
        for subtask in task.subtasks:
            u = task.subtask_utilization(subtask.index)
            best = min(subtask.eligible, key=lambda n: (utilization[n], n))
            assignment[subtask.index] = best
            utilization[best] += u
        assignments[task.task_id] = assignment
    return assignments


def analyze_workload(workload: Workload) -> FeasibilityReport:
    """Produce the full design-time feasibility report."""
    levels = assign_priorities(workload.tasks)
    home = {t.task_id: t.home_assignment() for t in workload.tasks}
    report = FeasibilityReport()
    report.utilization, report.home_results = _evaluate(workload, home, levels)
    balanced = _greedy_balanced_assignments(workload)
    _balanced_util, report.balanced_results = _evaluate(
        workload, balanced, levels
    )
    return report


def format_report(report: FeasibilityReport) -> str:
    """Human-readable rendering for the CLI and configuration engine."""
    lines = ["Offline AUB feasibility (all tasks current, worst case)"]
    lines.append("per-processor synthetic utilization (home assignment):")
    for node, util in sorted(report.utilization.items()):
        lines.append(f"  {node}: {util:.3f}")
    lines.append("per-task condition (1) sums (<= 1 is schedulable):")
    for home, balanced in zip(report.home_results, report.balanced_results):
        mark = "ok " if home.schedulable else "OVER"
        improved = (
            "  [balanced placement fixes this]"
            if not home.schedulable and balanced.schedulable
            else ""
        )
        lines.append(
            f"  {mark} {home.task_id:12s} prio={home.priority_level} "
            f"sum={home.condition_sum:.3f} visits={'>'.join(home.visits)}"
            f"{improved}"
        )
    return "\n".join(lines)

"""Admission decision records and the policy interface.

The Admission Control component delegates the actual schedulability
mathematics to an :class:`AdmissionPolicy`; the AUB policy used throughout
the paper lives in the AC component itself (it needs the shared ledger),
while :mod:`repro.sched.deferrable` provides the Deferrable Server baseline
policy for the ablation benchmark.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.sched.task import Job


@dataclass(frozen=True)
class AdmissionDecision:
    """The outcome of one admission test."""

    job_key: tuple
    admitted: bool
    tested_at: float
    assignment: Optional[Dict[int, str]] = None
    reason: str = ""


class AdmissionPolicy(ABC):
    """Interface for pluggable admission policies (used by the replay
    engine and the ablation benchmarks)."""

    @abstractmethod
    def on_arrival(self, job: Job, now: float) -> AdmissionDecision:
        """Test ``job`` at time ``now`` and commit state if admitted."""

    def on_arrival_batch(
        self, jobs: Sequence[Job], now: float
    ) -> List[AdmissionDecision]:
        """Decide a burst of simultaneous arrivals, in arrival order.

        The default is the literal sequential loop.  Policies with a
        batched fast path (the AUB engine's ``admissible_batch`` and
        batch sessions) may override it; overrides must keep decisions
        bit-identical to this loop — the contract every batched hot path
        in the middleware is property-tested against.
        """
        return [self.on_arrival(job, now) for job in jobs]

    @abstractmethod
    def on_deadline(self, job: Job, now: float) -> None:
        """Reclaim any state reserved for ``job`` when its deadline expires."""

    def on_completion(self, job: Job, now: float) -> None:
        """Optional hook: a job finished before its deadline."""

"""repro-lint: AST-based determinism & parity static analysis for this repo.

Every perf PR in this repository stakes its correctness on bit-identical
decision parity between batched hot paths and sequential oracles, and
the experiment runner promises identical results for any worker count.
Those guarantees die quietly the moment someone iterates an unordered
``set`` in a decision path, reads the wall clock inside the simulator,
or hands an unpicklable lambda to ``run_cells``.  ``repro-lint`` turns
the repo's determinism folklore into mechanically enforced rules.

Usage (from the repo root, with ``tools`` on ``PYTHONPATH``)::

    python -m repro_lint src/ tests/ benchmarks/

See ``docs/LINTING.md`` for every rule ID, its rationale, the inline
suppression syntax, and how to regenerate the committed baseline.
"""

from repro_lint.engine import Context, Finding, LintEngine, Rule, lint_source
from repro_lint.baseline import Baseline

__version__ = "1.0"

__all__ = [
    "Baseline",
    "Context",
    "Finding",
    "LintEngine",
    "Rule",
    "lint_source",
    "__version__",
]

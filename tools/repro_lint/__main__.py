"""Entry point for ``python -m repro_lint``."""

import sys

from repro_lint.cli import main

if __name__ == "__main__":
    sys.exit(main())

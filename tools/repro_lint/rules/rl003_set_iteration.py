"""RL003: no iteration over unordered sets in decision/commit paths.

``set``/``frozenset`` iterate in hash order, which for str keys varies
run-to-run under ``PYTHONHASHSEED``.  Any loop in ``src/repro`` that
folds floats, appends results, or commits ledger updates while walking a
set can therefore produce different float-accumulation orders — the
exact class of bug the batched-vs-sequential parity tests exist to
catch, except nondeterministically.  Wrap the iterable in ``sorted(...)``
(cheap next to any admission test), or suppress/baseline the site with a
justification when the loop is provably order-independent (e.g. a pure
early-exit membership screen).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro_lint.engine import Context, Finding, Rule
from repro_lint.rules import register

#: Call targets that materialize their argument in iteration order.
_ORDER_SENSITIVE_CALLS = {"list", "tuple", "enumerate"}


def _set_expr_reason(node: ast.AST) -> Optional[str]:
    """Why ``node`` evaluates to an unordered set, or None."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return f"{node.func.id}(...)"
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        left = _set_expr_reason(node.left)
        right = _set_expr_reason(node.right)
        if left or right:
            return "a set-algebra expression"
    return None


@register
class SetIterationRule(Rule):
    rule_id = "RL003"
    summary = "no iteration over set/frozenset without sorted(...)"
    rationale = (
        "set iteration order varies under PYTHONHASHSEED; unordered walks "
        "in decision/commit paths change float accumulation order and kill "
        "bit-identical parity"
    )
    node_types = (ast.For, ast.comprehension, ast.Call)
    include = ("src/repro/",)

    def visit(self, node: ast.AST, ctx: Context) -> Iterator[Finding]:
        if isinstance(node, ast.For):
            yield from self._check_iter(node.iter, ctx, "for-loop")
        elif isinstance(node, ast.comprehension):
            yield from self._check_iter(node.iter, ctx, "comprehension")
        elif isinstance(node, ast.Call):
            yield from self._check_materialize(node, ctx)

    def _check_iter(self, iter_node: ast.AST, ctx: Context, where: str) -> Iterator[Finding]:
        reason = _set_expr_reason(iter_node)
        if reason is None and isinstance(iter_node, ast.Name):
            reason = self._name_is_set(iter_node.id, ctx)
        if reason is not None:
            yield Finding(
                path=ctx.path,
                line=iter_node.lineno,
                col=iter_node.col_offset,
                rule_id=self.rule_id,
                message=(
                    f"{where} iterates {reason} "
                    f"({self.excerpt(iter_node)}) in unordered hash order; "
                    "wrap it in sorted(...)"
                ),
            )

    def _check_materialize(self, node: ast.Call, ctx: Context) -> Iterator[Finding]:
        func = node.func
        name = None
        if isinstance(func, ast.Name) and func.id in _ORDER_SENSITIVE_CALLS:
            name = func.id
        elif (
            isinstance(func, ast.Attribute)
            and func.attr == "join"
            and isinstance(func.value, (ast.Constant, ast.Name))
        ):
            name = "join"
        if name is None or len(node.args) != 1:
            return
        reason = _set_expr_reason(node.args[0])
        if reason is not None:
            yield Finding(
                path=ctx.path,
                line=node.lineno,
                col=node.col_offset,
                rule_id=self.rule_id,
                message=(
                    f"{name}() materializes {reason} "
                    f"({self.excerpt(node.args[0])}) in unordered hash "
                    "order; wrap it in sorted(...)"
                ),
            )

    def _name_is_set(self, name: str, ctx: Context) -> Optional[str]:
        """Flag a bare name iter only when every assignment to it in the
        enclosing scope is a set expression (conservative: parameters,
        mixed assignments and unknown bindings stay silent)."""
        scope: ast.AST = ctx.enclosing_function() or ctx.tree
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            params = {a.arg for a in scope.args.args}
            params.update(a.arg for a in scope.args.posonlyargs)
            params.update(a.arg for a in scope.args.kwonlyargs)
            if scope.args.vararg:
                params.add(scope.args.vararg.arg)
            if scope.args.kwarg:
                params.add(scope.args.kwarg.arg)
            if name in params:
                return None
        assignments = []
        rebound_unknown = False
        for sub in ast.walk(scope):
            if isinstance(sub, ast.Assign):
                for target in sub.targets:
                    if isinstance(target, ast.Name) and target.id == name:
                        assignments.append(sub.value)
                    elif not isinstance(target, ast.Name) and any(
                        isinstance(n, ast.Name) and n.id == name
                        for n in ast.walk(target)
                    ):
                        rebound_unknown = True
            elif isinstance(sub, ast.AnnAssign):
                if (
                    isinstance(sub.target, ast.Name)
                    and sub.target.id == name
                    and sub.value is not None
                ):
                    assignments.append(sub.value)
            elif isinstance(sub, (ast.For, ast.AugAssign, ast.withitem)):
                target = getattr(sub, "target", None) or getattr(
                    sub, "optional_vars", None
                )
                if target is not None and any(
                    isinstance(n, ast.Name) and n.id == name
                    for n in ast.walk(target)
                ):
                    rebound_unknown = True
        if rebound_unknown or not assignments:
            return None
        reasons = [_set_expr_reason(value) for value in assignments]
        if all(reasons):
            return f"the set-valued name {name!r} (assigned from {reasons[0]})"
        return None

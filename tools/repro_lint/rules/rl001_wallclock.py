"""RL001: no wall-clock reads inside the simulated-time packages.

The simulator owns time: every timestamp in ``sim``/``sched``/``core``/
``net`` must come from the kernel's virtual clock so a run is a pure
function of its scenario.  A single ``time.time()`` (or ``datetime.now``
/ ``time.monotonic``) read makes results machine- and moment-dependent,
which silently breaks replay parity and the bit-identical fan-out
guarantee of the experiment runner.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro_lint.engine import Context, Finding, Rule
from repro_lint.rules import register

#: module -> functions that read the host clock.
_CLOCK_CALLS = {
    "time": {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "localtime",
        "gmtime",
    },
    "datetime": {"now", "utcnow", "today"},
    "date": {"today"},
}


@register
class WallClockRule(Rule):
    rule_id = "RL001"
    summary = "no wall-clock reads in simulated-time packages"
    rationale = (
        "sim/sched/core/net run on the kernel's virtual clock; host-clock "
        "reads make runs machine-dependent and break replay parity"
    )
    node_types = (ast.Call,)
    include = (
        "src/repro/sim/",
        "src/repro/sched/",
        "src/repro/core/",
        "src/repro/net/",
    )

    def visit(self, node: ast.AST, ctx: Context) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        name = _clock_call_name(node.func, ctx)
        if name is not None:
            yield Finding(
                path=ctx.path,
                line=node.lineno,
                col=node.col_offset,
                rule_id=self.rule_id,
                message=(
                    f"wall-clock read {name}() in a simulated-time package; "
                    "use the kernel's virtual clock"
                ),
            )


def _clock_call_name(func: ast.AST, ctx: Context) -> str | None:
    # time.time() / datetime.datetime.now() style attribute calls.
    if isinstance(func, ast.Attribute):
        attr = func.attr
        base = func.value
        # Unwind datetime.datetime.now -> base name "datetime".
        while isinstance(base, ast.Attribute):
            base = base.value
        if isinstance(base, ast.Name):
            module = base.id
            if module in _CLOCK_CALLS and attr in _CLOCK_CALLS[module]:
                return f"{module}.{attr}"
            # from datetime import datetime; datetime.now()
            origin = ctx.from_imports.get(module)
            if origin is not None:
                root = origin.split(".", 1)[0]
                leaf = origin.rsplit(".", 1)[-1]
                if root in _CLOCK_CALLS or leaf in _CLOCK_CALLS:
                    table = _CLOCK_CALLS.get(leaf, _CLOCK_CALLS.get(root, set()))
                    if attr in table:
                        return f"{origin}.{attr}"
        return None
    # from time import monotonic; monotonic()
    if isinstance(func, ast.Name):
        origin = ctx.from_imports.get(func.id)
        if origin is not None:
            module, _, leaf = origin.rpartition(".")
            if module in _CLOCK_CALLS and leaf in _CLOCK_CALLS[module]:
                return origin
    return None

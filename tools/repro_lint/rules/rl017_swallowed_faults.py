"""RL017: no swallowed faults in runtime code.

A chaos-engineering suite is only as strong as the failure signals it
can observe: a ``try`` block that catches everything and continues turns
an injected fault (or a genuine protocol bug) into silent state
divergence that surfaces runs later as a determinism break.  In ``src/``
a handler must therefore either catch a *specific* exception type or
re-raise what it caught.  The rule flags bare ``except:`` always, and
``except Exception`` / ``except BaseException`` handlers whose body
never raises.

Tests and tools are out of scope — asserting on swallowed errors, or a
CLI's last-resort error boundary, are legitimate patterns there.  A
deliberate runtime boundary (if one ever appears) belongs in the
baseline with a justification, not silently in the code.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro_lint.engine import Context, Finding, Rule
from repro_lint.rules import register

_BROAD_NAMES = {"Exception", "BaseException"}


def _broad_catch(node: ast.ExceptHandler) -> bool:
    """True for ``except Exception`` / ``BaseException`` (also in tuples)."""
    kinds = node.type
    if kinds is None:
        return True
    members = kinds.elts if isinstance(kinds, ast.Tuple) else [kinds]
    return any(
        isinstance(member, ast.Name) and member.id in _BROAD_NAMES
        for member in members
    )


def _reraises(node: ast.ExceptHandler) -> bool:
    return any(
        isinstance(child, ast.Raise)
        for stmt in node.body
        for child in ast.walk(stmt)
    )


@register
class SwallowedFaultsRule(Rule):
    rule_id = "RL017"
    summary = "no bare/broad except handlers that swallow faults in src/"
    rationale = (
        "a handler that catches everything and continues converts injected "
        "faults and protocol bugs into silent state divergence; catch the "
        "specific exception or re-raise"
    )
    node_types = (ast.ExceptHandler,)
    include = ("src/",)

    def visit(self, node: ast.AST, ctx: Context) -> Iterator[Finding]:
        assert isinstance(node, ast.ExceptHandler)
        if node.type is None:
            yield Finding(
                path=ctx.path,
                line=node.lineno,
                col=node.col_offset,
                rule_id=self.rule_id,
                message=(
                    "bare 'except:' swallows every fault (including "
                    "KeyboardInterrupt); catch the specific exception "
                    "type instead"
                ),
            )
            return
        if _broad_catch(node) and not _reraises(node):
            caught = self.excerpt(node.type)
            yield Finding(
                path=ctx.path,
                line=node.lineno,
                col=node.col_offset,
                rule_id=self.rule_id,
                message=(
                    f"'except {caught}' without a re-raise swallows "
                    "faults silently; catch the specific exception type "
                    "or re-raise after handling"
                ),
            )

"""RL014: async handlers must not block the event loop.

The admission service front-end runs every handler on one event loop:
a single ``time.sleep``, synchronous file/process/socket call, or
await-less ``while True`` inside an ``async def`` stalls *every*
in-flight admission decision, not just its own.  Blocking work belongs
in a thread executor (``loop.run_in_executor``) or behind the async
counterpart (``asyncio.sleep``, ``asyncio.subprocess``); loops must
await something on every iteration or terminate.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from repro_lint.engine import Context, Finding, Rule
from repro_lint.rules import register

#: module -> attributes whose call blocks the loop.
_BLOCKING_ATTRS = {
    "time": {"sleep"},
    "os": {"system", "wait", "waitpid"},
    "subprocess": {"run", "call", "check_call", "check_output", "Popen"},
    "socket": {"create_connection", "socket", "getaddrinfo"},
    "requests": {"get", "post", "put", "delete", "head", "request"},
    "urllib.request": {"urlopen"},
}


@register
class AsyncReadinessRule(Rule):
    rule_id = "RL014"
    summary = "no blocking calls or await-less loops in async functions"
    rationale = (
        "one blocking call inside an async handler stalls every "
        "in-flight request on the event loop; use the async counterpart "
        "or a thread executor"
    )
    node_types = (ast.AsyncFunctionDef,)

    def visit(self, node: ast.AST, ctx: Context) -> Iterator[Finding]:
        assert isinstance(node, ast.AsyncFunctionDef)
        for sub in self._own_nodes(node):
            if isinstance(sub, ast.Call):
                what = self._blocking_call(sub, ctx)
                if what is not None:
                    yield self._finding(
                        sub,
                        ctx,
                        f"blocking call {what} inside async def "
                        f"{node.name!r} stalls the event loop; use the "
                        "async counterpart or run_in_executor",
                    )
            elif isinstance(sub, ast.While):
                if self._is_unbounded(sub):
                    yield self._finding(
                        sub,
                        ctx,
                        f"unbounded loop inside async def {node.name!r} "
                        "never yields to the event loop; await inside "
                        "the loop or bound it",
                    )

    # ------------------------------------------------------------------
    @staticmethod
    def _own_nodes(root: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
        """Walk ``root`` without descending into nested function defs
        (each async def is dispatched to :meth:`visit` on its own)."""
        pending: List[ast.AST] = list(ast.iter_child_nodes(root))
        while pending:
            node = pending.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            yield node
            pending.extend(ast.iter_child_nodes(node))

    def _blocking_call(
        self, node: ast.Call, ctx: Context
    ) -> Optional[str]:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "open" and "open" not in ctx.from_imports:
                return "open()"
            if func.id == "input":
                return "input()"
            dotted = ctx.from_imports.get(func.id)
            if dotted is not None:
                owner, _, attr = dotted.rpartition(".")
                if attr in _BLOCKING_ATTRS.get(owner, ()):
                    return f"{dotted}()"
        elif isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            base = func.value.id
            if base in ctx.module_imports and func.attr in _BLOCKING_ATTRS.get(
                base, ()
            ):
                return f"{base}.{func.attr}()"
        return None

    @staticmethod
    def _is_unbounded(node: ast.While) -> bool:
        """``while True`` with neither an await nor a break in the body."""
        if not (
            isinstance(node.test, ast.Constant) and node.test.value is True
        ):
            return False
        for sub in ast.walk(node):
            if isinstance(sub, (ast.Await, ast.Break, ast.Return, ast.Raise)):
                return False
        return True

    def _finding(self, node: ast.AST, ctx: Context, message: str) -> Finding:
        return Finding(
            path=ctx.path,
            line=node.lineno,
            col=node.col_offset,
            rule_id=self.rule_id,
            message=message,
        )

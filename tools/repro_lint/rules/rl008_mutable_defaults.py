"""RL008: no mutable default arguments.

A ``def f(acc=[])`` default is evaluated once and shared by every call —
state leaks between invocations, and in this repo between *runs* of the
same experiment in one process, which is exactly the cross-run coupling
the seed-complete Scenario design exists to rule out.  Use ``None`` and
construct inside the body (or a frozen/tuple default).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro_lint.engine import Context, Finding, Rule
from repro_lint.rules import register

_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter"}


def _mutable_reason(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.List):
        return "list literal"
    if isinstance(node, ast.Dict):
        return "dict literal"
    if isinstance(node, ast.Set):
        return "set literal"
    if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
        return "comprehension"
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name in _MUTABLE_CALLS:
            return f"{name}() call"
    return None


@register
class MutableDefaultRule(Rule):
    rule_id = "RL008"
    summary = "no dict/list/set mutable default arguments"
    rationale = (
        "mutable defaults are evaluated once and shared across calls, "
        "leaking state between runs in one process"
    )
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    def visit(self, node: ast.AST, ctx: Context) -> Iterator[Finding]:
        args = node.args  # type: ignore[attr-defined]
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            reason = _mutable_reason(default)
            if reason is not None:
                name = getattr(node, "name", "<lambda>")
                yield Finding(
                    path=ctx.path,
                    line=default.lineno,
                    col=default.col_offset,
                    rule_id=self.rule_id,
                    message=(
                        f"mutable default argument ({reason}) on {name}() "
                        "is shared across calls; default to None and build "
                        "inside the body"
                    ),
                )

"""RL010: values flowing into ``run_cells`` payloads must be picklable.

RL006 catches the syntactic cases — a lambda or nested-function *name*
written directly into the call.  This rule follows the data flow the
project index resolves: a payload function bound to a lambda through a
local variable (or through a from-import of a module-level lambda in
another module), and unpicklable objects — open file handles, locks,
module-level singleton handles — reaching the cell tuples through local
or module-level assignments.  All of these pickle fine in the serial
fallback and break (or silently change behavior) the moment the pool
spins up, which is exactly the failure mode a lint must catch before the
cluster executor ships.

The rule deliberately reports nothing RL006 already reports: raw lambdas
in the argument list stay RL006's finding.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple, Union

from repro_lint.engine import Finding, Rule
from repro_lint.project import DispatchSite, ModuleInfo, ProjectIndex
from repro_lint.rules import register

#: Synchronization-primitive factories that produce unpicklable objects.
_SYNC_MODULES = ("threading", "multiprocessing", "_thread")
_SYNC_FACTORIES = {
    "Lock",
    "RLock",
    "Condition",
    "Semaphore",
    "BoundedSemaphore",
    "Event",
    "Barrier",
    "allocate_lock",
}

_AssignMap = Dict[str, ast.expr]


@register
class PickleSafetyRule(Rule):
    rule_id = "RL010"
    summary = "no unpicklable values flowing into run_cells payloads"
    rationale = (
        "payloads cross process boundaries; locks, open handles, and "
        "lambda-bound names resolved through assignments pickle only in "
        "the serial fallback and break the parallel path"
    )

    def check_index(self, index: ProjectIndex) -> Iterator[Finding]:
        for site in index.dispatch_sites:
            if not self.applies_to(site.path):
                continue
            yield from self._check_site(site, index)

    # ------------------------------------------------------------------
    def _check_site(
        self, site: DispatchSite, index: ProjectIndex
    ) -> Iterator[Finding]:
        mod = index.modules[site.module]
        local_assigns = _assignments(site.enclosing) if site.enclosing else {}
        module_assigns = _assignments(mod.tree)
        call = site.call
        # The payload function: a Name bound to a lambda locally, at
        # module level, or (cross-module) behind a from-import.
        if call.args and isinstance(call.args[0], ast.Name):
            fn_name = call.args[0].id
            bound = _resolve_name(
                fn_name, local_assigns, module_assigns, mod, index
            )
            if bound is not None and isinstance(bound[0], ast.Lambda):
                where = "" if bound[1] is mod else f" in {bound[1].module}"
                yield self._finding(
                    call.args[0],
                    site.path,
                    f"payload function {fn_name!r} is bound to a "
                    f"lambda{where} and cannot be pickled for the worker "
                    "pool; use a module-level def",
                )
        # Everything else in the call crosses the pool boundary except
        # cost_key, which orders submission parent-side.
        arguments = list(call.args[1:]) + [
            kw.value for kw in call.keywords if kw.arg != "cost_key"
        ]
        for arg in arguments:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Call):
                    reason = _unpicklable_factory(sub, mod)
                    if reason is not None:
                        yield self._finding(
                            sub,
                            site.path,
                            f"{reason} created inline in a run_cells "
                            "payload cannot be pickled for the worker "
                            "pool; open/create it inside the cell "
                            "function instead",
                        )
                elif isinstance(sub, ast.Name) and isinstance(
                    sub.ctx, ast.Load
                ):
                    bound = _resolve_name(
                        sub.id, local_assigns, module_assigns, mod, index
                    )
                    if bound is None:
                        continue
                    value, owner = bound
                    reason = self._value_reason(value, owner)
                    if reason is not None:
                        scope = (
                            "a module-level singleton holding "
                            if sub.id in _names(module_assigns)
                            and sub.id not in local_assigns
                            else ""
                        )
                        yield self._finding(
                            sub,
                            site.path,
                            f"{sub.id!r} resolves to {scope}{reason} and "
                            "cannot be pickled into a run_cells payload",
                        )

    @staticmethod
    def _value_reason(
        value: ast.expr, owner: ModuleInfo
    ) -> Optional[str]:
        if isinstance(value, ast.Lambda):
            return "a lambda"
        if isinstance(value, ast.GeneratorExp):
            return "a generator"
        if isinstance(value, ast.Call):
            return _unpicklable_factory(value, owner)
        return None

    def _finding(self, node: ast.AST, path: str, message: str) -> Finding:
        return Finding(
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
        )


def _names(assigns: _AssignMap) -> Set[str]:
    return set(assigns)


def _assignments(
    scope: Union[ast.Module, ast.FunctionDef, ast.AsyncFunctionDef]
) -> _AssignMap:
    """Last direct ``name = expr`` binding per name in ``scope``'s body
    (nested function/class bodies are separate scopes and are skipped)."""
    assigns: _AssignMap = {}
    for stmt in _own_statements(scope):
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    assigns[target.id] = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name):
                assigns[stmt.target.id] = stmt.value
    return assigns


def _own_statements(
    scope: Union[ast.Module, ast.FunctionDef, ast.AsyncFunctionDef]
) -> Iterator[ast.stmt]:
    """Statements in ``scope``, descending into control flow but not into
    nested function/class scopes."""
    pending = list(scope.body)
    while pending:
        stmt = pending.pop()
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        yield stmt
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                pending.append(child)
            elif hasattr(child, "body"):
                body = getattr(child, "body")
                if isinstance(body, list):
                    pending.extend(
                        s for s in body if isinstance(s, ast.stmt)
                    )


def _resolve_name(
    name: str,
    local_assigns: _AssignMap,
    module_assigns: _AssignMap,
    mod: ModuleInfo,
    index: ProjectIndex,
) -> Optional[Tuple[ast.expr, ModuleInfo]]:
    """The expression ``name`` is bound to, with the module owning it.

    Resolution order mirrors Python's: enclosing-function locals, then
    the dispatching module's top level, then a from-imported module-level
    binding in another indexed module.  Returns ``(expr, owner_module)``
    or None when nothing statically resolvable binds the name.
    """
    value = local_assigns.get(name)
    if value is not None:
        return (value, mod)
    value = module_assigns.get(name)
    if value is not None:
        return (value, mod)
    dotted = mod.from_imports.get(name)
    if dotted is not None:
        target_mod_name, _, attr = dotted.rpartition(".")
        target_mod = index.modules.get(target_mod_name)
        if target_mod is not None:
            remote = _assignments(target_mod.tree).get(attr)
            if remote is not None:
                return (remote, target_mod)
    return None


def _unpicklable_factory(call: ast.Call, mod: ModuleInfo) -> Optional[str]:
    """Why ``call`` produces an unpicklable object, or None."""
    func = call.func
    if isinstance(func, ast.Name):
        if func.id == "open" and "open" not in mod.from_imports:
            return "an open file handle"
        dotted = mod.from_imports.get(func.id)
        if dotted is not None:
            owner, _, attr = dotted.rpartition(".")
            if owner in _SYNC_MODULES and attr in _SYNC_FACTORIES:
                return f"a {owner}.{attr}()"
    elif isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        owner = mod.module_imports.get(func.value.id)
        if owner in _SYNC_MODULES and func.attr in _SYNC_FACTORIES:
            return f"a {owner}.{func.attr}()"
    return None

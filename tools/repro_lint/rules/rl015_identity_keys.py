"""RL015: ``id()``/``hash()`` must not order or key simulation objects.

``id(obj)`` is a memory address: it differs between two runs of the
same scenario, between processes, and between allocator states.
``hash(obj)`` on a class without ``__hash__`` *is* ``id``-derived.
Sorting by either, or keying a dict/defaultdict with either, produces
an ordering (and hence a float-fold order, a tie-break, an iteration
order) that cannot reproduce across runs — precisely the
non-determinism the engine's tuple-keyed heaps and sorted iterations
exist to avoid.  Key on the domain identity (task id, node name,
(task, job, stage) tuples) instead.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro_lint.engine import Context, Finding, Rule
from repro_lint.rules import register

_IDENTITY_FNS = {"id", "hash"}


@register
class IdentityKeyRule(Rule):
    rule_id = "RL015"
    summary = "no id()/hash() as sort keys or mapping keys"
    rationale = (
        "id() is a per-process memory address and default hash() is "
        "id-derived; ordering or keying on them cannot reproduce "
        "across runs — key on domain identity instead"
    )
    node_types = (ast.Call, ast.Subscript, ast.Dict, ast.DictComp)
    include = ("src/",)

    def visit(self, node: ast.AST, ctx: Context) -> Iterator[Finding]:
        if isinstance(node, ast.Call):
            yield from self._check_sort(node, ctx)
        elif isinstance(node, ast.DictComp):
            what = self._identity_call(node.key)
            if what is not None:
                yield self._finding(
                    node.key,
                    ctx,
                    f"{what} used as a dict key; per-process identities "
                    "cannot reproduce across runs — key on domain "
                    "identity instead",
                )
        elif isinstance(node, ast.Subscript):
            what = self._identity_call(node.slice)
            if what is not None:
                yield self._finding(
                    node,
                    ctx,
                    f"{what} used as a mapping key in "
                    f"{self.excerpt(node)}; per-process identities "
                    "cannot reproduce across runs — key on domain "
                    "identity instead",
                )
        elif isinstance(node, ast.Dict):
            for key in node.keys:
                if key is None:
                    continue
                what = self._identity_call(key)
                if what is not None:
                    yield self._finding(
                        key,
                        ctx,
                        f"{what} used as a dict key; per-process "
                        "identities cannot reproduce across runs — key "
                        "on domain identity instead",
                    )

    # ------------------------------------------------------------------
    def _check_sort(self, node: ast.Call, ctx: Context) -> Iterator[Finding]:
        func = node.func
        is_sort = (
            isinstance(func, ast.Name) and func.id in ("sorted", "min", "max")
        ) or (isinstance(func, ast.Attribute) and func.attr == "sort")
        if not is_sort:
            return
        for kw in node.keywords:
            if kw.arg != "key":
                continue
            what = self._identity_key(kw.value)
            if what is not None:
                yield self._finding(
                    kw.value,
                    ctx,
                    f"{what} used as an ordering key in "
                    f"{self.excerpt(node)}; per-process identities "
                    "cannot reproduce across runs — sort by domain "
                    "identity instead",
                )

    def _identity_key(self, expr: ast.expr) -> Optional[str]:
        if isinstance(expr, ast.Name) and expr.id in _IDENTITY_FNS:
            return f"{expr.id}()"
        if isinstance(expr, ast.Lambda):
            for sub in ast.walk(expr.body):
                what = self._identity_call(sub)
                if what is not None:
                    return what
        return None

    @staticmethod
    def _identity_call(expr: ast.AST) -> Optional[str]:
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id in _IDENTITY_FNS
        ):
            return f"{expr.func.id}()"
        return None

    def _finding(self, node: ast.AST, ctx: Context, message: str) -> Finding:
        return Finding(
            path=ctx.path,
            line=node.lineno,
            col=node.col_offset,
            rule_id=self.rule_id,
            message=message,
        )

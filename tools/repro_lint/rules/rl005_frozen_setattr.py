"""RL005: no ``object.__setattr__`` on frozen instances from outside.

Frozen dataclasses (``Scenario``, ``BatchCandidate``, the workload
specs ...) are this repo's immutability contract: once built they are
safe to share across processes and hash into caches.  The canonical
escape hatch — ``object.__setattr__(self, ...)`` inside the defining
class's own ``__post_init__``/methods — is fine; reaching into someone
else's frozen instance from the outside mutates state every cache and
parity assumption says cannot change.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro_lint.engine import Context, Finding, Rule
from repro_lint.rules import register


@register
class FrozenSetattrRule(Rule):
    rule_id = "RL005"
    summary = "object.__setattr__ only on self inside the defining class"
    rationale = (
        "frozen dataclasses are shared and cached on the promise they "
        "never change; outside mutation invalidates caches and parity"
    )
    node_types = (ast.Call,)

    def visit(self, node: ast.AST, ctx: Context) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr == "__setattr__"
            and isinstance(func.value, ast.Name)
            and func.value.id == "object"
        ):
            return
        if self._is_self_in_method(node, ctx):
            return
        target = self.excerpt(node.args[0]) if node.args else "<no target>"
        yield Finding(
            path=ctx.path,
            line=node.lineno,
            col=node.col_offset,
            rule_id=self.rule_id,
            message=(
                f"object.__setattr__ on {target} outside the defining "
                "class mutates a frozen instance; move the write into the "
                "owning class or build a new instance"
            ),
        )

    @staticmethod
    def _is_self_in_method(node: ast.Call, ctx: Context) -> bool:
        """True for ``object.__setattr__(self, ...)`` inside a method of
        the enclosing class (the frozen-dataclass escape hatch)."""
        if ctx.enclosing_class() is None:
            return False
        function = ctx.enclosing_function()
        if function is None:
            return False
        args = function.args.posonlyargs + function.args.args
        if not args:
            return False
        first = args[0].arg
        return bool(
            node.args
            and isinstance(node.args[0], ast.Name)
            and node.args[0].id == first
        )

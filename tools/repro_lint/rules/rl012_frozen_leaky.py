"""RL012: frozen dataclasses must not expose mutable container fields.

``frozen=True`` promises value semantics: the public result/scenario
types are safe to share, hash (where eq permits), cache, and send across
processes.  A ``list``/``dict``/``set`` field silently breaks the
promise — the *binding* is frozen but the container is not, so a caller
can mutate a result another caller already holds, and two structurally
equal values can diverge after construction.  Frozen surfaces should
carry ``Tuple``/``Mapping``-proxy conversions of their containers (or
baseline the field with a justification when the dict is written once
at construction and the proxy cannot cross a pickle boundary).

Scoped to ``repro.api`` — the public frozen surface.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro_lint.engine import Context, Finding, Rule
from repro_lint.rules import register

_MUTABLE = {
    "list": "list",
    "List": "list",
    "dict": "dict",
    "Dict": "dict",
    "set": "set",
    "Set": "set",
    "defaultdict": "dict",
    "MutableMapping": "dict",
    "MutableSequence": "list",
    "MutableSet": "set",
}


@register
class FrozenLeakyRule(Rule):
    rule_id = "RL012"
    summary = "no mutable container fields on frozen dataclasses"
    rationale = (
        "frozen=True promises value semantics; a list/dict/set field "
        "leaks mutability through the frozen surface — convert to "
        "Tuple/MappingProxyType or justify in the baseline"
    )
    node_types = (ast.ClassDef,)
    include = ("src/repro/api/",)

    def visit(self, node: ast.AST, ctx: Context) -> Iterator[Finding]:
        assert isinstance(node, ast.ClassDef)
        if not self._is_frozen_dataclass(node):
            return
        for stmt in node.body:
            if not isinstance(stmt, ast.AnnAssign):
                continue
            if not isinstance(stmt.target, ast.Name):
                continue
            kind = self._mutable_kind(stmt.annotation)
            if kind is not None:
                yield Finding(
                    path=ctx.path,
                    line=stmt.lineno,
                    col=stmt.col_offset,
                    rule_id=self.rule_id,
                    message=(
                        f"frozen dataclass {node.name}.{stmt.target.id} "
                        f"is annotated "
                        f"{self.excerpt(stmt.annotation)}: a mutable "
                        f"{kind} field leaks mutability through the "
                        "frozen surface; use Tuple/MappingProxyType or "
                        "justify in the baseline"
                    ),
                )

    @staticmethod
    def _is_frozen_dataclass(node: ast.ClassDef) -> bool:
        for deco in node.decorator_list:
            if not isinstance(deco, ast.Call):
                continue
            func = deco.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name != "dataclass":
                continue
            for kw in deco.keywords:
                if (
                    kw.arg == "frozen"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                ):
                    return True
        return False

    @staticmethod
    def _mutable_kind(annotation: ast.expr) -> Optional[str]:
        probe = annotation
        if isinstance(probe, ast.Subscript):
            probe = probe.value
        name = None
        if isinstance(probe, ast.Name):
            name = probe.id
        elif isinstance(probe, ast.Attribute):
            name = probe.attr
        if name is None:
            return None
        return _MUTABLE.get(name)

"""RL009: environment variables are read only in designated entry points.

A scenario is supposed to be seed-complete: the same Scenario JSON must
produce the same result on any machine.  ``os.environ`` reads scattered
through the engine re-introduce ambient configuration that never appears
in the scenario, so two "identical" runs diverge because of a forgotten
shell export.  All environment access in ``src/repro`` goes through the
designated config entry points (``repro/env.py``, and the CLI which is
by definition process-boundary code); everything else receives plain
parameters.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro_lint.engine import Context, Finding, Rule
from repro_lint.rules import register


@register
class EnvReadRule(Rule):
    rule_id = "RL009"
    summary = "os.environ reads only in designated config entry points"
    rationale = (
        "ambient env reads make 'identical' scenarios machine-dependent; "
        "route them through repro/env.py and pass plain parameters down"
    )
    node_types = (ast.Attribute, ast.Name)
    include = ("src/",)
    exclude = ("src/repro/env.py", "src/repro/cli.py")

    def visit(self, node: ast.AST, ctx: Context) -> Iterator[Finding]:
        if isinstance(node, ast.Attribute):
            if (
                node.attr in ("environ", "getenv", "putenv", "environb")
                and isinstance(node.value, ast.Name)
                and node.value.id == "os"
                and "os" in ctx.module_imports
            ):
                yield self._finding(node, ctx, f"os.{node.attr}")
        elif isinstance(node, ast.Name):
            origin = ctx.from_imports.get(node.id)
            if origin in ("os.environ", "os.getenv") and not isinstance(
                node.ctx, ast.Store
            ):
                yield self._finding(node, ctx, origin)

    def _finding(self, node: ast.AST, ctx: Context, what: str) -> Finding:
        return Finding(
            path=ctx.path,
            line=node.lineno,
            col=node.col_offset,
            rule_id=self.rule_id,
            message=(
                f"{what} read outside the designated config entry points "
                "(repro/env.py, repro/cli.py); accept a parameter and "
                "resolve the env var at the entry point"
            ),
        )

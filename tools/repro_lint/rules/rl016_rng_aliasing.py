"""RL016: one named RNG stream, one drawing component.

``RngRegistry`` exists so distinct concerns draw from decorrelated
streams: adding a draw in one component must not perturb another's
sequence.  Two components calling ``rngs.stream("jitter")`` quietly
re-couple themselves through the shared generator — the exact aliasing
the named streams were introduced to remove, and invisible at either
call site alone.  The rule groups every literal ``.stream("name")``
call site in the project by stream name and flags the names drawn by
more than one component (a component is the top-level class or function
owning the call; different modules are always different components).

Deliberate sharing — a registry scoped to one run, or a worker
re-deriving the exact stream a serial loop used — is baselined with a
justification rather than restructured.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, List

from repro_lint.engine import Finding, Rule
from repro_lint.project import ProjectIndex, StreamSite
from repro_lint.rules import register


@register
class RngAliasingRule(Rule):
    rule_id = "RL016"
    summary = "no RNG stream name drawn by more than one component"
    rationale = (
        "two components sharing one stream re-couple their draw "
        "sequences; derive a named substream (or a spawned registry) "
        "per component"
    )
    include = ("src/",)

    def check_index(self, index: ProjectIndex) -> Iterator[Finding]:
        by_stream: Dict[str, List[StreamSite]] = defaultdict(list)
        for site in index.stream_sites:
            if self.applies_to(site.path):
                by_stream[site.stream].append(site)
        for stream, sites in sorted(by_stream.items()):
            components = {(s.module, s.component) for s in sites}
            if len(components) < 2:
                continue
            names = sorted(
                f"{module}:{component}" for module, component in components
            )
            for site in sorted(sites, key=lambda s: (s.path, s.line, s.col)):
                yield Finding(
                    path=site.path,
                    line=site.line,
                    col=site.col,
                    rule_id=self.rule_id,
                    message=(
                        f"RNG stream {stream!r} is drawn by "
                        f"{len(components)} components "
                        f"({', '.join(names)}); shared draws re-couple "
                        "their sequences — derive a named substream per "
                        "component"
                    ),
                )

"""RL007: every public ``repro.api`` symbol is documented in docs/API.md.

``repro.api`` is the single supported surface; an exported symbol the
API document never mentions is either an accidental export or an
undocumented feature — both erode the "one public surface" contract the
PR 2 redesign established.  The rule reads ``__all__`` from
``src/repro/api/__init__.py`` (statically — no import) and checks each
name appears somewhere in ``docs/API.md``.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterator, List, Sequence, Tuple

from repro_lint.engine import Finding, Rule
from repro_lint.rules import register

_API_INIT = "src/repro/api/__init__.py"
_API_DOC = "docs/API.md"


@register
class ApiDocsRule(Rule):
    rule_id = "RL007"
    summary = "public repro.api symbols must appear in docs/API.md"
    rationale = (
        "repro.api is the single supported surface; an undocumented "
        "export is either accidental or an undocumented feature"
    )
    node_types = ()  # project-level: no per-node visits

    def check_project(self, root: Path, paths: Sequence[str]) -> Iterator[Finding]:
        if _API_INIT not in paths:
            return
        init_path = root / _API_INIT
        doc_path = root / _API_DOC
        if not doc_path.exists():
            yield Finding(
                path=_API_DOC,
                line=1,
                col=0,
                rule_id=self.rule_id,
                message=(
                    f"{_API_DOC} is missing but {_API_INIT} exports public "
                    "symbols that must be documented there"
                ),
            )
            return
        doc_text = doc_path.read_text(encoding="utf-8")
        for name, line in self._exported(init_path):
            if not re.search(rf"\b{re.escape(name)}\b", doc_text):
                yield Finding(
                    path=_API_INIT,
                    line=line,
                    col=0,
                    rule_id=self.rule_id,
                    message=(
                        f"public repro.api symbol {name!r} is not mentioned "
                        f"in {_API_DOC}; document it or drop it from __all__"
                    ),
                )

    @staticmethod
    def _exported(init_path: Path) -> List[Tuple[str, int]]:
        """(name, lineno) for every string element of ``__all__``."""
        tree = ast.parse(init_path.read_text(encoding="utf-8"))
        for node in tree.body:
            if isinstance(node, ast.Assign):
                targets = [
                    t.id for t in node.targets if isinstance(t, ast.Name)
                ]
                if "__all__" in targets and isinstance(
                    node.value, (ast.List, ast.Tuple)
                ):
                    return [
                        (element.value, element.lineno)
                        for element in node.value.elts
                        if isinstance(element, ast.Constant)
                        and isinstance(element.value, str)
                    ]
        return []

"""Rule registry: importing this package registers every rule module.

A rule module defines one or more :class:`repro_lint.engine.Rule`
subclasses and decorates them with :func:`register`.  ``all_rules()``
instantiates the full set in rule-id order — the engine, the CLI and
the unit tests all build their rule lists from here, so dropping a new
``rlNNN_*.py`` module into this package is the whole integration.
"""

from __future__ import annotations

import importlib
import pkgutil
from typing import Dict, List, Type

from repro_lint.engine import Rule

_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the registry (id must be unique)."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} needs a rule_id")
    existing = _REGISTRY.get(cls.rule_id)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"duplicate rule id {cls.rule_id}: {existing.__name__} and "
            f"{cls.__name__}"
        )
    _REGISTRY[cls.rule_id] = cls
    return cls


def _load_rule_modules() -> None:
    package = __name__
    for module in pkgutil.iter_modules(__path__):
        if module.name.startswith("rl"):
            importlib.import_module(f"{package}.{module.name}")


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, sorted by id."""
    _load_rule_modules()
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def rule_classes() -> Dict[str, Type[Rule]]:
    _load_rule_modules()
    return dict(_REGISTRY)

"""RL006: experiment-cell payloads must be picklable by construction.

``run_cells`` fans cells out over a multiprocessing pool.  Lambdas and
functions defined inside another function cannot be pickled, so a cell
function (or a cell argument) built that way works in the serial
fallback and then dies — or worse, silently changes behavior — the
moment the pool actually spins up.  Cell functions must be module-level;
so must anything callable carried inside a cell tuple.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro_lint.engine import Context, Finding, Rule
from repro_lint.rules import register

#: Call targets that dispatch cells to the multiprocessing pool.
_DISPATCHERS = {"run_cells"}


@register
class UnpicklableCellRule(Rule):
    rule_id = "RL006"
    summary = "no lambdas or nested functions in run_cells arguments"
    rationale = (
        "cells cross process boundaries; lambdas/closures pickle only in "
        "the serial fallback and break the parallel path"
    )
    node_types = (ast.Call,)

    def visit(self, node: ast.AST, ctx: Context) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name not in _DISPATCHERS:
            return
        nested = self._nested_function_names(ctx)
        # cost_key is consumed in the parent process (it orders submission
        # before pickling) and never crosses the pool boundary.
        arguments = list(node.args) + [
            kw.value for kw in node.keywords if kw.arg != "cost_key"
        ]
        for arg in arguments:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Lambda):
                    yield self._finding(
                        sub,
                        ctx,
                        f"lambda passed into {name}() cannot be pickled "
                        "for the worker pool; use a module-level function",
                    )
                elif isinstance(sub, ast.Name) and sub.id in nested:
                    yield self._finding(
                        sub,
                        ctx,
                        f"nested function {sub.id!r} passed into {name}() "
                        "cannot be pickled for the worker pool; move it to "
                        "module level",
                    )

    @staticmethod
    def _nested_function_names(ctx: Context) -> Set[str]:
        """Functions defined inside the enclosing function (unpicklable)."""
        enclosing = ctx.enclosing_function()
        if enclosing is None:
            return set()
        names: Set[str] = set()
        for sub in ast.walk(enclosing):
            if (
                isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
                and sub is not enclosing
            ):
                names.add(sub.name)
        return names

    def _finding(self, node: ast.AST, ctx: Context, message: str) -> Finding:
        return Finding(
            path=ctx.path,
            line=node.lineno,
            col=node.col_offset,
            rule_id=self.rule_id,
            message=message,
        )

"""RL002: no ambient ``random`` state; RNGs are threaded as parameters.

The module-level functions of :mod:`random` (``random.random()``,
``random.choice`` ...) all share one hidden global generator, and a bare
``random.Random()`` seeds itself from the OS.  Either one makes a result
depend on *every other* draw that happened first (or on nothing
reproducible at all).  This repo derives every stream from a master seed
in ``repro/sim/rng.py`` and passes ``random.Random`` instances down
explicitly — the only place allowed to construct them from scratch.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro_lint.engine import Context, Finding, Rule
from repro_lint.rules import register

#: random-module functions that mutate/read the hidden global generator.
_AMBIENT = {
    "random", "seed", "randint", "randrange", "choice", "choices",
    "shuffle", "sample", "uniform", "triangular", "betavariate",
    "expovariate", "gammavariate", "gauss", "lognormvariate",
    "normalvariate", "vonmisesvariate", "paretovariate",
    "weibullvariate", "getrandbits", "getstate", "setstate", "randbytes",
    "binomialvariate",
}


@register
class AmbientRngRule(Rule):
    rule_id = "RL002"
    summary = "no ambient random.* calls; no unseeded random.Random()"
    rationale = (
        "shared global RNG state couples unrelated draws and unseeded "
        "generators are irreproducible; derive streams via sim/rng.py and "
        "thread them as parameters"
    )
    node_types = (ast.Call, ast.ImportFrom)
    exclude = ("src/repro/sim/rng.py",)

    def visit(self, node: ast.AST, ctx: Context) -> Iterator[Finding]:
        if isinstance(node, ast.ImportFrom):
            yield from self._check_import(node, ctx)
            return
        assert isinstance(node, ast.Call)
        func = node.func
        # random.<ambient>() and random.Random() attribute calls.
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            if func.value.id == "random" and "random" in ctx.module_imports:
                if func.attr in _AMBIENT:
                    yield self._finding(
                        node,
                        ctx,
                        f"ambient RNG call random.{func.attr}() uses the "
                        "hidden global generator; thread a seeded "
                        "random.Random through instead",
                    )
                elif func.attr == "Random" and not node.args and not node.keywords:
                    yield self._finding(
                        node,
                        ctx,
                        "unseeded random.Random() draws its seed from the "
                        "OS; construct streams via repro.sim.rng.RngRegistry",
                    )
        # from random import choice; choice(...) / Random()
        elif isinstance(func, ast.Name):
            origin = ctx.from_imports.get(func.id)
            if origin and origin.startswith("random."):
                leaf = origin.split(".", 1)[1]
                if leaf in _AMBIENT:
                    yield self._finding(
                        node,
                        ctx,
                        f"ambient RNG call {func.id}() (from random import "
                        f"{leaf}) uses the hidden global generator",
                    )
                elif leaf == "Random" and not node.args and not node.keywords:
                    yield self._finding(
                        node,
                        ctx,
                        "unseeded Random() draws its seed from the OS; "
                        "construct streams via repro.sim.rng.RngRegistry",
                    )

    def _check_import(self, node: ast.ImportFrom, ctx: Context) -> Iterator[Finding]:
        if node.module != "random":
            return
        for alias in node.names:
            if alias.name in _AMBIENT:
                yield Finding(
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule_id=self.rule_id,
                    message=(
                        f"from random import {alias.name} binds an ambient "
                        "global-state function; import Random and seed it"
                    ),
                )

    def _finding(self, node: ast.AST, ctx: Context, message: str) -> Finding:
        return Finding(
            path=ctx.path,
            line=node.lineno,
            col=node.col_offset,
            rule_id=self.rule_id,
            message=message,
        )

"""RL013: functions dispatched via ``run_cells`` must not read ambient state.

A cell runs in a worker process.  With the fork start method workers
inherit the parent's environment, so an ``os.environ`` (or ``repro.env``
helper) read inside a cell *happens to* agree with the parent — until
the executor becomes spawn-based or distributed, where the worker's
environment is whatever the remote machine has.  Results silently
depend on which machine ran the cell: the exact non-determinism the
seed-complete Scenario contract exists to prevent.

The rule walks the project call graph from every function the index can
resolve as a ``run_cells`` payload and reports the ones that can reach
an environment read — a direct ``os.environ``-family access, or a call
into :mod:`repro.env` (the designated entry point is *parent-side*
code; reading it from a worker is still an ambient read).  Reachability
follows only statically resolved references (see
:mod:`repro_lint.project`), so every finding corresponds to a concrete
call chain in the source.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro_lint.engine import Finding, Rule
from repro_lint.project import FunctionKey, ProjectIndex
from repro_lint.rules import register

#: At most this many distinct sinks are named per finding.
_SINK_CAP = 3


@register
class WorkerEnvReadRule(Rule):
    rule_id = "RL013"
    summary = "no environment reads reachable from run_cells payloads"
    rationale = (
        "cells run in worker processes that may not share the parent's "
        "environment; ambient reads make results machine-dependent — "
        "resolve env knobs parent-side and pass plain values in the cell"
    )

    def check_index(self, index: ProjectIndex) -> Iterator[Finding]:
        seeds: Set[FunctionKey] = {
            site.target
            for site in index.dispatch_sites
            if site.target is not None
        }
        for seed in sorted(seeds):
            info = index.function(seed)
            if info is None or not self.applies_to(info.path):
                continue
            sinks = self._sinks(index, seed)
            if not sinks:
                continue
            shown = sinks[:_SINK_CAP]
            suffix = "" if len(sinks) <= _SINK_CAP else ", ..."
            yield Finding(
                path=info.path,
                line=info.node.lineno,
                col=info.node.col_offset,
                rule_id=self.rule_id,
                message=(
                    f"{info.qualname!r} is dispatched via run_cells but "
                    f"can reach environment read(s) "
                    f"{', '.join(shown)}{suffix}; workers may not share "
                    "the parent's environment — resolve the value "
                    "parent-side and pass it through the cell"
                ),
            )

    @staticmethod
    def _sinks(index: ProjectIndex, seed: FunctionKey) -> List[str]:
        """Sorted descriptors of the env reads reachable from ``seed``."""
        sinks: Set[str] = set()
        for key in index.reachable([seed]):
            info = index.function(key)
            if info is None:
                continue
            if info.module == "repro.env":
                sinks.add(f"repro.env.{info.qualname}")
                continue
            for _line, what in info.env_reads:
                sinks.add(f"{what} in {info.module}.{info.qualname}")
        return sorted(sinks)

"""RL011: merge paths must not accumulate floats over unordered collections.

``StatSnapshot``/``RunResult`` merges fold results produced by parallel
workers.  Float addition is not associative, so the fold order IS part
of the result: iterating ``dict.values()`` (order = whatever insertion
order this process happened to produce) or a set (order = hash
perturbation) while summing produces a value that can differ between
two runs that merged the same snapshots.  Merge paths must iterate in
an explicitly sorted key order so every merge of the same inputs
produces the same bits.

Scoped to merge code in ``repro.api``: functions whose name contains
``merge`` and methods of the mergeable result types themselves.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro_lint.engine import Context, Finding, Rule
from repro_lint.rules import register

#: Classes whose methods are merge paths by definition.
_MERGE_CLASSES = {"StatSnapshot", "RunResult"}


@register
class MergeOrderRule(Rule):
    rule_id = "RL011"
    summary = "no float accumulation over unordered collections in merges"
    rationale = (
        "float addition is order-dependent; merging worker results over "
        "dict.values()/set iteration makes the merged bits depend on "
        "insertion/hash order — iterate sorted keys instead"
    )
    node_types = (ast.Call, ast.For)
    include = ("src/repro/api/",)

    def visit(self, node: ast.AST, ctx: Context) -> Iterator[Finding]:
        if not self._in_merge_path(ctx):
            return
        if isinstance(node, ast.Call):
            yield from self._check_sum(node, ctx)
        elif isinstance(node, ast.For):
            yield from self._check_loop(node, ctx)

    # ------------------------------------------------------------------
    def _in_merge_path(self, ctx: Context) -> bool:
        fn = ctx.enclosing_function()
        if fn is not None and "merge" in fn.name.lower():
            return True
        cls = ctx.enclosing_class()
        return cls is not None and cls.name in _MERGE_CLASSES

    def _check_sum(self, node: ast.Call, ctx: Context) -> Iterator[Finding]:
        if not (isinstance(node.func, ast.Name) and node.func.id == "sum"):
            return
        if not node.args:
            return
        unordered = self._unordered_source(node.args[0])
        if unordered is not None:
            yield self._finding(
                node,
                ctx,
                f"sum() over unordered {unordered} in a merge path; the "
                "merged float depends on iteration order — sum over "
                "sorted(keys) instead",
            )

    def _check_loop(self, node: ast.For, ctx: Context) -> Iterator[Finding]:
        unordered = self._unordered_source(node.iter)
        if unordered is None:
            return
        for sub in ast.walk(node):
            if isinstance(sub, ast.AugAssign) and isinstance(
                sub.op, (ast.Add, ast.Sub)
            ):
                yield self._finding(
                    node,
                    ctx,
                    f"accumulation over unordered {unordered} in a merge "
                    "path; the merged float depends on iteration order — "
                    "iterate sorted(keys) instead",
                )
                return

    def _unordered_source(self, expr: ast.expr) -> Optional[str]:
        """Name the unordered collection ``expr`` iterates, if any."""
        probe = expr
        if isinstance(probe, (ast.GeneratorExp, ast.ListComp)):
            probe = probe.generators[0].iter
        if (
            isinstance(probe, ast.Call)
            and isinstance(probe.func, ast.Attribute)
            and probe.func.attr == "values"
            and not probe.args
        ):
            return f"{self.excerpt(probe)}"
        if isinstance(probe, (ast.Set, ast.SetComp)):
            return f"set {self.excerpt(probe)}"
        if (
            isinstance(probe, ast.Call)
            and isinstance(probe.func, ast.Name)
            and probe.func.id in ("set", "frozenset")
        ):
            return f"{self.excerpt(probe)}"
        return None

    def _finding(self, node: ast.AST, ctx: Context, message: str) -> Finding:
        return Finding(
            path=ctx.path,
            line=node.lineno,
            col=node.col_offset,
            rule_id=self.rule_id,
            message=message,
        )

"""RL004: no ``==``/``!=`` on float expressions outside parity modules.

Float equality is almost always a latent tolerance bug — *except* in
this repo's oracle-parity tests, where exact equality is the entire
point (batched paths must produce bit-identical floats to their
sequential oracles).  So the designated parity/property test modules are
exempt, and everything else must either use the EPSILON-style tolerance
helpers or carry an explicit justification (suppression or baseline
entry — e.g. an exact ``x == 0.0`` skip of a no-op delta is legitimate
and self-documenting once justified).

Detection is syntactic: a comparison is flagged when either side is an
obvious float expression — a float literal, a ``float(...)`` cast, or a
``math.*`` call — since Python ASTs carry no type information.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro_lint.engine import Context, Finding, Rule
from repro_lint.rules import register

#: Calls that ARE tolerance helpers: comparing against them is the fix,
#: not the bug.
_TOLERANCE_HELPERS = {"approx", "isclose"}


def _is_tolerance_helper(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = func.id if isinstance(func, ast.Name) else (
        func.attr if isinstance(func, ast.Attribute) else None
    )
    return name in _TOLERANCE_HELPERS


def _is_float_expr(node: ast.AST, ctx: Context) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _is_float_expr(node.operand, ctx)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            # True division always yields a float.
            return True
        return _is_float_expr(node.left, ctx) or _is_float_expr(node.right, ctx)
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "float":
                return True
            origin = ctx.from_imports.get(func.id, "")
            return origin.startswith("math.")
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            return func.value.id == "math"
    return False


@register
class FloatEqualityRule(Rule):
    rule_id = "RL004"
    summary = "no ==/!= on float expressions outside parity-test modules"
    rationale = (
        "float equality is a tolerance bug outside the oracle-parity tests "
        "where bit-identity is the contract; use EPSILON helpers or "
        "justify the exact comparison"
    )
    node_types = (ast.Compare,)
    # Parity/property modules assert exact float equality on purpose.
    exclude = (
        "tests/test_api_parity.py",
        "tests/test_property_*.py",
        "tests/test_pairing.py",
    )

    def visit(self, node: ast.AST, ctx: Context) -> Iterator[Finding]:
        assert isinstance(node, ast.Compare)
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_tolerance_helper(left) or _is_tolerance_helper(right):
                continue
            if _is_float_expr(left, ctx) or _is_float_expr(right, ctx):
                symbol = "==" if isinstance(op, ast.Eq) else "!="
                yield Finding(
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule_id=self.rule_id,
                    message=(
                        f"float {symbol} comparison "
                        f"({self.excerpt(left)} {symbol} {self.excerpt(right)}) "
                        "outside a designated parity module; use a tolerance "
                        "helper or justify the exact comparison"
                    ),
                )

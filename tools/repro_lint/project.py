"""Whole-program index for flow-aware rules.

The per-file walk (``LintEngine._walk``) sees one module at a time; the
cross-process rules (RL010/RL013/RL016) need to answer questions that
span modules: *which function does this ``run_cells`` argument resolve
to?*  *can that function reach an environment read?*  *who else draws
from this named RNG stream?*  :class:`ProjectIndex` is the shared
substrate: a symbol table of every module/class/function in the scanned
tree, a best-effort call graph over **resolved** names, the set of
functions dispatched through ``run_cells``, and every literal
``.stream("name")`` site.

Resolution is deliberately conservative — only references the AST pins
down are followed:

* bare ``Name`` calls resolve to same-module definitions or from-imports
  (``from repro.core.middleware import MiddlewareSystem``);
* ``module.attr`` calls resolve when ``module`` is an imported module in
  the index;
* instantiating a class resolves to its ``__init__``;
* ``self.method(...)`` resolves within the enclosing class;
* defining a nested function counts as an edge to it (it only exists to
  be called or returned by its definer).

Unresolvable calls (arbitrary attribute chains, dynamic dispatch) simply
produce no edge, so index-based rules under-approximate reachability and
never invent paths — a finding always corresponds to a chain of
resolvable references that exists in the source.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Fully qualified function identity: (module dotted name, qualname).
FunctionKey = Tuple[str, str]


def module_name_for(rel_path: str) -> str:
    """Dotted module name for a repo-relative path.

    ``src/``-rooted files map to their import name (``src/repro/env.py``
    -> ``repro.env``); everything else maps positionally
    (``tests/test_api.py`` -> ``tests.test_api``), which keeps module
    names unique per file without claiming they are importable.
    """
    path = rel_path
    if path.startswith("src/"):
        path = path[len("src/"):]
    if path.endswith(".py"):
        path = path[: -len(".py")]
    if path.endswith("/__init__"):
        path = path[: -len("/__init__")]
    return path.replace("/", ".")


@dataclass
class FunctionInfo:
    """One function or method definition in the scanned tree."""

    module: str
    qualname: str  # "fn", "Class.method", "outer.<locals>.inner"
    path: str
    node: FunctionNode
    nested: bool  # defined inside another function
    #: Direct ``os.environ``/``os.getenv``-style reads in the body:
    #: (line, description).  Populated regardless of module so RL013 can
    #: treat any function containing one as an environment-read sink.
    env_reads: List[Tuple[int, str]] = field(default_factory=list)
    #: Resolved call targets (edges of the call graph).
    calls: Set[FunctionKey] = field(default_factory=set)

    @property
    def key(self) -> FunctionKey:
        return (self.module, self.qualname)


@dataclass
class ModuleInfo:
    """Symbol table for one scanned file."""

    module: str
    path: str
    tree: ast.Module
    #: alias bound by ``import x.y as z`` -> real dotted module name
    module_imports: Dict[str, str] = field(default_factory=dict)
    #: name bound by ``from x import y as z`` -> "x.y"
    from_imports: Dict[str, str] = field(default_factory=dict)
    #: qualname -> function info (methods keyed "Class.method")
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: top-level class name -> node
    classes: Dict[str, ast.ClassDef] = field(default_factory=dict)


@dataclass(frozen=True, eq=False)
class DispatchSite:
    """One ``run_cells(fn, ...)`` call site."""

    module: str
    path: str
    line: int
    #: Resolved payload function, when the first argument pins one down.
    target: Optional[FunctionKey]
    #: Source text of the first argument (for messages).
    fn_text: str
    #: The call expression itself (payload flow analysis).
    call: ast.Call
    #: Function the call appears in, None for module-level dispatches.
    enclosing: Optional[FunctionNode]


@dataclass(frozen=True)
class StreamSite:
    """One ``<obj>.stream("literal")`` call site."""

    module: str
    path: str
    line: int
    col: int
    stream: str
    #: The component drawing from the stream: enclosing top-level class
    #: or function name, or "<module>" for module-level code.
    component: str


_ENV_READ_ATTRS = {"environ", "environb", "getenv", "putenv", "unsetenv"}


class ProjectIndex:
    """Cross-module symbol table + call graph over the scanned files."""

    def __init__(self, modules: Iterable[ModuleInfo]) -> None:
        self.modules: Dict[str, ModuleInfo] = {m.module: m for m in modules}
        self.functions: Dict[FunctionKey, FunctionInfo] = {}
        for mod in self.modules.values():
            for info in mod.functions.values():
                self.functions[info.key] = info
        self.dispatch_sites: List[DispatchSite] = []
        self.stream_sites: List[StreamSite] = []
        for mod in sorted(self.modules.values(), key=lambda m: m.path):
            _IndexBuilder(mod, self).build()

    # -- construction ---------------------------------------------------
    @classmethod
    def from_trees(
        cls, trees: Iterable[Tuple[str, ast.Module]]
    ) -> "ProjectIndex":
        """Build from already-parsed (repo-relative path, tree) pairs."""
        return cls(_collect_module(path, tree) for path, tree in trees)

    @classmethod
    def from_sources(cls, sources: Mapping[str, str]) -> "ProjectIndex":
        """Build from {repo-relative path: source text} (test helper)."""
        return cls.from_trees(
            (path, ast.parse(text, filename=path))
            for path, text in sources.items()
        )

    # -- queries --------------------------------------------------------
    def function(self, key: FunctionKey) -> Optional[FunctionInfo]:
        return self.functions.get(key)

    def resolve_call(
        self, mod: ModuleInfo, name: str
    ) -> Optional[FunctionKey]:
        """Resolve a bare called name in ``mod`` to a function key."""
        if name in mod.functions:
            return (mod.module, name)
        if name in mod.classes:
            return self._class_init(mod.module, name)
        dotted = mod.from_imports.get(name)
        if dotted is not None:
            target_mod, _, attr = dotted.rpartition(".")
            return self._module_attr(target_mod, attr)
        return None

    def _module_attr(self, module: str, attr: str) -> Optional[FunctionKey]:
        target = self.modules.get(module)
        if target is None:
            return None
        if attr in target.functions:
            return (module, attr)
        if attr in target.classes:
            return self._class_init(module, attr)
        return None

    def _class_init(self, module: str, cls_name: str) -> Optional[FunctionKey]:
        target = self.modules.get(module)
        if target is None:
            return None
        init = f"{cls_name}.__init__"
        if init in target.functions:
            return (module, init)
        # A class without __init__ still exists; no constructor edge.
        return None

    def reachable(self, seeds: Iterable[FunctionKey]) -> Set[FunctionKey]:
        """Functions reachable from ``seeds`` over resolved call edges."""
        seen: Set[FunctionKey] = set()
        frontier = [key for key in seeds if key in self.functions]
        while frontier:
            key = frontier.pop()
            if key in seen:
                continue
            seen.add(key)
            info = self.functions.get(key)
            if info is None:
                continue
            frontier.extend(
                target for target in info.calls if target not in seen
            )
        return seen


def _collect_module(rel_path: str, tree: ast.Module) -> ModuleInfo:
    mod = ModuleInfo(module=module_name_for(rel_path), path=rel_path, tree=tree)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                mod.module_imports[alias.asname or alias.name] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                mod.from_imports[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    _collect_functions(mod, tree.body, prefix="", nested=False)
    return mod


def _collect_functions(
    mod: ModuleInfo,
    body: Iterable[ast.stmt],
    prefix: str,
    nested: bool,
) -> None:
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{prefix}{stmt.name}"
            mod.functions[qualname] = FunctionInfo(
                module=mod.module,
                qualname=qualname,
                path=mod.path,
                node=stmt,
                nested=nested,
            )
            _collect_functions(
                mod, stmt.body, prefix=f"{qualname}.<locals>.", nested=True
            )
        elif isinstance(stmt, ast.ClassDef):
            if not prefix:
                mod.classes[stmt.name] = stmt
            _collect_functions(
                mod, stmt.body, prefix=f"{prefix}{stmt.name}.", nested=nested
            )


class _IndexBuilder(ast.NodeVisitor):
    """Second pass: call edges, env reads, dispatch and stream sites."""

    def __init__(self, mod: ModuleInfo, index: ProjectIndex) -> None:
        self.mod = mod
        self.index = index
        #: innermost enclosing FunctionInfo, or None at module level
        self._function_stack: List[FunctionInfo] = []
        self._class_stack: List[str] = []

    def build(self) -> None:
        self.visit(self.mod.tree)

    # -- scope tracking -------------------------------------------------
    def _qualname(self, name: str) -> str:
        if self._function_stack:
            return f"{self._function_stack[-1].qualname}.<locals>.{name}"
        if self._class_stack:
            return f"{'.'.join(self._class_stack)}.{name}"
        return name

    def _enter_function(self, node: FunctionNode) -> Optional[FunctionInfo]:
        info = self.mod.functions.get(self._qualname(node.name))
        if info is not None and self._function_stack:
            # Defining a nested function is the only way to reach it.
            self._function_stack[-1].calls.add(info.key)
        return info

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._walk_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._walk_function(node)

    def _walk_function(self, node: FunctionNode) -> None:
        info = self._enter_function(node)
        if info is None:  # pragma: no cover - collection covers all defs
            self.generic_visit(node)
            return
        self._function_stack.append(info)
        saved_classes, self._class_stack = self._class_stack, []
        self.generic_visit(node)
        self._class_stack = saved_classes
        self._function_stack.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    # -- facts ----------------------------------------------------------
    def _current(self) -> Optional[FunctionInfo]:
        return self._function_stack[-1] if self._function_stack else None

    def _component(self) -> str:
        """Top-level scope name for stream attribution: the outermost
        class or function owning the call, ``<module>`` otherwise."""
        if self._function_stack:
            return self._function_stack[0].qualname.split(".")[0]
        if self._class_stack:
            return self._class_stack[0]
        return "<module>"

    def visit_Attribute(self, node: ast.Attribute) -> None:
        current = self._current()
        if (
            current is not None
            and node.attr in _ENV_READ_ATTRS
            and isinstance(node.value, ast.Name)
            and self.mod.module_imports.get(node.value.id) == "os"
        ):
            current.env_reads.append(
                (node.lineno, f"os.{node.attr}")
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        current = self._current()
        target: Optional[FunctionKey] = None
        called_name: Optional[str] = None
        if isinstance(node.func, ast.Name):
            called_name = node.func.id
            target = self.index.resolve_call(self.mod, node.func.id)
            # ``from os import getenv``-style env reads.
            dotted = self.mod.from_imports.get(node.func.id, "")
            if current is not None and dotted.startswith("os."):
                if dotted[len("os."):] in _ENV_READ_ATTRS:
                    current.env_reads.append((node.lineno, dotted))
        elif isinstance(node.func, ast.Attribute):
            called_name = node.func.attr
            base = node.func.value
            if isinstance(base, ast.Name):
                imported = self.mod.module_imports.get(base.id)
                if imported is None:
                    dotted = self.mod.from_imports.get(base.id)
                    if dotted is not None:
                        imported = dotted  # ``from repro import sanitize``
                if imported is not None:
                    target = self.index._module_attr(imported, node.func.attr)
                elif base.id == "self" and self._class_stack:
                    qual = f"{'.'.join(self._class_stack)}.{node.func.attr}"
                    if qual in self.mod.functions:
                        target = (self.mod.module, qual)
            # Stream sites: <obj>.stream("literal")
            if (
                node.func.attr == "stream"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                self.index.stream_sites.append(
                    StreamSite(
                        module=self.mod.module,
                        path=self.mod.path,
                        line=node.lineno,
                        col=node.col_offset,
                        stream=node.args[0].value,
                        component=self._component(),
                    )
                )
        if current is not None and target is not None:
            current.calls.add(target)
        if called_name == "run_cells":
            self._record_dispatch(node)
        self.generic_visit(node)

    def _record_dispatch(self, node: ast.Call) -> None:
        if not node.args:
            return
        fn_arg = node.args[0]
        target: Optional[FunctionKey] = None
        if isinstance(fn_arg, ast.Name):
            target = self.index.resolve_call(self.mod, fn_arg.id)
        try:
            fn_text = ast.unparse(fn_arg)
        except Exception:  # pragma: no cover - unparse is total on 3.9+
            fn_text = type(fn_arg).__name__
        current = self._current()
        self.index.dispatch_sites.append(
            DispatchSite(
                module=self.mod.module,
                path=self.mod.path,
                line=node.lineno,
                target=target,
                fn_text=fn_text,
                call=node,
                enclosing=current.node if current is not None else None,
            )
        )

"""Engine behavior: suppressions, baseline lifecycle, CLI contract."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro_lint.baseline import Baseline
from repro_lint.cli import main
from repro_lint.engine import Finding, lint_source

REPO_ROOT = Path(__file__).resolve().parents[3]

POSITIVE = "def f(acc=[]):\n    return acc\n"


# ----------------------------------------------------------------------
# Inline suppressions
# ----------------------------------------------------------------------
def test_same_line_suppression():
    source = "def f(acc=[]):  # repro-lint: disable=RL008\n    return acc\n"
    assert lint_source(source, "src/repro/x.py") == []


def test_previous_line_suppression():
    source = (
        "# repro-lint: disable=RL008\n"
        "def f(acc=[]):\n"
        "    return acc\n"
    )
    assert lint_source(source, "src/repro/x.py") == []


def test_disable_all_and_multiple_rules():
    source = (
        "import os\n"
        "def f(acc=[]):  # repro-lint: disable=RL008,RL009\n"
        "    return acc, os.getenv('X')\n"
    )
    found = lint_source(source, "src/repro/x.py")
    # RL008 suppressed on line 2; the env read on line 3 still fires.
    assert [f.rule_id for f in found] == ["RL009"]
    source_all = source.replace("disable=RL008,RL009", "disable=all")
    found_all = lint_source(source_all, "src/repro/x.py")
    assert [f.rule_id for f in found_all] == ["RL009"]


def test_suppressing_a_different_rule_does_not_hide_findings():
    source = "def f(acc=[]):  # repro-lint: disable=RL001\n    return acc\n"
    found = lint_source(source, "src/repro/x.py")
    assert [f.rule_id for f in found] == ["RL008"]


# ----------------------------------------------------------------------
# Baseline lifecycle
# ----------------------------------------------------------------------
def _finding(message="m", rule="RL008", path="src/repro/x.py", line=1):
    return Finding(path=path, line=line, col=0, rule_id=rule, message=message)


def test_baseline_multiset_matching():
    entries = [
        {"rule": "RL008", "path": "src/repro/x.py", "message": "m",
         "justification": "grandfathered"},
    ]
    baseline = Baseline(entries)
    # Two identical findings, one baseline entry: one stays fresh.
    fresh, stale = baseline.split([_finding(line=1), _finding(line=9)])
    assert len(fresh) == 1 and stale == []
    # Line numbers are irrelevant to matching.
    fresh, stale = baseline.split([_finding(line=42)])
    assert fresh == [] and stale == []
    # No findings at all: the entry is stale.
    fresh, stale = baseline.split([])
    assert fresh == [] and len(stale) == 1


def test_baseline_regeneration_preserves_justifications(tmp_path):
    previous = Baseline(
        [
            {"rule": "RL008", "path": "src/repro/x.py", "message": "m",
             "justification": "because reasons"},
        ]
    )
    regenerated = Baseline.from_findings(
        [_finding(), _finding(message="new one")], previous
    )
    by_message = {e["message"]: e["justification"] for e in regenerated.entries}
    assert by_message["m"] == "because reasons"
    assert by_message["new one"] == "TODO: justify"
    target = tmp_path / "baseline.json"
    regenerated.save(target)
    assert Baseline.load(target).entries == sorted(
        regenerated.entries, key=Baseline._key
    )


def test_baseline_rejects_malformed_files(tmp_path):
    bad_version = tmp_path / "v.json"
    bad_version.write_text(json.dumps({"version": 99, "findings": []}))
    with pytest.raises(ValueError, match="unsupported baseline version"):
        Baseline.load(bad_version)
    missing_field = tmp_path / "f.json"
    missing_field.write_text(
        json.dumps({"version": 1, "findings": [{"rule": "RL008"}]})
    )
    with pytest.raises(ValueError, match="missing field"):
        Baseline.load(missing_field)


# ----------------------------------------------------------------------
# CLI contract
# ----------------------------------------------------------------------
def _write_tree(tmp_path: Path, source: str) -> Path:
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "mod.py").write_text(source)
    return tmp_path


def test_cli_exit_codes(tmp_path, capsys):
    root = _write_tree(tmp_path, POSITIVE)
    argv = ["--root", str(root), str(root / "src")]
    assert main(argv) == 1  # findings
    (root / "src" / "repro" / "mod.py").write_text("x = 1\n")
    assert main(argv) == 0  # clean
    assert main(["--root", str(root), str(root / "nope")]) == 2  # bad path
    (root / "src" / "repro" / "mod.py").write_text("def broken(:\n")
    assert main(argv) == 2  # syntax error
    capsys.readouterr()


def test_cli_json_output(tmp_path, capsys):
    root = _write_tree(tmp_path, POSITIVE)
    rc = main(["--root", str(root), "--format", "json", str(root / "src")])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert payload["baselined"] == 0
    assert [f["rule"] for f in payload["findings"]] == ["RL008"]
    assert payload["findings"][0]["path"].endswith("mod.py")


def test_cli_write_baseline_then_clean(tmp_path, capsys):
    root = _write_tree(tmp_path, POSITIVE)
    baseline = "baseline.json"
    argv = ["--root", str(root), "--baseline", baseline, str(root / "src")]
    assert main(argv + ["--write-baseline"]) == 0
    entries = json.loads((root / baseline).read_text())["findings"]
    assert len(entries) == 1 and entries[0]["justification"] == "TODO: justify"
    assert main(argv) == 0  # baselined -> clean
    assert main(argv + ["--no-baseline"]) == 1  # ignoring baseline -> dirty
    capsys.readouterr()


def test_cli_stale_baseline_entries_fail(tmp_path, capsys):
    root = _write_tree(tmp_path, POSITIVE)
    baseline = "baseline.json"
    argv = ["--root", str(root), "--baseline", baseline, str(root / "src")]
    assert main(argv + ["--write-baseline"]) == 0
    (root / "src" / "repro" / "mod.py").write_text("x = 1\n")
    assert main(argv) == 1  # stale entries fail until pruned
    out = capsys.readouterr().out
    assert "stale baseline" in out and "--prune-baseline" in out


def test_cli_prune_baseline_drops_stale_entries(tmp_path, capsys):
    root = _write_tree(tmp_path, POSITIVE)
    baseline = "baseline.json"
    argv = ["--root", str(root), "--baseline", baseline, str(root / "src")]
    assert main(argv + ["--write-baseline"]) == 0
    (root / "src" / "repro" / "mod.py").write_text("x = 1\n")
    assert main(argv + ["--prune-baseline"]) == 0
    out = capsys.readouterr().out
    assert "pruned 1 stale baseline entry" in out
    entries = json.loads((root / baseline).read_text())["findings"]
    assert entries == []
    assert main(argv) == 0  # clean after the prune


def test_cli_prune_baseline_keeps_live_entries(tmp_path, capsys):
    root = _write_tree(tmp_path, POSITIVE)
    baseline = "baseline.json"
    argv = ["--root", str(root), "--baseline", baseline, str(root / "src")]
    assert main(argv + ["--write-baseline"]) == 0
    assert main(argv + ["--prune-baseline"]) == 0
    out = capsys.readouterr().out
    assert "no stale entries" in out
    entries = json.loads((root / baseline).read_text())["findings"]
    assert len(entries) == 1  # still covering the live finding


def test_cli_stale_baseline_entries_fail_in_json_format(tmp_path, capsys):
    root = _write_tree(tmp_path, POSITIVE)
    baseline = "baseline.json"
    argv = ["--root", str(root), "--baseline", baseline, str(root / "src")]
    assert main(argv + ["--write-baseline"]) == 0
    (root / "src" / "repro" / "mod.py").write_text("x = 1\n")
    capsys.readouterr()
    rc = main(argv + ["--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert payload["findings"] == []
    assert len(payload["stale_baseline_entries"]) == 1


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in [f"RL00{i}" for i in range(1, 10)] + [
        f"RL01{i}" for i in range(7)
    ]:
        assert rule_id in out


# ----------------------------------------------------------------------
# End to end: the real tree must be clean against the committed baseline.
# ----------------------------------------------------------------------
def test_repository_is_lint_clean():
    rc = main(
        ["--root", str(REPO_ROOT)]
        + [
            str(REPO_ROOT / part)
            for part in ("src", "tests", "benchmarks", "examples", "tools")
        ]
    )
    assert rc == 0, "repo has non-baselined or stale repro-lint findings"

"""Per-rule fixture tests: every rule has positive and negative cases.

Each ``fixtures/rlNNN_positive.py`` marks its expected findings with a
trailing ``# expect: RLNNN`` comment; the test lints the fixture under a
virtual path *inside* the rule's scope and requires the reported
``(rule, line)`` pairs to match the markers exactly.  Negative fixtures
must produce zero findings for their rule.  Path-scoped rules are
additionally checked to stay silent when the same positive source is
linted from outside their scope.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro_lint.engine import LintEngine, lint_source
from repro_lint.rules import all_rules, rule_classes

FIXTURES = Path(__file__).parent / "fixtures"

#: rule id -> virtual repo-relative path inside the rule's scope.
IN_SCOPE_PATH = {
    "RL001": "src/repro/sched/fixture.py",
    "RL002": "src/repro/workloads/fixture.py",
    "RL003": "src/repro/core/fixture.py",
    "RL004": "src/repro/metrics/fixture.py",
    "RL005": "src/repro/api/fixture.py",
    "RL006": "src/repro/experiments/fixture.py",
    "RL008": "src/repro/config/fixture.py",
    "RL009": "src/repro/sim/fixture.py",
    "RL010": "src/repro/experiments/fixture.py",
    "RL011": "src/repro/api/fixture.py",
    "RL012": "src/repro/api/fixture.py",
    "RL013": "src/repro/experiments/fixture.py",
    "RL014": "src/repro/net/fixture.py",
    "RL015": "src/repro/sched/fixture.py",
    "RL016": "src/repro/sim/fixture.py",
    "RL017": "src/repro/core/fixture.py",
}

#: rule id -> a path the rule's scope excludes (None: rule is unscoped).
OUT_OF_SCOPE_PATH = {
    "RL001": "benchmarks/fixture.py",
    "RL002": "src/repro/sim/rng.py",
    "RL003": "tests/fixture.py",
    "RL004": "tests/test_property_fixture.py",
    "RL005": None,
    "RL006": None,
    "RL008": None,
    "RL009": "src/repro/cli.py",
    "RL010": None,
    "RL011": "src/repro/sched/fixture.py",
    "RL012": "src/repro/core/fixture.py",
    "RL013": None,
    "RL014": None,
    "RL015": "tests/fixture.py",
    "RL016": "tests/fixture.py",
    "RL017": "tests/fixture.py",
}

RULE_IDS = sorted(IN_SCOPE_PATH)


def expected_lines(source: str, rule_id: str):
    marker = re.compile(rf"#\s*expect:\s*{rule_id}\b")
    return sorted(
        lineno
        for lineno, line in enumerate(source.splitlines(), start=1)
        if marker.search(line)
    )


def findings_for(source: str, path: str, rule_id: str):
    return [f for f in lint_source(source, path) if f.rule_id == rule_id]


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_positive_fixture_reports_every_marked_line(rule_id):
    source = (FIXTURES / f"{rule_id.lower()}_positive.py").read_text()
    expected = expected_lines(source, rule_id)
    assert expected, f"fixture for {rule_id} must mark expected findings"
    found = findings_for(source, IN_SCOPE_PATH[rule_id], rule_id)
    assert sorted(f.line for f in found) == expected


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_negative_fixture_is_clean(rule_id):
    source = (FIXTURES / f"{rule_id.lower()}_negative.py").read_text()
    found = findings_for(source, IN_SCOPE_PATH[rule_id], rule_id)
    assert found == []


@pytest.mark.parametrize(
    "rule_id", [r for r in RULE_IDS if OUT_OF_SCOPE_PATH[r] is not None]
)
def test_positive_fixture_is_out_of_scope_elsewhere(rule_id):
    source = (FIXTURES / f"{rule_id.lower()}_positive.py").read_text()
    found = findings_for(source, OUT_OF_SCOPE_PATH[rule_id], rule_id)
    assert found == []


# ----------------------------------------------------------------------
# RL007 is project-level: exercised against a scratch repo tree.
# ----------------------------------------------------------------------
def _rl007_tree(tmp_path: Path, init_fixture: str) -> LintEngine:
    api_dir = tmp_path / "src" / "repro" / "api"
    api_dir.mkdir(parents=True)
    (api_dir / "__init__.py").write_text(
        (FIXTURES / init_fixture).read_text()
    )
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "API.md").write_text((FIXTURES / "rl007_doc.md").read_text())
    return LintEngine(all_rules(), root=tmp_path)


def test_rl007_reports_undocumented_export(tmp_path):
    engine = _rl007_tree(tmp_path, "rl007_init_positive.py")
    findings, errors = engine.lint_paths([tmp_path / "src"])
    assert errors == []
    rl007 = [f for f in findings if f.rule_id == "RL007"]
    assert len(rl007) == 1
    assert "HiddenKnob" in rl007[0].message
    init_source = (FIXTURES / "rl007_init_positive.py").read_text()
    assert [rl007[0].line] == expected_lines(init_source, "RL007")


def test_rl007_clean_when_everything_documented(tmp_path):
    engine = _rl007_tree(tmp_path, "rl007_init_negative.py")
    findings, errors = engine.lint_paths([tmp_path / "src"])
    assert errors == []
    assert [f for f in findings if f.rule_id == "RL007"] == []


def test_rl007_reports_missing_api_doc(tmp_path):
    engine = _rl007_tree(tmp_path, "rl007_init_positive.py")
    (tmp_path / "docs" / "API.md").unlink()
    findings, _ = engine.lint_paths([tmp_path / "src"])
    rl007 = [f for f in findings if f.rule_id == "RL007"]
    assert len(rl007) == 1
    assert "docs/API.md is missing" in rl007[0].message


# ----------------------------------------------------------------------
# The acceptance scenario: a seeded violation in a real hot-path module.
# ----------------------------------------------------------------------
def test_seeded_wallclock_in_aub_is_caught():
    source = (
        "import time\n"
        "def admissible(self, now):\n"
        "    started = time.time()\n"
        "    return started\n"
    )
    found = findings_for(source, "src/repro/sched/aub.py", "RL001")
    assert [f.line for f in found] == [3]


def test_every_registered_rule_has_fixture_coverage():
    covered = set(RULE_IDS) | {"RL007"}
    assert covered == set(rule_classes())


# ----------------------------------------------------------------------
# Cross-module behavior of the flow-aware rules: the engine builds one
# ProjectIndex over every scanned file, so references resolved through
# from-imports participate in the analysis.
# ----------------------------------------------------------------------
def _lint_tree(tmp_path: Path, sources) -> list:
    for rel, text in sources.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text)
    engine = LintEngine(all_rules(), root=tmp_path)
    findings, errors = engine.lint_paths([tmp_path / "src"])
    assert errors == []
    return findings


def test_rl010_cross_module_lambda_payload(tmp_path):
    findings = _lint_tree(
        tmp_path,
        {
            "src/repro/experiments/helpers.py": "cell = lambda a: a + 1\n",
            "src/repro/experiments/main.py": (
                "from repro.experiments.helpers import cell\n"
                "from repro.experiments.runner import run_cells\n"
                "def main(data):\n"
                "    return run_cells(cell, data)\n"
            ),
        },
    )
    rl010 = [f for f in findings if f.rule_id == "RL010"]
    assert len(rl010) == 1
    assert rl010[0].path == "src/repro/experiments/main.py"
    assert "repro.experiments.helpers" in rl010[0].message


def test_rl013_cross_module_env_read_chain(tmp_path):
    findings = _lint_tree(
        tmp_path,
        {
            "src/repro/experiments/knobs.py": (
                "import os\n"
                "def scale_factor():\n"
                "    return float(os.environ.get('SCALE', '1'))\n"
            ),
            "src/repro/experiments/main.py": (
                "from repro.experiments.knobs import scale_factor\n"
                "from repro.experiments.runner import run_cells\n"
                "def cell(a):\n"
                "    return a * scale_factor()\n"
                "def main(data):\n"
                "    return run_cells(cell, data)\n"
            ),
        },
    )
    rl013 = [f for f in findings if f.rule_id == "RL013"]
    assert len(rl013) == 1
    assert rl013[0].path == "src/repro/experiments/main.py"
    assert "'cell'" in rl013[0].message
    assert "scale_factor" in rl013[0].message


def test_rl013_repro_env_helper_counts_as_env_read(tmp_path):
    findings = _lint_tree(
        tmp_path,
        {
            "src/repro/env.py": (
                "import os\n"
                "def workers_override():\n"
                "    return os.environ.get('REPRO_WORKERS')\n"
            ),
            "src/repro/experiments/main.py": (
                "from repro.env import workers_override\n"
                "from repro.experiments.runner import run_cells\n"
                "def cell(a):\n"
                "    return (a, workers_override())\n"
                "def main(data):\n"
                "    return run_cells(cell, data)\n"
            ),
        },
    )
    rl013 = [f for f in findings if f.rule_id == "RL013"]
    assert len(rl013) == 1
    assert "repro.env.workers_override" in rl013[0].message


def test_rl016_cross_module_stream_sharing(tmp_path):
    findings = _lint_tree(
        tmp_path,
        {
            "src/repro/workloads/arrivals.py": (
                "def plan(rngs):\n"
                "    return rngs.stream('jitter').random()\n"
            ),
            "src/repro/net/latency.py": (
                "def delay(rngs):\n"
                "    return rngs.stream('jitter').random()\n"
            ),
        },
    )
    rl016 = [f for f in findings if f.rule_id == "RL016"]
    assert len(rl016) == 2
    assert {f.path for f in rl016} == {
        "src/repro/workloads/arrivals.py",
        "src/repro/net/latency.py",
    }


def test_index_findings_honor_inline_suppressions(tmp_path):
    findings = _lint_tree(
        tmp_path,
        {
            "src/repro/workloads/arrivals.py": (
                "def plan(rngs):\n"
                "    # repro-lint: disable=RL016\n"
                "    return rngs.stream('jitter').random()\n"
            ),
            "src/repro/net/latency.py": (
                "def delay(rngs):\n"
                "    return rngs.stream('jitter').random()\n"
            ),
        },
    )
    rl016 = [f for f in findings if f.rule_id == "RL016"]
    assert [f.path for f in rl016] == ["src/repro/net/latency.py"]

"""RL007 negative fixture: every export appears in the API document."""

Scenario = object()
Session = object()

__all__ = [
    "Scenario",
    "Session",
]

"""RL001 positive fixture: wall-clock reads (linted as src/repro/sched/...)."""
import time
import datetime
from time import monotonic
from datetime import datetime as dt


def stamp_decision(log):
    log.append(time.time())  # expect: RL001
    log.append(time.monotonic())  # expect: RL001
    log.append(time.perf_counter())  # expect: RL001
    log.append(monotonic())  # expect: RL001
    log.append(datetime.datetime.now())  # expect: RL001
    log.append(dt.now())  # expect: RL001
    return log

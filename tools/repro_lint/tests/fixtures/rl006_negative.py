"""RL006 negative fixture: module-level cell functions pickle fine."""
from repro.experiments.runner import run_cells


def double_cell(value):
    return value * 2


def fan_out(cells):
    # cost_key never crosses the process boundary (it orders submission
    # in the parent), so a lambda there is legal.
    return run_cells(double_cell, cells, cost_key=lambda cell: -cell[0])

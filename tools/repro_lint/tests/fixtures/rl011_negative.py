"""Fixture: order-independent merges (no RL011 findings)."""


def merge_overheads(shards):
    total = 0.0
    for key in sorted(shards):
        total += shards[key].total
    return total


class StatSnapshot:
    def combine(self, parts):
        return sum(p.total for p in parts)


def fold_results(results):
    # Not a merge path: results arrive in submission order.
    return sum(r.duration for r in set(results))

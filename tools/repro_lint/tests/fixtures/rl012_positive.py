"""Fixture: deliberate RL012 violations (mutable fields on frozen types)."""
from dataclasses import dataclass, field
from typing import Dict, List, Set


@dataclass(frozen=True)
class Result:
    label: str
    samples: List[float] = field(default_factory=list)  # expect: RL012
    by_node: Dict[str, float] = field(default_factory=dict)  # expect: RL012
    seen: Set[str] = field(default_factory=set)  # expect: RL012
    raw: dict = field(default_factory=dict)  # expect: RL012

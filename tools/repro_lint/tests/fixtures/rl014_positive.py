"""Fixture: deliberate RL014 violations (blocking async handlers)."""
import time


async def handle(request):
    time.sleep(0.1)  # expect: RL014
    data = open("config.json").read()  # expect: RL014
    return (request, data)


async def poll(queue):
    while True:  # expect: RL014
        if queue:
            queue.pop()

"""RL004 negative fixture: tolerance helpers and integer comparisons."""
import math

EPSILON = 1e-9


def check(utilization, bound, approx):
    tolerant = abs(utilization - bound) < EPSILON
    close = math.isclose(utilization, bound) == True  # noqa: E712
    approxed = utilization == approx(1.5)
    integers = 3 == len([bound])
    ordering = utilization <= 1.5  # inequalities are fine
    return tolerant, close, approxed, integers, ordering

"""Fixture: deliberate RL016 violations (stream shared across components)."""


class ArrivalGenerator:
    def __init__(self, rngs):
        self.rng = rngs.stream("jitter")  # expect: RL016


class DelayModel:
    def __init__(self, rngs):
        self.rng = rngs.stream("jitter")  # expect: RL016


def workload(rngs):
    return rngs.stream("workload").random()

"""RL003 positive fixture: unordered set iteration in a decision path."""


def commit_order(visits, weights):
    total = 0.0
    for node in set(visits):  # expect: RL003
        total += weights[node]
    doubled = [weights[n] for n in frozenset(visits)]  # expect: RL003
    materialized = list({v for v in visits})  # expect: RL003
    pair = tuple({1, 2})  # expect: RL003
    touched = set(visits)
    for node in touched:  # expect: RL003
        total += weights[node]
    return total, doubled, materialized, pair

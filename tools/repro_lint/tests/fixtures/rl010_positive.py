"""Fixture: deliberate RL010 violations (flow-resolved unpicklables)."""
import threading

from repro.experiments.runner import run_cells

GLOBAL_LOCK = threading.Lock()


def work(a, b):
    return a


def dispatch(cells):
    fn = lambda a: a + 1  # noqa: E731
    lock = threading.Lock()
    handle = open("data.txt")
    run_cells(fn, cells)  # expect: RL010
    run_cells(work, [(lock, 1)])  # expect: RL010
    run_cells(work, [(handle, 2)])  # expect: RL010
    run_cells(work, [(threading.Lock(), 3)])  # expect: RL010
    return handle


def dispatch_singleton(cells):
    return run_cells(work, [(GLOBAL_LOCK, 1)])  # expect: RL010

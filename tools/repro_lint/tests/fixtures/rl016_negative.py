"""Fixture: one stream per component (no RL016 findings)."""


class ArrivalGenerator:
    def __init__(self, rngs):
        self.rng = rngs.stream("arrivals")
        # Re-deriving within the same component is not aliasing.
        self.backup = rngs.stream("arrivals")


class DelayModel:
    def __init__(self, rngs):
        self.rng = rngs.stream("delays")

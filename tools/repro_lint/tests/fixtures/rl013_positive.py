"""Fixture: deliberate RL013 violations (env reads reachable from cells)."""
import os

from repro.experiments.runner import run_cells


def cell(a):  # expect: RL013
    scale = float(os.environ.get("SCALE", "1"))
    return a * scale


def helper():
    return os.getenv("MODE")


def indirect_cell(a):  # expect: RL013
    return (a, helper())


def main(data):
    run_cells(cell, data)
    run_cells(indirect_cell, data)

"""Fixture: deliberate RL015 violations (identity-keyed ordering/maps)."""


def order_tasks(tasks):
    ordered = sorted(tasks, key=id)  # expect: RL015
    tasks.sort(key=lambda t: id(t))  # expect: RL015
    return ordered


def index_jobs(jobs):
    table = {}
    for job in jobs:
        table[id(job)] = job  # expect: RL015
    seed_map = {hash(j): j.name for j in jobs}  # expect: RL015
    return table, seed_map

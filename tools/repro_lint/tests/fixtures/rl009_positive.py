"""RL009 positive fixture: ambient env reads inside the engine."""
import os
from os import environ  # binding alone is fine; reads are flagged


def resolve_workers():
    raw = os.environ.get("REPRO_WORKERS")  # expect: RL009
    fallback = os.getenv("REPRO_FALLBACK", "1")  # expect: RL009
    direct = environ["PATH"]  # expect: RL009
    return raw, fallback, direct

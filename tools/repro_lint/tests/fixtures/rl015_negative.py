"""Fixture: domain-identity keys (no RL015 findings)."""


def order_tasks(tasks):
    return sorted(tasks, key=lambda t: t.task_id)


def index_jobs(jobs):
    return {(j.task_id, j.job_index): j for j in jobs}


def cache_line(table, key):
    return table[key]

"""RL008 positive fixture: mutable default arguments."""


def accumulate(value, acc=[]):  # expect: RL008
    acc.append(value)
    return acc


def tally(key, counts={}):  # expect: RL008
    counts[key] = counts.get(key, 0) + 1
    return counts


def register(name, *, seen=set()):  # expect: RL008
    seen.add(name)
    return seen


def build(items=list()):  # expect: RL008
    return items

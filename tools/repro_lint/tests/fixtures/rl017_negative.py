"""Negative fixture: handlers that catch narrowly or re-raise."""


def specific_catch(mapping, key):
    try:
        return mapping[key]
    except KeyError:
        return None


def specific_tuple(path):
    try:
        return open(path)
    except (OSError, ValueError):
        return None


def broad_but_reraises(sim):
    try:
        sim.step()
    except Exception as exc:
        sim.record_failure(exc)
        raise


def broad_but_wraps(network):
    try:
        network.send()
    except Exception as exc:
        raise RuntimeError("send failed") from exc


def broad_reraise_in_branch(item, strict):
    try:
        item.apply()
    except Exception:
        if strict:
            raise
        item.mark_degraded()

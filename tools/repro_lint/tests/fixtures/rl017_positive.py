"""Positive fixture: handlers that swallow faults."""


def bare_except(sim):
    try:
        sim.step()
    except:  # expect: RL017
        pass


def broad_pass(network):
    try:
        network.send()
    except Exception:  # expect: RL017
        pass


def broad_continue(items):
    for item in items:
        try:
            item.apply()
        except BaseException:  # expect: RL017
            continue


def broad_with_fallback(ledger):
    try:
        return ledger.total()
    except Exception as exc:  # expect: RL017
        print(exc)
        return 0.0


def broad_in_tuple(channel):
    try:
        channel.push()
    except (ValueError, Exception):  # expect: RL017
        return None

"""Fixture: picklable run_cells payloads (no RL010 findings)."""
import threading

from repro.experiments.runner import run_cells


def work(a, b):
    return a + b


def dispatch(cells):
    guard = threading.Lock()
    with guard:
        prepared = [tuple(cell) for cell in cells]
    # cost_key is consumed parent-side; the lambda never crosses the pool.
    return run_cells(work, prepared, cost_key=lambda cell: 2.0)

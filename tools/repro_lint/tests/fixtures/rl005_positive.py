"""RL005 positive fixture: mutating someone else's frozen instance."""


def sneak_label(scenario, text):
    object.__setattr__(scenario, "label", text)  # expect: RL005
    return scenario


class Rewriter:
    def rewrite(self, other, value):
        object.__setattr__(other, "value", value)  # expect: RL005

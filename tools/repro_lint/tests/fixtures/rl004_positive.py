"""RL004 positive fixture: float equality outside parity modules."""
import math


def check(utilization, bound, samples):
    exact = utilization == 1.5  # expect: RL004
    zeroish = 0.0 != bound  # expect: RL004
    cast = float(bound) == utilization  # expect: RL004
    ratio = samples / 2 == bound  # expect: RL004
    rooted = math.sqrt(bound) == 2.0  # expect: RL004
    return exact, zeroish, cast, ratio, rooted

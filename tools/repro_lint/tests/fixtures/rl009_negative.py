"""RL009 negative fixture: parameters instead of ambient lookups."""


def resolve_workers(n_workers, default):
    # The entry point resolved the env var; this layer takes parameters.
    if n_workers is None:
        n_workers = default
    return max(1, int(n_workers))

"""RL002 positive fixture: ambient RNG state."""
import random
from random import choice  # expect: RL002


def draw_everything(options):
    jitter = random.random()  # expect: RL002
    random.seed(42)  # expect: RL002
    pick = random.choice(options)  # expect: RL002
    random.shuffle(options)  # expect: RL002
    unseeded = random.Random()  # expect: RL002
    picked = choice(options)  # expect: RL002
    return jitter, pick, unseeded, picked

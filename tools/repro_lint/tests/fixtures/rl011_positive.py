"""Fixture: deliberate RL011 violations (unordered merge accumulation)."""


def merge_overheads(shards):
    total = 0.0
    for series in shards.values():  # expect: RL011
        total += series
    grand = sum(shards.values())  # expect: RL011
    return total + grand


class StatSnapshot:
    def combine(self, parts):
        return sum(p.total for p in set(parts))  # expect: RL011

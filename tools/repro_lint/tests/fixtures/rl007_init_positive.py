"""RL007 positive fixture: ``__all__`` exports an undocumented symbol.

The test installs this file as ``src/repro/api/__init__.py`` in a
scratch tree next to ``rl007_doc.md`` (as ``docs/API.md``), which
documents ``Scenario`` and ``Session`` but not ``HiddenKnob``.
"""

Scenario = object()
Session = object()
HiddenKnob = object()

__all__ = [
    "Scenario",
    "Session",
    "HiddenKnob",  # expect: RL007
]

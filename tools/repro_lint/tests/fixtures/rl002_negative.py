"""RL002 negative fixture: seeded generators threaded as parameters."""
import random
from random import Random


def draw(rng: random.Random, options):
    # RNGs arrive as parameters; no hidden global state involved.
    return rng.choice(options), rng.random()


def derive_stream(master_seed: int) -> random.Random:
    # Explicitly seeded construction is the sanctioned pattern.
    return random.Random(master_seed)


def derive_other(seed: int) -> Random:
    return Random(seed * 2 + 1)

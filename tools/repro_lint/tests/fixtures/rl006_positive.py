"""RL006 positive fixture: unpicklable payloads handed to the pool."""
from repro.experiments.runner import run_cells


def fan_out(cells):
    bad = run_cells(lambda cell: cell * 2, cells)  # expect: RL006

    def local_cell(value):
        return value + 1

    worse = run_cells(local_cell, cells)  # expect: RL006
    return bad, worse

"""RL003 negative fixture: sorted materialization and membership tests."""


def commit_order(visits, weights):
    total = 0.0
    for node in sorted(set(visits)):
        total += weights[node]
    doubled = [weights[n] for n in sorted(frozenset(visits))]
    if "app1" in set(visits):  # membership, not iteration
        total += 1.0
    touched = set(visits)
    for node in sorted(touched):
        total += weights[node]
    mixed = visits  # parameter: origin unknown, stays silent
    for node in mixed:
        total += weights[node]
    rebound = set(visits)
    rebound = list(rebound)  # mixed assignments: stays silent
    for node in rebound:
        total += weights[node]
    return total, doubled

"""Fixture: env knob resolved parent-side (no RL013 findings)."""
import os

from repro.experiments.runner import run_cells


def cell(a, scale):
    return a * scale


def main(data):
    scale = float(os.environ.get("SCALE", "1"))
    return run_cells(cell, [(a, scale) for a in data])

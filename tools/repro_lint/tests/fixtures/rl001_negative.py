"""RL001 negative fixture: virtual time only (linted as src/repro/sched/...)."""
import time


def stamp_decision(sim, log):
    # The kernel's virtual clock is the only legal time source here.
    log.append(sim.now)
    return log


def format_duration(seconds):
    # Converting a *duration* is fine; only clock reads are flagged.
    return time.strftime("%M:%S", (0, 0, 0, 0, 0, 0, 0, 0, 0))


def sleepy(duration):
    # time.sleep does not read the clock into the decision path.
    time.sleep(0)
    return duration

"""RL005 negative fixture: the frozen-dataclass escape hatch."""
from dataclasses import dataclass


@dataclass(frozen=True)
class Frozen:
    values: tuple

    def __post_init__(self):
        # Canonical normalization inside the defining class.
        object.__setattr__(self, "values", tuple(sorted(self.values)))

    def renormalize(self):
        object.__setattr__(self, "values", tuple(self.values))

"""RL008 negative fixture: immutable defaults and the None idiom."""


def accumulate(value, acc=None):
    if acc is None:
        acc = []
    acc.append(value)
    return acc


def tally(key, counts=(), label="total", limit=10):
    return dict(counts, **{key: label, "limit": limit})


def build(items=frozenset()):
    return items

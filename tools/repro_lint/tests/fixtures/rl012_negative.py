"""Fixture: immutable frozen surfaces (no RL012 findings)."""
from dataclasses import dataclass
from typing import Mapping, Optional, Tuple


@dataclass(frozen=True)
class Result:
    label: str
    samples: Tuple[float, ...] = ()
    by_node: Optional[Mapping[str, float]] = None


@dataclass
class MutableHolder:
    # Not frozen: mutable fields are this type's explicit contract.
    values: Optional[list] = None

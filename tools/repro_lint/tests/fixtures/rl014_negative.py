"""Fixture: loop-friendly async handlers (no RL014 findings)."""
import asyncio
import time


async def handle(request):
    await asyncio.sleep(0.1)
    return request


async def poll(queue):
    while True:
        await asyncio.sleep(1.0)


def sync_helper():
    # Blocking is fine outside the event loop.
    time.sleep(0.1)
    with open("config.json") as fh:
        return fh.read()

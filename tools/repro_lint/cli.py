"""Command-line front end: ``python -m repro_lint [paths...]``.

Exit codes:

* ``0`` — clean (no non-baselined findings)
* ``1`` — findings to fix (or to baseline with a justification)
* ``2`` — usage or internal error (bad path, unreadable baseline,
  syntax error in a scanned file)
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro_lint.baseline import Baseline
from repro_lint.engine import Finding, LintEngine
from repro_lint.rules import all_rules

DEFAULT_PATHS = ("src", "tests", "benchmarks", "examples", "tools")
DEFAULT_BASELINE = "tools/repro_lint/baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro_lint",
        description=(
            "AST-based determinism & parity lint for this repository "
            "(see docs/LINTING.md for the rule catalogue)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline file of grandfathered findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring the baseline",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=(
            "rewrite the baseline to cover the current findings, keeping "
            "existing justifications (new entries get 'TODO: justify')"
        ),
    )
    parser.add_argument(
        "--prune-baseline",
        action="store_true",
        help=(
            "drop baseline entries that no longer match any finding and "
            "rewrite the baseline in place (does not add new entries)"
        ),
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root paths are reported relative to (default: cwd)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    rules = all_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id}  {rule.summary}")
            print(f"       {rule.rationale}")
        return 0

    root = Path(args.root)
    paths = [Path(p) for p in args.paths]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"repro-lint: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    engine = LintEngine(rules, root)
    findings, errors = engine.lint_paths(paths)
    if errors:
        for error in errors:
            print(f"repro-lint: {error}", file=sys.stderr)
        return 2

    baseline_path = root / args.baseline
    baseline = Baseline()
    if not args.no_baseline and baseline_path.exists():
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, json.JSONDecodeError) as exc:
            print(f"repro-lint: bad baseline: {exc}", file=sys.stderr)
            return 2

    if args.write_baseline:
        new_baseline = Baseline.from_findings(findings, baseline)
        new_baseline.save(baseline_path)
        print(
            f"repro-lint: wrote {len(new_baseline.entries)} baseline "
            f"entr{'y' if len(new_baseline.entries) == 1 else 'ies'} to "
            f"{baseline_path}"
        )
        return 0

    fresh, stale = baseline.split(findings)
    if args.prune_baseline:
        if stale:
            baseline.pruned(stale).save(baseline_path)
            print(
                f"repro-lint: pruned {len(stale)} stale baseline "
                f"entr{'y' if len(stale) == 1 else 'ies'} from {baseline_path}"
            )
        else:
            print("repro-lint: baseline has no stale entries")
        stale = []
    return _report(fresh, stale, len(findings), args.format)


def _report(
    fresh: List[Finding],
    stale: List[Dict[str, str]],
    total: int,
    fmt: str,
) -> int:
    if fmt == "json":
        payload = {
            "findings": [f.to_json() for f in fresh],
            "baselined": total - len(fresh),
            "stale_baseline_entries": stale,
        }
        print(json.dumps(payload, indent=2))
        return 1 if fresh or stale else 0

    for finding in fresh:
        print(finding.format_text())
    if stale:
        print(
            f"repro-lint: {len(stale)} stale baseline entr"
            f"{'y' if len(stale) == 1 else 'ies'} no longer match any "
            "finding; remove them with --prune-baseline:"
        )
        for entry in stale:
            print(f"  - {entry['rule']} {entry['path']}: {entry['message']}")
    suppressed = total - len(fresh)
    if fresh:
        print(
            f"repro-lint: {len(fresh)} finding(s) "
            f"({suppressed} baselined); fix them or baseline with a "
            "justification (--write-baseline)"
        )
        return 1
    if stale:
        return 1
    print(f"repro-lint: clean ({suppressed} baselined finding(s))")
    return 0

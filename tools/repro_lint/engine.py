"""The repro-lint core: one AST walk per file, rules as plugins.

The engine parses each file once and walks the tree recursively while
maintaining an ancestor stack (enclosing modules/classes/functions).
Rules register which node types they want via :attr:`Rule.node_types`;
the walk dispatches each node to every interested rule.  Rules yield
:class:`Finding` objects; the engine drops findings whose line carries
(or follows) an inline ``# repro-lint: disable=RULE`` comment, then
subtracts the committed baseline before reporting.

Rules are path-scoped: each rule declares ``include``/``exclude`` glob
patterns (relative to the repo root, ``fnmatch`` syntax, a trailing
``/`` prefix form also matches) so e.g. the wall-clock rule only fires
inside the simulator/decision packages.  Project-wide rules (RL007)
implement :meth:`Rule.check_project` instead of node visits.

Flow-aware rules (RL010/RL013/RL016) implement :meth:`Rule.check_index`:
the engine parses every file once, keeps the trees, and builds one
:class:`~repro_lint.project.ProjectIndex` (cross-module symbol table +
call graph) handed to each such rule after the per-file walks.
``lint_source`` builds a single-file index, so the same rules work on
fixtures and on whole-repo runs without separate code paths.  Inline
suppressions apply to index findings exactly as to per-file ones.
"""

from __future__ import annotations

import ast
import fnmatch
import io
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Type

from repro_lint.project import ProjectIndex


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str  # repo-root-relative, posix separators
    line: int
    col: int
    rule_id: str
    message: str

    @property
    def baseline_key(self) -> Tuple[str, str, str]:
        """Line-number-free identity used for baseline matching.

        Keyed on (rule, path, message) so baselined findings survive
        unrelated edits that shift line numbers; messages embed enough
        of the offending expression to distinguish distinct sites, and
        identical sites in one file are matched as a multiset.
        """
        return (self.rule_id, self.path, self.message)

    def format_text(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }


class Context:
    """Per-file state handed to rules during the walk."""

    def __init__(self, path: str, tree: ast.Module, source: str) -> None:
        self.path = path
        self.tree = tree
        self.source = source
        #: Enclosing ClassDef/FunctionDef/AsyncFunctionDef nodes, outermost
        #: first (the module itself is implicit and not on the stack).
        self.ancestors: List[ast.AST] = []
        #: Names imported at any level: "random" -> True when the module
        #: object itself is bound; "choice" -> "random.choice" for
        #: from-imports (rules consult this to resolve ambient calls).
        self.module_imports: Set[str] = set()
        self.from_imports: Dict[str, str] = {}
        self._collect_imports(tree)

    def _collect_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_imports.add(alias.asname or alias.name)
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self.from_imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def enclosing_function(self) -> Optional[ast.AST]:
        for node in reversed(self.ancestors):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return node
        return None

    def enclosing_class(self) -> Optional[ast.ClassDef]:
        for node in reversed(self.ancestors):
            if isinstance(node, ast.ClassDef):
                return node
        return None


class Rule:
    """Base class for one lint rule; subclasses self-register via REGISTRY.

    Class attributes:

    ``rule_id``
        Stable identifier (``RL001``...) used in reports, suppressions
        and the baseline.
    ``summary`` / ``rationale``
        One-liner for ``--list-rules`` and the invariant the rule
        protects (mirrored in docs/LINTING.md).
    ``node_types``
        AST node classes the rule wants dispatched; empty for
        project-level rules.
    ``include`` / ``exclude``
        Path scope patterns (repo-relative).  ``include=()`` means every
        scanned file.
    """

    rule_id: str = ""
    summary: str = ""
    rationale: str = ""
    node_types: Tuple[Type[ast.AST], ...] = ()
    include: Tuple[str, ...] = ()
    exclude: Tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        if self.include and not any(_match(path, pat) for pat in self.include):
            return False
        return not any(_match(path, pat) for pat in self.exclude)

    def visit(self, node: ast.AST, ctx: Context) -> Iterator[Finding]:
        """Called for every node whose type is in ``node_types``."""
        return iter(())

    def begin_module(self, ctx: Context) -> Iterator[Finding]:
        """Called once per file before the walk (module-level checks)."""
        return iter(())

    def check_project(self, root: Path, paths: Sequence[str]) -> Iterator[Finding]:
        """Called once per run with every scanned path (cross-file rules)."""
        return iter(())

    def check_index(self, index: ProjectIndex) -> Iterator[Finding]:
        """Called once per run with the whole-program index (flow rules).

        Implementations must scope their own findings: emit one only when
        ``self.applies_to`` accepts the site's path, since the index spans
        every scanned file.
        """
        return iter(())

    def uses_index(self) -> bool:
        """Whether this rule overrides :meth:`check_index` (the engine
        builds the project index only when at least one rule does)."""
        return type(self).check_index is not Rule.check_index

    # Helper shared by several rules: a readable expression excerpt.
    @staticmethod
    def excerpt(node: ast.AST, limit: int = 60) -> str:
        try:
            text = ast.unparse(node)
        except Exception:  # pragma: no cover - unparse is total on 3.9+
            text = type(node).__name__
        return text if len(text) <= limit else text[: limit - 3] + "..."


def _match(path: str, pattern: str) -> bool:
    """fnmatch with a directory-prefix convenience: ``src/repro/sim/``
    matches everything under that directory."""
    if pattern.endswith("/"):
        return path.startswith(pattern)
    return fnmatch.fnmatch(path, pattern)


#: Inline suppression marker.  ``# repro-lint: disable=RL003`` (or
#: ``disable=RL003,RL008`` / ``disable=all``) on the finding's line, or
#: alone on the line directly above it.
_SUPPRESS_PREFIX = "repro-lint:"


def _suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rule ids suppressed on that line."""
    suppressed: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (tok.start[0], tok.string, tok.line)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except tokenize.TokenError:  # pragma: no cover - parse already succeeded
        return suppressed
    for line, comment, physical in comments:
        text = comment.lstrip("#").strip()
        if not text.startswith(_SUPPRESS_PREFIX):
            continue
        directive = text[len(_SUPPRESS_PREFIX):].strip()
        if not directive.startswith("disable="):
            continue
        rules = {r.strip().upper() for r in directive[len("disable="):].split(",")}
        rules.discard("")
        targets = suppressed.setdefault(line, set())
        targets.update(rules)
        # A comment-only line suppresses the statement below it.
        if physical.strip().startswith("#"):
            suppressed.setdefault(line + 1, set()).update(rules)
    return suppressed


def _is_suppressed(finding: Finding, suppressed: Dict[int, Set[str]]) -> bool:
    rules = suppressed.get(finding.line)
    if not rules:
        return False
    return "ALL" in rules or finding.rule_id in rules


class LintEngine:
    """Drives the per-file walks and the project-level checks."""

    #: Paths never scanned by directory expansion: the lint fixtures are
    #: deliberate rule violations and must not lint the repo dirty.
    EXCLUDED_PREFIXES: Tuple[str, ...] = ("tools/repro_lint/tests/fixtures/",)

    def __init__(self, rules: Sequence[Rule], root: Path) -> None:
        self.rules = list(rules)
        self.root = root
        self._dispatch: Dict[Type[ast.AST], List[Rule]] = {}
        for rule in self.rules:
            for node_type in rule.node_types:
                self._dispatch.setdefault(node_type, []).append(rule)
        self._index_rules = [r for r in self.rules if r.uses_index()]

    # -- single file -----------------------------------------------------
    def lint_file(self, path: Path) -> List[Finding]:
        rel = _relative(path, self.root)
        source = path.read_text(encoding="utf-8")
        return self.lint_source(source, rel)

    def lint_source(self, source: str, rel_path: str) -> List[Finding]:
        """Lint source text as if it lived at ``rel_path`` (repo-relative).

        The virtual path drives rule scoping, which is how the unit-test
        fixtures exercise path-scoped rules from outside their scope.
        Flow-aware rules run against a single-file project index, so
        their fixtures work through this entry point too.
        """
        tree = ast.parse(source, filename=rel_path)
        findings = self._lint_tree(source, tree, rel_path)
        if self._index_rules:
            index = ProjectIndex.from_trees([(rel_path, tree)])
            findings.extend(self._index_findings(index))
        suppressed = _suppressions(source)
        findings = [f for f in findings if not _is_suppressed(f, suppressed)]
        findings.sort()
        return findings

    def _lint_tree(
        self, source: str, tree: ast.Module, rel_path: str
    ) -> List[Finding]:
        """Per-file walk only — no index pass, no suppression filter."""
        ctx = Context(rel_path, tree, source)
        active = [r for r in self.rules if r.node_types and r.applies_to(rel_path)]
        if not active:
            return []
        findings: List[Finding] = []
        for rule in active:
            findings.extend(rule.begin_module(ctx))
        dispatch: Dict[Type[ast.AST], List[Rule]] = {}
        for rule in active:
            for node_type in rule.node_types:
                dispatch.setdefault(node_type, []).append(rule)
        self._walk(tree, ctx, dispatch, findings)
        return findings

    def _index_findings(self, index: ProjectIndex) -> List[Finding]:
        findings: List[Finding] = []
        for rule in self._index_rules:
            findings.extend(rule.check_index(index))
        return findings

    def _walk(
        self,
        node: ast.AST,
        ctx: Context,
        dispatch: Dict[Type[ast.AST], List[Rule]],
        findings: List[Finding],
    ) -> None:
        for rule in dispatch.get(type(node), ()):
            findings.extend(rule.visit(node, ctx))
        scoped = isinstance(node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef))
        if scoped:
            ctx.ancestors.append(node)
        for child in ast.iter_child_nodes(node):
            self._walk(child, ctx, dispatch, findings)
        if scoped:
            ctx.ancestors.pop()

    # -- whole run -------------------------------------------------------
    def lint_paths(self, paths: Sequence[Path]) -> Tuple[List[Finding], List[str]]:
        """Lint every ``.py`` file under ``paths``.

        Returns ``(findings, errors)`` where ``errors`` are unparseable
        files (syntax errors) — those are reported separately and make
        the run fail with the internal-error exit code rather than being
        silently skipped.
        """
        files = sorted(self._expand(paths))
        findings: List[Finding] = []
        errors: List[str] = []
        rel_paths: List[str] = []
        trees: List[Tuple[str, ast.Module]] = []
        suppressions_by_path: Dict[str, Dict[int, Set[str]]] = {}
        for path in files:
            rel = _relative(path, self.root)
            rel_paths.append(rel)
            try:
                source = path.read_text(encoding="utf-8")
                tree = ast.parse(source, filename=rel)
            except SyntaxError as exc:
                errors.append(f"{rel}: syntax error: {exc.msg} (line {exc.lineno})")
                continue
            except (OSError, UnicodeDecodeError) as exc:
                errors.append(f"{rel}: unreadable: {exc}")
                continue
            suppressed = _suppressions(source)
            suppressions_by_path[rel] = suppressed
            file_findings = self._lint_tree(source, tree, rel)
            findings.extend(
                f for f in file_findings if not _is_suppressed(f, suppressed)
            )
            trees.append((rel, tree))
        late: List[Finding] = []
        for rule in self.rules:
            late.extend(rule.check_project(self.root, rel_paths))
        if self._index_rules and trees:
            late.extend(self._index_findings(ProjectIndex.from_trees(trees)))
        for finding in late:
            suppressed = suppressions_by_path.get(finding.path, {})
            if not _is_suppressed(finding, suppressed):
                findings.append(finding)
        findings.sort()
        return findings, errors

    def _expand(self, paths: Sequence[Path]) -> Iterator[Path]:
        for path in paths:
            if path.is_dir():
                for file in path.rglob("*.py"):
                    rel = _relative(file, self.root)
                    if not rel.startswith(self.EXCLUDED_PREFIXES):
                        yield file
            elif path.suffix == ".py":
                yield path


def _relative(path: Path, root: Path) -> str:
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        rel = path
    return rel.as_posix()


def lint_source(
    source: str, rel_path: str, rules: Optional[Sequence[Rule]] = None,
    root: Optional[Path] = None,
) -> List[Finding]:
    """Convenience for tests: lint a source string at a virtual path."""
    from repro_lint.rules import all_rules

    engine = LintEngine(list(rules) if rules is not None else all_rules(),
                        root or Path.cwd())
    return engine.lint_source(source, rel_path)

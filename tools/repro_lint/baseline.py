"""The committed baseline: grandfathered findings with justifications.

The baseline lets the lint gate be strict on *new* code without forcing
a big-bang cleanup (or worse, blanket suppressions) on deliberate
exceptions.  Each entry records the finding's line-number-free identity
``(rule, path, message)`` plus a one-line human justification for why
the finding stays.  Matching is a multiset subtraction: a file with two
identical findings needs two baseline entries.

Regenerate after intentional changes with::

    python -m repro_lint --write-baseline

which preserves the justification of every entry that still matches and
stamps ``TODO: justify`` on new ones (fill those in before committing).
Entries that no longer match any finding are *stale*: they fail the
normal run (exit 1) and are removed with ``--prune-baseline``.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro_lint.engine import Finding

BASELINE_VERSION = 1
_TODO = "TODO: justify"

Key = Tuple[str, str, str]  # (rule, path, message)


class Baseline:
    """Multiset of grandfathered findings, keyed line-number-free."""

    def __init__(self, entries: Sequence[Dict[str, str]] = ()) -> None:
        self.entries: List[Dict[str, str]] = [dict(e) for e in entries]

    @staticmethod
    def _key(entry: Dict[str, str]) -> Key:
        return (entry["rule"], entry["path"], entry["message"])

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(data, dict) or "findings" not in data:
            raise ValueError(f"{path}: not a repro-lint baseline file")
        version = data.get("version")
        if version != BASELINE_VERSION:
            raise ValueError(
                f"{path}: unsupported baseline version {version!r} "
                f"(this tool writes version {BASELINE_VERSION})"
            )
        entries = data["findings"]
        for entry in entries:
            missing = {"rule", "path", "message"} - set(entry)
            if missing:
                raise ValueError(
                    f"{path}: baseline entry missing field(s) "
                    f"{', '.join(sorted(missing))}: {entry!r}"
                )
        return cls(entries)

    def save(self, path: Path) -> None:
        entries = sorted(self.entries, key=self._key)
        payload = {"version": BASELINE_VERSION, "findings": entries}
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    # -- matching --------------------------------------------------------
    def split(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Dict[str, str]]]:
        """Partition findings into (new, still-baselined-entries).

        Returns the findings *not* covered by the baseline plus the list
        of baseline entries that went unmatched (stale — the underlying
        code was fixed and the entry should be pruned).
        """
        budget: Counter[Key] = Counter(self._key(e) for e in self.entries)
        fresh: List[Finding] = []
        for finding in findings:
            key = finding.baseline_key
            if budget.get(key, 0) > 0:
                budget[key] -= 1
            else:
                fresh.append(finding)
        stale: List[Dict[str, str]] = []
        for entry in self.entries:
            key = self._key(entry)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                stale.append(entry)
        return fresh, stale

    def pruned(self, stale: Sequence[Dict[str, str]]) -> "Baseline":
        """A copy with the given stale entries removed (multiset-wise)."""
        budget: Counter[Key] = Counter(self._key(e) for e in stale)
        kept: List[Dict[str, str]] = []
        for entry in self.entries:
            key = self._key(entry)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
            else:
                kept.append(entry)
        return Baseline(kept)

    @classmethod
    def from_findings(
        cls, findings: Sequence[Finding], previous: "Baseline"
    ) -> "Baseline":
        """A fresh baseline covering ``findings``, keeping old justifications."""
        justifications: Dict[Key, List[str]] = {}
        for entry in previous.entries:
            justifications.setdefault(cls._key(entry), []).append(
                entry.get("justification", _TODO)
            )
        entries: List[Dict[str, str]] = []
        for finding in sorted(findings):
            key = finding.baseline_key
            pool = justifications.get(key)
            justification = pool.pop(0) if pool else _TODO
            entries.append(
                {
                    "rule": finding.rule_id,
                    "path": finding.path,
                    "message": finding.message,
                    "justification": justification,
                }
            )
        return cls(entries)

"""Make the ``tools`` directory importable for the repro_lint test suite.

The tier-1 run (``python -m pytest -x -q`` at the repo root) collects
``tools/repro_lint/tests`` along with everything else; this conftest
puts ``tools`` itself on ``sys.path`` so ``import repro_lint`` resolves
without requiring PYTHONPATH juggling.
"""

import sys
from pathlib import Path

_TOOLS_DIR = str(Path(__file__).resolve().parent)
if _TOOLS_DIR not in sys.path:
    sys.path.insert(0, _TOOLS_DIR)

from setuptools import find_packages, setup

setup(
    name="repro",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    # PEP 561: ship inline type information (repro.api is checked with
    # mypy --strict in CI; see mypy.ini and docs/LINTING.md).
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.10",
    # The core install is dependency-free pure Python.  numpy only
    # accelerates the bulk f(U) evaluation on large batches; decisions
    # are bit-identical either way (see docs/PERFORMANCE.md).
    extras_require={"fast": ["numpy"]},
)

from setuptools import find_packages, setup

setup(
    name="repro",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    # The core install is dependency-free pure Python.  numpy only
    # accelerates the bulk f(U) evaluation on large batches; decisions
    # are bit-identical either way (see docs/PERFORMANCE.md).
    extras_require={"fast": ["numpy"]},
)

#!/usr/bin/env python3
"""Valve-blockage overload — the paper's section 7.2 scenario.

    "In an industrial control system, a blockage in a fluid flow valve may
    cause a sharp increase in the load on the processors immediately
    connected to it, as aperiodic alert and diagnostic tasks are
    launched."

Three processors near the valve host all tasks (synthetic utilization
0.7); two stand-by processors host only replicas.  The example runs the
same arrival trace through three scenarios differing only in load
balancing (J_J_N, J_J_T, J_J_J) — one declarative suite, executed in
parallel — and shows how spilling load onto the replica processors
raises the accepted utilization ratio.
"""

import os
import random

from repro.api import ExperimentSuite, Scenario
from repro.experiments.report import bar_chart, format_table
from repro.workloads.imbalanced import generate_imbalanced_workload

DURATION = float(os.environ.get("REPRO_EXAMPLE_DURATION", "120.0"))


def main() -> None:
    workload = generate_imbalanced_workload(random.Random(2008))
    print("processor static utilization (all tasks current):")
    for node, util in sorted(workload.static_utilization().items()):
        role = "loaded" if util > 0 else "replica-only"
        print(f"  {node}: {util:.2f}  ({role})")

    suite = ExperimentSuite(
        name="valve-blockage",
        cells=tuple(
            Scenario.builder()
            .workload(workload)
            .combo(label)
            .duration(DURATION)
            .seed(7)
            .interarrival_factor(1.5)
            .build()
            for label in ("J_J_N", "J_J_T", "J_J_J")
        ),
    )

    ratios = {}
    rows = []
    for run in suite.run_results():
        ratios[run.combo_label] = run.accepted_utilization_ratio
        spill = sum(
            util
            for node, util in run.cpu_utilization.items()
            if node in ("app4", "app5")
        )
        rows.append(
            [
                run.combo_label,
                run.accepted_utilization_ratio,
                run.rejected_jobs,
                f"{spill:.4f}",
                run.deadline_misses,
            ]
        )

    print()
    print(
        format_table(
            ["combo", "accepted ratio", "rejected jobs",
             "replica-cpu busy", "misses"],
            rows,
            title=f"Valve blockage: LB strategy comparison ({DURATION:.0f} s)",
        )
    )
    print()
    print(bar_chart(ratios, title="Accepted utilization ratio"))
    gain = ratios["J_J_T"] - ratios["J_J_N"]
    print(f"\nload balancing per task recovers {gain:+.3f} accepted "
          "utilization ratio over no load balancing")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Centralized vs decentralized admission control (paper section 3).

The paper chose one central AC/LB pair on a task-manager processor and
argued a distributed alternative would need synchronization among
admission controllers.  This example runs both architectures on the same
random workload and prints the measured trade-off: coordination traffic
and conservatism versus the (theoretical) central bottleneck.
"""

import random

from repro.core.distributed_ac import DistributedMiddlewareSystem
from repro.core.middleware import MiddlewareSystem
from repro.core.strategies import StrategyCombo
from repro.experiments.report import format_table
from repro.workloads.generator import generate_random_workload


def main() -> None:
    rows = []
    for seed in range(4):
        workload = generate_random_workload(random.Random(300 + seed))
        centralized = MiddlewareSystem(
            workload, StrategyCombo.from_label("J_N_N"), seed=seed
        )
        r_cent = centralized.run(duration=90.0)
        distributed = DistributedMiddlewareSystem(workload, seed=seed)
        r_dist = distributed.run(duration=90.0)
        rows.append(
            [
                seed,
                r_cent.accepted_utilization_ratio,
                r_dist.accepted_utilization_ratio,
                r_cent.messages_sent,
                r_dist.messages_sent,
                r_dist.reserve_messages,
                r_cent.deadline_misses + r_dist.deadline_misses,
            ]
        )

    print(
        format_table(
            ["set", "central ratio", "distrib ratio", "central msgs",
             "distrib msgs", "reserve msgs", "misses"],
            rows,
            title="Centralized vs decentralized admission control (90 s)",
        )
    )
    print(
        "\nThe decentralized two-phase protocol preserves the deadline "
        "guarantee\nbut partitions AUB slack into per-processor caps "
        "(conservative) and pays\nextra coordination messages — the "
        "trade-off behind the paper's centralized choice."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Centralized vs decentralized admission control (paper section 3).

The paper chose one central AC/LB pair on a task-manager processor and
argued a distributed alternative would need synchronization among
admission controllers.  This example expresses both architectures as
scenarios — same workload source, different ``engine`` — runs the whole
grid through one parallel suite, and prints the measured trade-off:
coordination traffic and conservatism versus the (theoretical) central
bottleneck.
"""

import os

from repro.api import ExperimentSuite, Scenario
from repro.experiments.report import format_table

DURATION = float(os.environ.get("REPRO_EXAMPLE_DURATION", "90.0"))
SEEDS = range(4)


def main() -> None:
    cells = []
    for seed in SEEDS:
        base = (
            Scenario.builder()
            .random_workload(seed=300 + seed, stream="wl")
            .combo("J_N_N")
            .duration(DURATION)
            .seed(seed)
        )
        cells.append(base.build())
        cells.append(
            Scenario.builder()
            .random_workload(seed=300 + seed, stream="wl")
            .distributed()
            .duration(DURATION)
            .seed(seed)
            .build()
        )
    suite = ExperimentSuite(name="central-vs-distributed", cells=tuple(cells))
    outcomes = iter(suite.run_results())

    rows = []
    for seed, (r_cent, r_dist) in zip(SEEDS, zip(outcomes, outcomes)):
        rows.append(
            [
                seed,
                r_cent.accepted_utilization_ratio,
                r_dist.accepted_utilization_ratio,
                r_cent.messages_sent,
                r_dist.messages_sent,
                r_dist.reserve_messages,
                r_cent.deadline_misses + r_dist.deadline_misses,
            ]
        )

    print(
        format_table(
            ["set", "central ratio", "distrib ratio", "central msgs",
             "distrib msgs", "reserve msgs", "misses"],
            rows,
            title=f"Centralized vs decentralized admission control "
                  f"({DURATION:.0f} s)",
        )
    )
    print(
        "\nThe decentralized two-phase protocol preserves the deadline "
        "guarantee\nbut partitions AUB slack into per-processor caps "
        "(conservative) and pays\nextra coordination messages — the "
        "trade-off behind the paper's centralized choice."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Trace a run and render per-processor execution timelines.

Runs a small plant workload with tracing enabled (``.trace()`` on the
scenario builder), then prints the first events chronologically, the full
history of one hazard-alert job, and an ASCII lane chart of the first two
seconds — the kind of visibility the paper's authors got from KURT-Linux
timestamp instrumentation.  The live system (and its tracer) stays
reachable through ``Session.system``.
"""

import os

from repro import SubtaskSpec, TaskKind, TaskSpec, Workload
from repro.api import Scenario, Session
from repro.sim.timeline import build_timeline, format_lanes, format_timeline

DURATION = float(os.environ.get("REPRO_EXAMPLE_DURATION", "10.0"))


def main() -> None:
    scan = TaskSpec(
        task_id="scan",
        kind=TaskKind.PERIODIC,
        deadline=0.5,
        period=0.5,
        subtasks=(
            SubtaskSpec(0, 0.05, "floor1", ("floor2",)),
            SubtaskSpec(1, 0.05, "floor2", ("floor1",)),
        ),
    )
    alert = TaskSpec(
        task_id="alert",
        kind=TaskKind.APERIODIC,
        deadline=0.3,
        subtasks=(
            SubtaskSpec(0, 0.02, "floor1", ("floor2",)),
            SubtaskSpec(1, 0.02, "floor2", ("floor1",)),
        ),
    )
    workload = Workload(tasks=(scan, alert), app_nodes=("floor1", "floor2"))

    scenario = (
        Scenario.builder()
        .workload(workload)
        .combo("J_J_T")
        .duration(DURATION)
        .seed(5)
        .trace()
        .build()
    )
    session = Session(scenario)
    result = session.run()
    timeline = build_timeline(session.system.tracer)

    print("=== first events of the run ===")
    print(format_timeline(timeline, limit=25))

    print("\n=== full history of alert job #0 ===")
    for event in timeline.job_history("alert", 0):
        print(f"  {event.time:10.6f}s  {event.node:12} {event.category}")

    print("\n=== processor lanes, first 2 seconds ===")
    print(
        format_lanes(
            timeline,
            nodes=["task_manager", "floor1", "floor2"],
            start=0.0,
            end=2.0,
        )
    )
    print(f"\ntotal trace events: {len(session.system.tracer)}; "
          f"accepted ratio {result.accepted_utilization_ratio:.3f}")


if __name__ == "__main__":
    main()

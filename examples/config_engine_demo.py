#!/usr/bin/env python3
"""The front-end configuration engine end to end (paper Figure 4).

1. Write a workload specification file (the paper's first input).
2. Answer the engine's four questions.
3. The engine maps the answers to strategies (Table 1), generates the
   XML deployment plan with EDMS priorities, and validates it —
   including refusing an invalid hand-edited plan.
4. DAnCE-lite deploys the plan and the system runs.
"""

import tempfile
from pathlib import Path

from repro.config import ConfigurationEngine
from repro.config.xml_io import parse_xml
from repro.errors import InvalidStrategyCombination
from repro.core.strategies import StrategyCombo

WORKLOAD_SPEC = """\
# Conveyor-line workload: two end-to-end tasks over three processors.
processors lineA lineB lineC
manager task_manager

task belt_control periodic deadline=0.5 period=0.5
  subtask exec=0.02 on=lineA replicas=lineB
  subtask exec=0.03 on=lineB replicas=lineC

task jam_alert aperiodic deadline=0.25
  subtask exec=0.01 on=lineA replicas=lineC
  subtask exec=0.02 on=lineC replicas=lineB
"""

ANSWERS = {
    "job_skipping": "Y",            # loss-tolerant alerts
    "replicated_components": "Y",   # duplicates above
    "state_persistence": "N",       # stateless proportional control
    "overhead_tolerance": "PJ",     # accept per-job overhead
}


def main() -> None:
    engine = ConfigurationEngine()

    with tempfile.TemporaryDirectory() as tmp:
        spec_path = Path(tmp) / "conveyor.spec"
        spec_path.write_text(WORKLOAD_SPEC)
        result = engine.configure_from_files(spec_path, ANSWERS)

    print("questionnaire answers  :", ANSWERS)
    print("mapped strategy combo  :", result.combo.label)
    for note in result.notes:
        print("engine note            :", note)

    print("\n--- generated XML deployment plan (excerpt) ---")
    for line in result.xml.splitlines()[:28]:
        print(line)
    print("  ... "
          f"({len(result.plan.instances)} instances, "
          f"{len(result.plan.connections)} connections total)")

    # The engine refuses invalid combinations outright.
    print("\n--- invalid configuration attempt ---")
    try:
        engine.configure(
            result.workload, combo=StrategyCombo.from_label("T_J_N")
        )
    except InvalidStrategyCombination as exc:
        print(f"rejected as expected: {exc}")

    # Round-trip through XML, then deploy and run via DAnCE-lite.
    plan = parse_xml(result.xml)
    system = engine.deploy_xml(result.xml, seed=1)
    run = system.run(duration=60.0)
    print("\n--- deployed system run (60 s) ---")
    print(f"plan label                 : {plan.label}")
    print(f"accepted utilization ratio : {run.accepted_utilization_ratio:.3f}")
    print(f"jobs arrived / released    : "
          f"{run.metrics.arrived_jobs} / {run.metrics.released_jobs}")
    print(f"deadline misses            : {run.deadline_misses}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The front-end configuration engine end to end (paper Figure 4).

1. Write a workload specification file (the paper's first input).
2. Answer the engine's four questions.
3. The engine maps the answers to strategies (Table 1), generates the
   XML deployment plan with EDMS priorities, and validates it —
   including refusing an invalid hand-edited plan.
4. The decision is emitted as a declarative ``repro.api`` Scenario that
   round-trips through JSON, and DAnCE-lite deploys + runs it.
"""

import os
import tempfile
from pathlib import Path

from repro.api import Scenario, Session
from repro.config import ConfigurationEngine
from repro.config.xml_io import parse_xml
from repro.errors import InvalidStrategyCombination
from repro.core.strategies import StrategyCombo

DURATION = float(os.environ.get("REPRO_EXAMPLE_DURATION", "60.0"))

WORKLOAD_SPEC = """\
# Conveyor-line workload: two end-to-end tasks over three processors.
processors lineA lineB lineC
manager task_manager

task belt_control periodic deadline=0.5 period=0.5
  subtask exec=0.02 on=lineA replicas=lineB
  subtask exec=0.03 on=lineB replicas=lineC

task jam_alert aperiodic deadline=0.25
  subtask exec=0.01 on=lineA replicas=lineC
  subtask exec=0.02 on=lineC replicas=lineB
"""

ANSWERS = {
    "job_skipping": "Y",            # loss-tolerant alerts
    "replicated_components": "Y",   # duplicates above
    "state_persistence": "N",       # stateless proportional control
    "overhead_tolerance": "PJ",     # accept per-job overhead
}


def main() -> None:
    engine = ConfigurationEngine()

    with tempfile.TemporaryDirectory() as tmp:
        spec_path = Path(tmp) / "conveyor.spec"
        spec_path.write_text(WORKLOAD_SPEC)
        result = engine.configure_from_files(spec_path, ANSWERS)

    print("questionnaire answers  :", ANSWERS)
    print("mapped strategy combo  :", result.combo.label)
    for note in result.notes:
        print("engine note            :", note)

    print("\n--- generated XML deployment plan (excerpt) ---")
    for line in result.xml.splitlines()[:28]:
        print(line)
    print("  ... "
          f"({len(result.plan.instances)} instances, "
          f"{len(result.plan.connections)} connections total)")

    # The engine refuses invalid combinations outright.
    print("\n--- invalid configuration attempt ---")
    try:
        engine.configure(
            result.workload, combo=StrategyCombo.from_label("T_J_N")
        )
    except InvalidStrategyCombination as exc:
        print(f"rejected as expected: {exc}")

    # The decision as a declarative scenario, round-tripped through JSON.
    scenario = engine.scenario(result, duration=DURATION, seed=1)
    restored = Scenario.from_json_str(scenario.to_json_str())
    assert restored == scenario
    print("\n--- scenario JSON round-trip ---")
    print(f"combo={restored.combo} duration={restored.duration:.0f}s "
          f"seed={restored.seed} (round-trip exact)")

    # Deploy and run via DAnCE-lite (workload + combo -> XML plan ->
    # Execution Manager), the same path `repro scenario run --via-dance`
    # takes.
    plan = parse_xml(result.xml)
    session = Session(restored, via_dance=True)
    run = session.run()
    print(f"\n--- deployed system run ({DURATION:.0f} s) ---")
    print(f"plan label                 : {plan.label}")
    print(f"accepted utilization ratio : {run.accepted_utilization_ratio:.3f}")
    print(f"jobs arrived / released    : "
          f"{run.arrived_jobs} / {run.released_jobs}")
    print(f"deadline misses            : {run.deadline_misses}")


if __name__ == "__main__":
    main()

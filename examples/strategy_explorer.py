#!/usr/bin/env python3
"""Sweep all 15 valid strategy combinations over one random workload.

Reproduces a single-task-set slice of the paper's Figure 5 and prints the
bar chart plus the trade-off summary (acceptance vs middleware events —
the overhead proxy the paper asks developers to weigh).
"""

import random

from repro import MiddlewareSystem, valid_combinations
from repro.experiments.report import bar_chart, format_table
from repro.workloads.generator import generate_random_workload


def main() -> None:
    workload = generate_random_workload(random.Random(11))
    print(f"workload: {len(workload.tasks)} tasks over "
          f"{len(workload.app_nodes)} processors, "
          f"static utilization {list(workload.static_utilization().values())[0]:.2f}")

    ratios = {}
    rows = []
    for combo in valid_combinations():
        system = MiddlewareSystem(workload, combo, seed=3)
        run = system.run(duration=90.0)
        ratios[combo.label] = run.accepted_utilization_ratio
        rows.append(
            [
                combo.label,
                run.accepted_utilization_ratio,
                run.metrics.rejected_jobs,
                run.messages_sent,
                run.deadline_misses,
            ]
        )

    print()
    print(bar_chart(ratios, title="Accepted utilization ratio by combination"))
    print()
    print(
        format_table(
            ["combo", "ratio", "rejected", "messages", "misses"],
            rows,
            title="Acceptance vs middleware traffic (90 s, one task set)",
        )
    )
    best = max(ratios, key=ratios.get)
    cheapest = min(rows, key=lambda r: r[3])
    print(f"\nbest acceptance: {best} ({ratios[best]:.3f}); "
          f"fewest middleware messages: {cheapest[0]} ({cheapest[3]})")


if __name__ == "__main__":
    main()

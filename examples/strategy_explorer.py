#!/usr/bin/env python3
"""Sweep all 15 valid strategy combinations over one random workload.

Reproduces a single-task-set slice of the paper's Figure 5 and prints the
bar chart plus the trade-off summary (acceptance vs middleware events —
the overhead proxy the paper asks developers to weigh).

The sweep is one declarative :class:`repro.api.ExperimentSuite` — 15
scenarios differing only in their combo name — fanned out over all cores
by the shared parallel runner.
"""

import os

from repro import valid_combinations
from repro.api import ExperimentSuite, Scenario
from repro.experiments.report import bar_chart, format_table

DURATION = float(os.environ.get("REPRO_EXAMPLE_DURATION", "90.0"))


def main() -> None:
    suite = ExperimentSuite(
        name="strategy-explorer",
        cells=tuple(
            Scenario.builder()
            .random_workload(seed=11, stream="wl")
            .combo(combo)
            .duration(DURATION)
            .seed(3)
            .build()
            for combo in valid_combinations()
        ),
    )
    results = suite.run_results()
    workload = suite.cells[0].workload.materialize()
    print(f"workload: {len(workload.tasks)} tasks over "
          f"{len(workload.app_nodes)} processors, "
          f"static utilization "
          f"{list(workload.static_utilization().values())[0]:.2f}")

    ratios = {}
    rows = []
    for run in results:
        ratios[run.combo_label] = run.accepted_utilization_ratio
        rows.append(
            [
                run.combo_label,
                run.accepted_utilization_ratio,
                run.rejected_jobs,
                run.messages_sent,
                run.deadline_misses,
            ]
        )

    print()
    print(bar_chart(ratios, title="Accepted utilization ratio by combination"))
    print()
    print(
        format_table(
            ["combo", "ratio", "rejected", "messages", "misses"],
            rows,
            title=f"Acceptance vs middleware traffic "
                  f"({DURATION:.0f} s, one task set)",
        )
    )
    best = max(ratios, key=ratios.get)
    cheapest = min(rows, key=lambda r: r[3])
    print(f"\nbest acceptance: {best} ({ratios[best]:.3f}); "
          f"fewest middleware messages: {cheapest[0]} ({cheapest[3]})")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Industrial plant monitoring — the paper's motivating scenario.

    "In an industrial plant monitoring system, an aperiodic alert may be
    generated when a series of periodic sensor readings meets certain
    hazard detection criteria.  This alert must be processed on multiple
    processors within an end-to-end deadline, e.g., to put an industrial
    process into a fail-safe mode."

Five periodic sensor-scan tasks run across three plant-floor processors.
A hazard-alert task (aperiodic, 3-stage: detect -> diagnose -> actuate)
must finish within 300 ms end to end.  Because the alert chain drives a
fail-safe actuator, the application cannot skip jobs (criterion C1 = no)
and its diagnosis stage keeps state (C2 = yes) — the configuration engine
therefore selects per-task strategies, exactly the paper's Figure 4
example.  The engine *emits* the configured run as a declarative
:class:`repro.api.Scenario`, which a Session deploys through the full
DAnCE-lite pipeline.
"""

import os

from repro.api import Session
from repro.config import ApplicationCharacteristics, ConfigurationEngine
from repro.config.characteristics import OverheadTolerance
from repro.sched.task import SubtaskSpec, TaskKind, TaskSpec
from repro.workloads.model import Workload

PLANT_FLOOR = ("floor1", "floor2", "floor3")
DURATION = float(os.environ.get("REPRO_EXAMPLE_DURATION", "120.0"))


def build_workload() -> Workload:
    tasks = []
    # Periodic sensor scans: one per floor pair, staggered phases.
    scan_configs = [
        ("scan_temperature", "floor1", "floor2", 1.0, 0.04),
        ("scan_pressure", "floor2", "floor3", 0.8, 0.03),
        ("scan_flow", "floor3", "floor1", 1.2, 0.05),
        ("scan_vibration", "floor1", "floor3", 2.0, 0.06),
        ("scan_level", "floor2", "floor1", 1.5, 0.04),
    ]
    for i, (name, first, second, period, execution) in enumerate(scan_configs):
        tasks.append(
            TaskSpec(
                task_id=name,
                kind=TaskKind.PERIODIC,
                deadline=period,
                period=period,
                phase=0.1 * i,
                subtasks=(
                    SubtaskSpec(0, execution, first, _others(first)),
                    SubtaskSpec(1, execution / 2, second, _others(second)),
                ),
            )
        )
    # The hazard alert: detect on the floor, diagnose centrally, actuate.
    tasks.append(
        TaskSpec(
            task_id="hazard_alert",
            kind=TaskKind.APERIODIC,
            deadline=0.3,
            subtasks=(
                SubtaskSpec(0, 0.01, "floor1", _others("floor1")),
                SubtaskSpec(1, 0.03, "floor2", _others("floor2")),
                SubtaskSpec(2, 0.01, "floor3", _others("floor3")),
            ),
        )
    )
    return Workload(tasks=tuple(tasks), app_nodes=PLANT_FLOOR)


def _others(node: str) -> tuple:
    return tuple(n for n in PLANT_FLOOR if n != node)


def main() -> None:
    workload = build_workload()
    engine = ConfigurationEngine()

    # The four questionnaire answers for a fail-safe control application.
    characteristics = ApplicationCharacteristics(
        job_skipping=False,          # C1: every admitted alert must run
        replicated_components=True,  # C3: floors can host duplicates
        state_persistence=True,      # C2: diagnosis is stateful
        overhead_tolerance=OverheadTolerance.PER_TASK,
    )
    result = engine.configure(workload, characteristics)
    print("application characteristics:", characteristics.describe())
    print("selected strategies        :", result.combo.label,
          "(AC per task, IR per task, LB per task)")
    for note in result.notes:
        print("note:", note)

    # The engine's decision, as a serializable scenario data object.
    scenario = engine.scenario(result, duration=DURATION, seed=7)
    session = Session(scenario, via_dance=True)
    run = session.run()

    print(f"\n=== plant monitoring, {DURATION:.0f} simulated seconds ===")
    print(f"jobs arrived / released / rejected : "
          f"{run.arrived_jobs} / {run.released_jobs} / {run.rejected_jobs}")
    print(f"accepted utilization ratio          : "
          f"{run.accepted_utilization_ratio:.3f}")
    alert_stats = (
        session.system.metrics.latency.task_response_times("hazard_alert")
    )
    if alert_stats.count:
        print(f"hazard alerts completed             : {alert_stats.count}")
        print(f"alert response time mean / max      : "
              f"{alert_stats.mean * 1000:.2f} ms / "
              f"{alert_stats.maximum * 1000:.2f} ms  (deadline 300 ms)")
    print(f"deadline misses                     : {run.deadline_misses}")


if __name__ == "__main__":
    main()

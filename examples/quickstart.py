#!/usr/bin/env python3
"""Quickstart: build a tiny distributed CPS and run it for one minute.

Two application processors host a periodic sensor-processing chain and an
aperiodic operator-command task.  The middleware is configured J_J_T:
per-job admission control, per-job idle resetting, per-task load
balancing.
"""

from repro import (
    MiddlewareSystem,
    StrategyCombo,
    SubtaskSpec,
    TaskKind,
    TaskSpec,
    Workload,
)


def main() -> None:
    # An end-to-end periodic task: sample on app1, then filter on app2.
    sensor_chain = TaskSpec(
        task_id="sensor_chain",
        kind=TaskKind.PERIODIC,
        deadline=0.5,
        period=0.5,
        subtasks=(
            SubtaskSpec(index=0, execution_time=0.02, home="app1", replicas=("app2",)),
            SubtaskSpec(index=1, execution_time=0.03, home="app2", replicas=("app1",)),
        ),
    )
    # Aperiodic operator commands with a 200 ms end-to-end deadline.
    operator_cmd = TaskSpec(
        task_id="operator_cmd",
        kind=TaskKind.APERIODIC,
        deadline=0.2,
        subtasks=(
            SubtaskSpec(index=0, execution_time=0.01, home="app1", replicas=("app2",)),
        ),
    )
    workload = Workload(
        tasks=(sensor_chain, operator_cmd), app_nodes=("app1", "app2")
    )

    system = MiddlewareSystem(
        workload, StrategyCombo.from_label("J_J_T"), seed=42
    )
    results = system.run(duration=60.0)

    print("=== quickstart results (60 simulated seconds) ===")
    summary = results.metrics.summary()
    for key, value in summary.items():
        print(f"  {key:28s} {value:.4f}" if isinstance(value, float) else f"  {key:28s} {value}")
    print(f"  accepted utilization ratio   {results.accepted_utilization_ratio:.3f}")
    print(f"  deadline misses              {results.deadline_misses}")
    for node, util in sorted(results.cpu_utilization.items()):
        print(f"  cpu utilization {node:12s} {util:.4f}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: build a tiny distributed CPS and run it for one minute.

Two application processors host a periodic sensor-processing chain and an
aperiodic operator-command task.  The run is described declaratively: a
frozen, JSON-serializable :class:`repro.api.Scenario` built with the
fluent builder, deployed and executed by a :class:`repro.api.Session`,
returning a typed :class:`RunResult`.  The middleware is configured
J_J_T: per-job admission control, per-job idle resetting, per-task load
balancing.
"""

import os

from repro import SubtaskSpec, TaskKind, TaskSpec, Workload
from repro.api import Scenario, Session

DURATION = float(os.environ.get("REPRO_EXAMPLE_DURATION", "60.0"))


def main() -> None:
    # An end-to-end periodic task: sample on app1, then filter on app2.
    sensor_chain = TaskSpec(
        task_id="sensor_chain",
        kind=TaskKind.PERIODIC,
        deadline=0.5,
        period=0.5,
        subtasks=(
            SubtaskSpec(index=0, execution_time=0.02, home="app1", replicas=("app2",)),
            SubtaskSpec(index=1, execution_time=0.03, home="app2", replicas=("app1",)),
        ),
    )
    # Aperiodic operator commands with a 200 ms end-to-end deadline.
    operator_cmd = TaskSpec(
        task_id="operator_cmd",
        kind=TaskKind.APERIODIC,
        deadline=0.2,
        subtasks=(
            SubtaskSpec(index=0, execution_time=0.01, home="app1", replicas=("app2",)),
        ),
    )
    workload = Workload(
        tasks=(sensor_chain, operator_cmd), app_nodes=("app1", "app2")
    )

    scenario = (
        Scenario.builder()
        .workload(workload)
        .combo("J_J_T")
        .duration(DURATION)
        .seed(42)
        .label("quickstart")
        .build()
    )
    # Scenarios round-trip through JSON — export one, run it anywhere:
    #   python -m repro scenario run quickstart.json
    print("scenario JSON preview:",
          scenario.to_json_str(indent=None)[:76] + "...")

    result = Session(scenario).run()

    print(f"=== quickstart results ({DURATION:.0f} simulated seconds) ===")
    for key, value in result.summary().items():
        print(f"  {key:28s} {value:.4f}" if isinstance(value, float)
              else f"  {key:28s} {value}")
    print(f"  accepted utilization ratio   "
          f"{result.accepted_utilization_ratio:.3f}")
    print(f"  deadline misses              {result.deadline_misses}")
    for node, util in sorted(result.cpu_utilization.items()):
        print(f"  cpu utilization {node:12s} {util:.4f}")


if __name__ == "__main__":
    main()

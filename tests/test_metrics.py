"""Unit tests for the metrics collectors."""

import pytest

from repro.metrics.latency import LatencyMetrics
from repro.metrics.overhead import (
    OverheadAccounting,
    PAPER_FIGURE8_USEC,
    ROW_AC_WITH_LB_NO_REALLOC,
    ROW_AC_WITH_LB_REALLOC,
    ROW_AC_WITHOUT_LB,
    ROW_LB_NO_REALLOC,
    ROW_LB_REALLOC,
)
from repro.metrics.ratio import MetricsCollector
from repro.sched.task import Job, TaskKind
from repro.sim.kernel import USEC

from tests.taskutil import make_task


def job_of(task, index=0, arrival=0.0):
    return Job(task, index, arrival, task.subtasks[0].home)


# ----------------------------------------------------------------------
# Accepted utilization ratio
# ----------------------------------------------------------------------
class TestMetricsCollector:
    def test_empty_ratio_is_one(self):
        assert MetricsCollector().accepted_utilization_ratio == 1.0

    def test_ratio_weights_by_utilization(self):
        metrics = MetricsCollector()
        heavy = make_task("H", TaskKind.APERIODIC, deadline=1.0, execs=(0.4,))
        light = make_task("L", TaskKind.APERIODIC, deadline=1.0, execs=(0.1,))
        for task in (heavy, light):
            metrics.on_arrival(job_of(task))
        metrics.on_release(job_of(heavy))
        metrics.on_rejection(job_of(light))
        assert metrics.accepted_utilization_ratio == pytest.approx(0.8)

    def test_per_kind_breakdown(self):
        metrics = MetricsCollector()
        p = make_task("P", TaskKind.PERIODIC, deadline=1.0, execs=(0.2,))
        a = make_task("A", TaskKind.APERIODIC, deadline=1.0, execs=(0.2,))
        metrics.on_arrival(job_of(p))
        metrics.on_arrival(job_of(a))
        metrics.on_release(job_of(p))
        metrics.on_rejection(job_of(a))
        assert metrics.kind_ratio(TaskKind.PERIODIC) == 1.0
        assert metrics.kind_ratio(TaskKind.APERIODIC) == 0.0
        assert metrics.arrived_jobs == 2
        assert metrics.released_jobs == 1
        assert metrics.rejected_jobs == 1

    def test_rejections_per_task(self):
        metrics = MetricsCollector()
        t = make_task("T", TaskKind.APERIODIC, deadline=1.0, execs=(0.1,))
        metrics.on_rejection(job_of(t, 0))
        metrics.on_rejection(job_of(t, 1))
        assert metrics.rejections_for("T") == 2
        assert metrics.rejections_for("other") == 0

    def test_completion_feeds_latency(self):
        metrics = MetricsCollector()
        t = make_task("T", TaskKind.APERIODIC, deadline=1.0, execs=(0.1,))
        job = job_of(t)
        job.completed_at = 0.4
        metrics.on_completion(job)
        assert metrics.completed_jobs == 1
        assert metrics.latency.response_times.mean == pytest.approx(0.4)

    def test_summary_keys(self):
        summary = MetricsCollector().summary()
        for key in (
            "arrived_jobs",
            "released_jobs",
            "rejected_jobs",
            "accepted_utilization_ratio",
            "completed_jobs",
            "deadline_misses",
            "mean_response_time",
        ):
            assert key in summary


# ----------------------------------------------------------------------
# Latency metrics
# ----------------------------------------------------------------------
class TestLatencyMetrics:
    def test_miss_detection(self):
        lat = LatencyMetrics()
        t = make_task("T", TaskKind.APERIODIC, deadline=1.0, execs=(0.1,))
        ok = job_of(t)
        ok.completed_at = 0.9
        late = job_of(t, index=1)
        late.completed_at = 1.5
        lat.on_completion(ok)
        lat.on_completion(late)
        assert lat.deadline_misses == 1
        assert lat.missed_jobs == [("T", 1)]
        assert lat.miss_rate == pytest.approx(0.5)

    def test_uncompleted_job_ignored(self):
        lat = LatencyMetrics()
        t = make_task("T", TaskKind.APERIODIC, deadline=1.0, execs=(0.1,))
        lat.on_completion(job_of(t))  # completed_at is None
        assert lat.response_times.count == 0

    def test_per_task_series(self):
        lat = LatencyMetrics()
        t = make_task("T", TaskKind.APERIODIC, deadline=1.0, execs=(0.1,))
        job = job_of(t)
        job.completed_at = 0.25
        lat.on_completion(job)
        assert lat.task_response_times("T").mean == pytest.approx(0.25)
        assert lat.task_response_times("missing").count == 0


# ----------------------------------------------------------------------
# Overhead accounting (Figure 8 rows)
# ----------------------------------------------------------------------
class TestOverheadAccounting:
    def test_no_lb_path_classification(self):
        acc = OverheadAccounting()
        acc.record_admission_path(1000 * USEC, lb_enabled=False, reallocated=False)
        rows = {r.name for r in acc.rows()}
        assert rows == {ROW_AC_WITHOUT_LB}

    def test_lb_no_realloc_classification(self):
        acc = OverheadAccounting()
        acc.record_admission_path(1100 * USEC, lb_enabled=True, reallocated=False)
        rows = {r.name for r in acc.rows()}
        assert rows == {ROW_AC_WITH_LB_NO_REALLOC, ROW_LB_NO_REALLOC}

    def test_lb_realloc_classification(self):
        acc = OverheadAccounting()
        acc.record_admission_path(1200 * USEC, lb_enabled=True, reallocated=True)
        rows = {r.name for r in acc.rows()}
        assert rows == {ROW_AC_WITH_LB_REALLOC, ROW_LB_REALLOC}

    def test_rows_in_microseconds(self):
        acc = OverheadAccounting()
        acc.record_admission_path(1114 * USEC, lb_enabled=False, reallocated=False)
        row = acc.row(ROW_AC_WITHOUT_LB)
        assert row.mean_usec == pytest.approx(1114.0)
        assert row.samples == 1

    def test_empty_row_is_none(self):
        acc = OverheadAccounting()
        assert acc.row(ROW_AC_WITHOUT_LB) is None
        assert acc.rows() == []

    def test_ir_and_comm_rows(self):
        acc = OverheadAccounting()
        acc.record_ir_ac_side(17 * USEC)
        acc.record_ir_other(662 * USEC)
        acc.record_communication(322 * USEC)
        names = {r.name for r in acc.rows()}
        assert names == {"ir_ac_side", "ir_other_part", "communication_delay"}

    def test_max_service_delay_excludes_ir_and_comm(self):
        acc = OverheadAccounting()
        acc.record_admission_path(1000 * USEC, lb_enabled=False, reallocated=False)
        acc.record_ir_other(5000 * USEC)
        assert acc.max_service_delay_usec() == pytest.approx(1000.0)

    def test_paper_reference_table_complete(self):
        assert set(PAPER_FIGURE8_USEC) == {
            "ac_without_lb",
            "ac_with_lb_no_realloc",
            "ac_with_lb_realloc",
            "lb_no_realloc",
            "lb_realloc",
            "ir_ac_side",
            "ir_other_part",
            "communication_delay",
        }

"""Every ``ConfigurationError`` branch in ``repro.api.scenario``.

One test per raise site, each asserting on the message so a future
reword (or a branch silently becoming unreachable) fails loudly.  The
sections mirror the module: JSON codecs, :class:`WorkloadSource`,
disturbances, :class:`Scenario` validation, JSON loading, and the
builder.
"""

from __future__ import annotations

import pytest

from repro.api import (
    Burst,
    DelaySpike,
    MessageLoss,
    NodeCrash,
    Partition,
    Scenario,
    Slowdown,
    WorkloadSource,
)
from repro.api.scenario import (
    cost_model_from_json,
    delay_model_from_json,
    delay_model_to_json,
    disturbance_from_json,
    workload_from_json,
)
from repro.errors import ConfigurationError
from repro.net.latency import DelayModel
from repro.sim.rng import RngRegistry
from repro.workloads.generator import (
    RandomWorkloadParams,
    generate_random_workload,
)
from repro.workloads.imbalanced import ImbalancedWorkloadParams


def _workload(seed=2008):
    return generate_random_workload(RngRegistry(seed).stream("wl"))


def _scenario(**overrides):
    kwargs = dict(workload=WorkloadSource.random(seed=1), duration=5.0)
    kwargs.update(overrides)
    return Scenario(**kwargs)


# ----------------------------------------------------------------------
# JSON codecs
# ----------------------------------------------------------------------
class TestCodecErrors:
    def test_workload_unknown_field(self):
        with pytest.raises(
            ConfigurationError, match="unknown workload field\\(s\\): bogus"
        ):
            workload_from_json({"app_nodes": ["n1"], "bogus": 1})

    def test_task_unknown_field(self):
        data = {
            "app_nodes": ["n1"],
            "tasks": [{"task_id": "t", "wcet": 1}],
        }
        with pytest.raises(
            ConfigurationError, match="unknown task field\\(s\\): wcet"
        ):
            workload_from_json(data)

    def test_subtask_unknown_field(self):
        data = {
            "app_nodes": ["n1"],
            "tasks": [
                {
                    "task_id": "t",
                    "kind": "periodic",
                    "deadline": 1.0,
                    "subtasks": [{"index": 0, "nope": 1}],
                }
            ],
        }
        with pytest.raises(
            ConfigurationError, match="unknown subtask field\\(s\\): nope"
        ):
            workload_from_json(data)

    def test_cost_model_unknown_field(self):
        with pytest.raises(
            ConfigurationError, match="unknown cost model field\\(s\\): warp"
        ):
            cost_model_from_json({"warp": 9})

    def test_delay_model_without_json_form(self):
        class Opaque(DelayModel):  # pragma: no cover - sample() never runs
            def sample(self, rng):
                return 0.0

        with pytest.raises(
            ConfigurationError, match="no JSON representation"
        ):
            delay_model_to_json(Opaque())

    def test_delay_model_unknown_type(self):
        with pytest.raises(
            ConfigurationError, match="unknown delay model type 'gamma'"
        ):
            delay_model_from_json({"type": "gamma"})

    def test_delay_model_unknown_field(self):
        with pytest.raises(
            ConfigurationError, match="unknown delay model field\\(s\\): skew"
        ):
            delay_model_from_json({"type": "constant", "delay": 1.0, "skew": 2})

    def test_delay_model_incomplete(self):
        with pytest.raises(
            ConfigurationError, match="incomplete uniform delay model"
        ):
            delay_model_from_json({"type": "uniform", "low": 0.1})


# ----------------------------------------------------------------------
# WorkloadSource validation
# ----------------------------------------------------------------------
class TestWorkloadSourceErrors:
    def test_unknown_kind(self):
        with pytest.raises(
            ConfigurationError, match="unknown workload source kind 'psychic'"
        ):
            WorkloadSource(kind="psychic")

    def test_explicit_needs_workload(self):
        with pytest.raises(
            ConfigurationError, match="explicit workload source needs a workload"
        ):
            WorkloadSource(kind="explicit")

    def test_explicit_rejects_generator_fields(self):
        with pytest.raises(ConfigurationError, match="conflicting fields"):
            WorkloadSource(kind="explicit", workload=_workload(), seed=3)

    def test_generated_rejects_embedded_workload(self):
        with pytest.raises(
            ConfigurationError, match="must not embed an explicit workload"
        ):
            WorkloadSource(kind="random", seed=1, workload=_workload())

    def test_generated_needs_seed(self):
        with pytest.raises(
            ConfigurationError, match="random workload source needs a generator seed"
        ):
            WorkloadSource(kind="random")

    def test_negative_index(self):
        with pytest.raises(
            ConfigurationError, match="workload index must be >= 0"
        ):
            WorkloadSource(kind="random", seed=1, index=-1)

    def test_params_type_mismatch(self):
        with pytest.raises(
            ConfigurationError,
            match="imbalanced workload source needs ImbalancedWorkloadParams",
        ):
            WorkloadSource(
                kind="imbalanced", seed=1, params=RandomWorkloadParams()
            )
        with pytest.raises(
            ConfigurationError,
            match="random workload source needs RandomWorkloadParams",
        ):
            WorkloadSource(
                kind="random", seed=1, params=ImbalancedWorkloadParams()
            )

    def test_from_json_unknown_field(self):
        with pytest.raises(
            ConfigurationError, match="unknown workload source field\\(s\\): extra"
        ):
            WorkloadSource.from_json({"kind": "random", "seed": 1, "extra": 2})

    def test_from_json_explicit_without_workload(self):
        with pytest.raises(
            ConfigurationError, match="explicit workload source needs a workload"
        ):
            WorkloadSource.from_json({"kind": "explicit"})

    def test_from_json_unknown_kind(self):
        with pytest.raises(
            ConfigurationError, match="unknown workload source kind 'psychic'"
        ):
            WorkloadSource.from_json({"kind": "psychic"})

    def test_from_json_unknown_params_field(self):
        with pytest.raises(
            ConfigurationError, match="unknown workload params field\\(s\\): n_moons"
        ):
            WorkloadSource.from_json(
                {"kind": "random", "seed": 1, "params": {"n_moons": 4}}
            )


# ----------------------------------------------------------------------
# Disturbances
# ----------------------------------------------------------------------
class TestDisturbanceErrors:
    def test_burst_negative_time(self):
        with pytest.raises(ConfigurationError, match="burst time must be >= 0"):
            Burst(time=-1.0, jobs=1)

    def test_burst_negative_jobs(self):
        with pytest.raises(
            ConfigurationError, match="burst job count must be >= 0"
        ):
            Burst(time=1.0, jobs=-1)

    def test_burst_nonpositive_spacing(self):
        with pytest.raises(ConfigurationError, match="burst spacing must be > 0"):
            Burst(time=1.0, jobs=1, spacing=0.0)

    def test_slowdown_negative_time(self):
        with pytest.raises(
            ConfigurationError, match="slowdown time must be >= 0"
        ):
            Slowdown(time=-1.0, factor=0.5)

    def test_slowdown_nonpositive_factor(self):
        with pytest.raises(
            ConfigurationError, match="slowdown factor must be > 0"
        ):
            Slowdown(time=1.0, factor=0.0)

    def test_from_json_unknown_burst_field(self):
        with pytest.raises(
            ConfigurationError, match="unknown burst field\\(s\\): volume"
        ):
            disturbance_from_json(
                {"type": "burst", "time": 1.0, "jobs": 2, "volume": 11}
            )

    def test_from_json_unknown_slowdown_field(self):
        with pytest.raises(
            ConfigurationError, match="unknown slowdown field\\(s\\): why"
        ):
            disturbance_from_json(
                {"type": "slowdown", "time": 1.0, "factor": 0.5, "why": "x"}
            )

    def test_from_json_unknown_type(self):
        with pytest.raises(
            ConfigurationError,
            match=(
                "unknown disturbance type 'quake'; expected one of 'burst', "
                "'slowdown', 'node_crash', 'partition', 'delay_spike', "
                "'message_loss'"
            ),
        ):
            disturbance_from_json({"type": "quake"})


# ----------------------------------------------------------------------
# Chaos (fault) disturbances
# ----------------------------------------------------------------------
class TestFaultDisturbanceErrors:
    def test_node_crash_needs_node(self):
        with pytest.raises(
            ConfigurationError, match="node crash needs a node name"
        ):
            NodeCrash(node="", time=1.0)

    def test_node_crash_negative_time(self):
        with pytest.raises(
            ConfigurationError, match="node crash time must be >= 0"
        ):
            NodeCrash(node="n1", time=-1.0)

    def test_node_crash_recovery_before_crash(self):
        with pytest.raises(
            ConfigurationError,
            match="node crash recovery must be after the crash time",
        ):
            NodeCrash(node="n1", time=2.0, recovery=2.0)

    def test_partition_negative_time(self):
        with pytest.raises(
            ConfigurationError, match="partition time must be >= 0"
        ):
            Partition(time=-1.0, heal=2.0, group_a=("a",), group_b=("b",))

    def test_partition_heal_before_start(self):
        with pytest.raises(
            ConfigurationError,
            match="partition heal must be after the partition time",
        ):
            Partition(time=2.0, heal=2.0, group_a=("a",), group_b=("b",))

    def test_partition_needs_both_groups(self):
        with pytest.raises(
            ConfigurationError, match="partition needs two non-empty node groups"
        ):
            Partition(time=1.0, heal=2.0, group_a=("a",), group_b=())

    def test_partition_groups_must_be_disjoint(self):
        with pytest.raises(
            ConfigurationError,
            match="partition groups must be disjoint; both sides contain \\['b'\\]",
        ):
            Partition(time=1.0, heal=2.0, group_a=("a", "b"), group_b=("b", "c"))

    def test_delay_spike_negative_time(self):
        with pytest.raises(
            ConfigurationError, match="delay spike time must be >= 0"
        ):
            DelaySpike(time=-1.0, until=2.0, factor=3.0)

    def test_delay_spike_until_before_start(self):
        with pytest.raises(
            ConfigurationError,
            match="delay spike until must be after its start time",
        ):
            DelaySpike(time=2.0, until=2.0, factor=3.0)

    def test_delay_spike_nonpositive_factor(self):
        with pytest.raises(
            ConfigurationError, match="delay spike factor must be > 0"
        ):
            DelaySpike(time=1.0, until=2.0, factor=0.0)

    def test_message_loss_probability_out_of_range(self):
        with pytest.raises(
            ConfigurationError,
            match="message loss probability must be in \\(0, 1\\], got 0.0",
        ):
            MessageLoss(probability=0.0)
        with pytest.raises(
            ConfigurationError,
            match="message loss probability must be in \\(0, 1\\], got 1.5",
        ):
            MessageLoss(probability=1.5)

    def test_message_loss_negative_time(self):
        with pytest.raises(
            ConfigurationError, match="message loss time must be >= 0"
        ):
            MessageLoss(probability=0.5, time=-1.0)

    def test_message_loss_until_before_start(self):
        with pytest.raises(
            ConfigurationError,
            match="message loss until must be after its start time",
        ):
            MessageLoss(probability=0.5, time=2.0, until=2.0)

    def test_message_loss_needs_stream(self):
        with pytest.raises(
            ConfigurationError, match="message loss needs an RNG stream name"
        ):
            MessageLoss(probability=0.5, stream="")

    def test_from_json_unknown_node_crash_field(self):
        with pytest.raises(
            ConfigurationError, match="unknown node crash field\\(s\\): blast"
        ):
            disturbance_from_json(
                {"type": "node_crash", "node": "n1", "time": 1.0, "blast": 2}
            )

    def test_from_json_unknown_partition_field(self):
        with pytest.raises(
            ConfigurationError, match="unknown partition field\\(s\\): depth"
        ):
            disturbance_from_json(
                {
                    "type": "partition",
                    "time": 1.0,
                    "heal": 2.0,
                    "group_a": ["a"],
                    "group_b": ["b"],
                    "depth": 3,
                }
            )

    def test_from_json_unknown_delay_spike_field(self):
        with pytest.raises(
            ConfigurationError, match="unknown delay spike field\\(s\\): shape"
        ):
            disturbance_from_json(
                {
                    "type": "delay_spike",
                    "time": 1.0,
                    "until": 2.0,
                    "factor": 3.0,
                    "shape": "saw",
                }
            )

    def test_from_json_unknown_message_loss_field(self):
        with pytest.raises(
            ConfigurationError, match="unknown message loss field\\(s\\): burstiness"
        ):
            disturbance_from_json(
                {"type": "message_loss", "probability": 0.5, "burstiness": 2}
            )

    def test_middleware_rejects_fault_disturbances(self):
        for disturbance in (
            NodeCrash(node="n1", time=1.0),
            Partition(time=1.0, heal=2.0, group_a=("n1",), group_b=("n2",)),
            MessageLoss(probability=0.5),
        ):
            with pytest.raises(
                ConfigurationError,
                match=(
                    "node crash/partition/message loss disturbances require "
                    "the distributed engine"
                ),
            ):
                _scenario(disturbances=(disturbance,))

    def test_middleware_allows_delay_spike(self):
        scenario = _scenario(
            disturbances=(DelaySpike(time=1.0, until=2.0, factor=3.0),)
        )
        assert scenario.disturbances

    def test_distributed_allows_fault_disturbances(self):
        scenario = _scenario(
            engine="distributed",
            combo="J_N_N",
            disturbances=(
                NodeCrash(node="n1", time=1.0, recovery=2.0),
                MessageLoss(probability=0.1, until=4.0),
            ),
        )
        assert len(scenario.disturbances) == 2


# ----------------------------------------------------------------------
# Session-time node-reference validation
# ----------------------------------------------------------------------
class TestSessionNodeValidation:
    def _session(self, *disturbances, engine="distributed", combo="J_N_N"):
        from repro.api import Session

        return Session(
            _scenario(
                engine=engine, combo=combo, disturbances=tuple(disturbances)
            )
        )

    def test_node_crash_unknown_node(self):
        with pytest.raises(
            ConfigurationError,
            match="NodeCrash disturbance references unknown node\\(s\\) 'ghost'",
        ):
            self._session(NodeCrash(node="ghost", time=1.0))

    def test_partition_unknown_node(self):
        nodes = tuple(
            WorkloadSource.random(seed=1).materialize().app_nodes
        )
        with pytest.raises(
            ConfigurationError,
            match="Partition disturbance references unknown node\\(s\\) 'phantom'",
        ):
            self._session(
                Partition(
                    time=1.0,
                    heal=2.0,
                    group_a=(nodes[0],),
                    group_b=("phantom",),
                )
            )

    def test_slowdown_unknown_node(self):
        with pytest.raises(
            ConfigurationError,
            match="Slowdown disturbance references unknown node\\(s\\) 'nope'",
        ):
            self._session(
                Slowdown(time=1.0, factor=0.5, nodes=("nope",)),
                engine="middleware",
                combo="J_J_J",
            )

    def test_known_nodes_pass(self):
        nodes = tuple(
            WorkloadSource.random(seed=1).materialize().app_nodes
        )
        session = self._session(
            NodeCrash(node=nodes[0], time=1.0, recovery=2.0),
            Partition(
                time=1.0, heal=2.0, group_a=nodes[:1], group_b=nodes[1:2]
            ),
        )
        assert session.scenario.disturbances


# ----------------------------------------------------------------------
# Scenario validation
# ----------------------------------------------------------------------
class TestScenarioErrors:
    def test_workload_must_be_source(self):
        with pytest.raises(
            ConfigurationError, match="workload must be a WorkloadSource"
        ):
            Scenario(workload=_workload())

    def test_nonpositive_duration(self):
        with pytest.raises(
            ConfigurationError, match="scenario duration must be > 0, got 0.0"
        ):
            _scenario(duration=0.0)

    def test_nonpositive_interarrival_factor(self):
        with pytest.raises(
            ConfigurationError,
            match="aperiodic_interarrival_factor must be > 0, got -2.0",
        ):
            _scenario(aperiodic_interarrival_factor=-2.0)

    def test_unknown_engine(self):
        with pytest.raises(
            ConfigurationError, match="unknown engine 'quantum'"
        ):
            _scenario(engine="quantum")

    def test_duplicate_policy_params(self):
        with pytest.raises(
            ConfigurationError,
            match="duplicate policy parameter name\\(s\\): \\['budget', 'budget'\\]",
        ):
            _scenario(
                engine="replay",
                policy="deferrable_server",
                policy_params=(("budget", 0.1), ("budget", 0.2)),
            )

    def test_unknown_combo_surfaces_at_build_time(self):
        with pytest.raises(
            ConfigurationError, match="unknown strategy combo 'X_X_X'"
        ):
            _scenario(combo="X_X_X")

    def test_replay_needs_policy(self):
        with pytest.raises(
            ConfigurationError, match="replay scenarios need an admission policy"
        ):
            _scenario(engine="replay")

    def test_replay_rejects_disturbances(self):
        with pytest.raises(
            ConfigurationError, match="disturbances conflict\\s+with the replay engine"
        ):
            _scenario(
                engine="replay",
                policy="aub",
                disturbances=(Burst(time=1.0, jobs=1),),
            )

    def test_replay_rejects_trace(self):
        with pytest.raises(
            ConfigurationError, match="trace=True conflicts\\s+with the replay engine"
        ):
            _scenario(engine="replay", policy="aub", trace=True)

    def test_replay_rejects_cost_and_delay_models(self):
        from repro.core.cost_model import CostModel

        with pytest.raises(
            ConfigurationError, match="cost/delay models\\s+conflict"
        ):
            _scenario(engine="replay", policy="aub", cost_model=CostModel())

    def test_replay_rejects_arrival_batching(self):
        with pytest.raises(
            ConfigurationError, match="arrival_batching conflicts with the replay"
        ):
            _scenario(engine="replay", policy="aub", arrival_batching=True)

    def test_policy_on_non_replay_engine(self):
        with pytest.raises(
            ConfigurationError,
            match="admission policies only apply to the replay engine",
        ):
            _scenario(policy="aub")

    def test_custom_arrival_stream_on_non_replay_engine(self):
        with pytest.raises(
            ConfigurationError,
            match="a custom arrival_stream\\s+only applies to the replay engine",
        ):
            _scenario(arrival_stream="late_arrivals")

    def test_distributed_requires_jnn(self):
        with pytest.raises(
            ConfigurationError, match="only the J_N_N\\s+configuration, got 'T_T_T'"
        ):
            _scenario(engine="distributed", combo="T_T_T")

    def test_distributed_rejects_burst_slowdown_disturbances(self):
        with pytest.raises(
            ConfigurationError,
            match=(
                "burst/slowdown disturbances are not supported by the "
                "distributed engine"
            ),
        ):
            _scenario(
                engine="distributed",
                combo="J_N_N",
                disturbances=(Slowdown(time=1.0, factor=0.5),),
            )

    def test_distributed_rejects_trace(self):
        with pytest.raises(
            ConfigurationError,
            match="tracing is not supported by the distributed engine",
        ):
            _scenario(engine="distributed", combo="J_N_N", trace=True)

    def test_unknown_disturbance_object(self):
        with pytest.raises(
            ConfigurationError, match="unknown disturbance object"
        ):
            _scenario(disturbances=("tornado",))

    def test_overlapping_burst_index_ranges(self):
        with pytest.raises(
            ConfigurationError,
            match=r"overlapping job index ranges \(100000, 100005\) and "
            r"\(100003, 100007\)",
        ):
            _scenario(
                disturbances=(
                    Burst(time=1.0, jobs=5),
                    Burst(time=2.0, jobs=4, base_index=100_003),
                )
            )

    def test_zero_job_bursts_do_not_overlap(self):
        scenario = _scenario(
            disturbances=(
                Burst(time=1.0, jobs=0),
                Burst(time=2.0, jobs=0),
            )
        )
        assert len(scenario.disturbances) == 2


# ----------------------------------------------------------------------
# Scenario JSON loading
# ----------------------------------------------------------------------
class TestScenarioJsonErrors:
    def test_from_json_rejects_non_object(self):
        with pytest.raises(
            ConfigurationError, match="scenario JSON must be an object, got list"
        ):
            Scenario.from_json([1, 2, 3])

    def test_from_json_unknown_field(self):
        with pytest.raises(
            ConfigurationError, match="unknown scenario field\\(s\\): turbo"
        ):
            Scenario.from_json(
                {"workload": {"kind": "random", "seed": 1}, "turbo": True}
            )

    def test_from_json_needs_workload(self):
        with pytest.raises(
            ConfigurationError, match="scenario JSON needs a workload source"
        ):
            Scenario.from_json({"duration": 5.0})

    def test_from_json_policy_params_must_be_object(self):
        with pytest.raises(
            ConfigurationError, match="policy_params must be an object"
        ):
            Scenario.from_json(
                {
                    "workload": {"kind": "random", "seed": 1},
                    "engine": "replay",
                    "policy": "aub",
                    "policy_params": [1, 2],
                }
            )

    def test_from_json_str_rejects_invalid_json(self):
        with pytest.raises(
            ConfigurationError, match="invalid scenario JSON"
        ):
            Scenario.from_json_str("{not json")


# ----------------------------------------------------------------------
# Builder
# ----------------------------------------------------------------------
class TestBuilderErrors:
    def test_two_workload_sources_conflict(self):
        builder = Scenario.builder().random_workload(seed=1)
        with pytest.raises(
            ConfigurationError,
            match="already has a workload source \\(conflicting fields\\)",
        ):
            builder.workload(_workload())

    def test_build_without_workload(self):
        with pytest.raises(
            ConfigurationError, match="scenario needs a workload source; call"
        ):
            Scenario.builder().duration(5.0).build()

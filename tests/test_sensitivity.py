"""Tests for the sensitivity sweeps (scaled down)."""

import pytest

from repro.core.strategies import StrategyCombo
from repro.experiments.sensitivity import (
    sweep_load,
    sweep_network_delay,
    sweep_overhead,
)


class TestLoadSweep:
    def test_heavier_load_lowers_acceptance(self):
        result = sweep_load(
            factors=(4.0, 1.0, 0.5), duration=40.0, seed=3
        )
        ratios = result.ratios()
        assert ratios[0] > ratios[-1], "light load must be accepted more"
        assert result.monotone_decreasing()

    def test_points_carry_parameters(self):
        result = sweep_load(factors=(2.0,), duration=20.0)
        assert result.points[0][0] == 2.0
        assert result.parameter == "aperiodic_interarrival_factor"


class TestOverheadSweep:
    def test_calibrated_overheads_negligible(self):
        result = sweep_overhead(scales=(0.0, 1.0), duration=40.0, seed=3)
        zero, calibrated = result.ratios()
        assert calibrated == pytest.approx(zero, abs=0.05)

    def test_extreme_overheads_do_not_break_invariants(self):
        result = sweep_overhead(scales=(100.0,), duration=20.0, seed=3)
        assert 0.0 <= result.ratios()[0] <= 1.0


class TestDelaySweep:
    def test_small_delays_equivalent(self):
        points = sweep_network_delay(
            delays=(0.0003, 0.001), duration=40.0, seed=3
        )
        assert points[0].accepted_utilization_ratio == pytest.approx(
            points[1].accepted_utilization_ratio, abs=0.05
        )

    def test_large_delay_breaks_admission_guarantee(self):
        """At LAN-scale delays the AUB guarantee holds; at 50 ms one-way
        the centralized AC's view goes stale and deadline misses appear —
        the scalability limit the paper's section 3 discussion alludes to."""
        points = sweep_network_delay(
            delays=(0.001, 0.05), duration=40.0, seed=3
        )
        assert points[0].deadline_misses == 0
        assert points[1].deadline_misses > 0

    def test_results_in_range(self):
        for p in sweep_network_delay(delays=(0.001,), duration=20.0, seed=3):
            assert 0.0 <= p.accepted_utilization_ratio <= 1.0
            assert p.deadline_misses >= 0

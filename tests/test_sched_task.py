"""Unit tests for the end-to-end task model."""

import pytest

from repro.errors import TaskModelError
from repro.sched.task import Job, JobStatus, SubtaskSpec, TaskKind, TaskSpec

from tests.taskutil import make_task


# ----------------------------------------------------------------------
# SubtaskSpec
# ----------------------------------------------------------------------
class TestSubtaskSpec:
    def test_eligible_lists_home_first(self):
        s = SubtaskSpec(0, 0.1, "a", ("b", "c"))
        assert s.eligible == ("a", "b", "c")

    def test_negative_index_rejected(self):
        with pytest.raises(TaskModelError):
            SubtaskSpec(-1, 0.1, "a")

    def test_nonpositive_execution_rejected(self):
        with pytest.raises(TaskModelError):
            SubtaskSpec(0, 0.0, "a")

    def test_home_in_replicas_rejected(self):
        with pytest.raises(TaskModelError):
            SubtaskSpec(0, 0.1, "a", ("a",))

    def test_duplicate_replicas_rejected(self):
        with pytest.raises(TaskModelError):
            SubtaskSpec(0, 0.1, "a", ("b", "b"))


# ----------------------------------------------------------------------
# TaskSpec
# ----------------------------------------------------------------------
class TestTaskSpec:
    def test_periodic_requires_period(self):
        with pytest.raises(TaskModelError):
            TaskSpec(
                "T",
                TaskKind.PERIODIC,
                1.0,
                (SubtaskSpec(0, 0.1, "a"),),
                period=None,
            )

    def test_aperiodic_must_not_have_period(self):
        with pytest.raises(TaskModelError):
            TaskSpec(
                "T",
                TaskKind.APERIODIC,
                1.0,
                (SubtaskSpec(0, 0.1, "a"),),
                period=1.0,
            )

    def test_deadline_must_be_positive(self):
        with pytest.raises(TaskModelError):
            make_task(deadline=0.0)

    def test_empty_task_id_rejected(self):
        with pytest.raises(TaskModelError):
            make_task(task_id="")

    def test_needs_subtasks(self):
        with pytest.raises(TaskModelError):
            TaskSpec("T", TaskKind.APERIODIC, 1.0, ())

    def test_subtask_indices_must_be_consecutive(self):
        with pytest.raises(TaskModelError):
            TaskSpec(
                "T",
                TaskKind.APERIODIC,
                1.0,
                (SubtaskSpec(1, 0.1, "a"),),
            )

    def test_total_execution_cannot_exceed_deadline(self):
        with pytest.raises(TaskModelError):
            make_task(deadline=0.1, execs=(0.06, 0.06), homes=("a", "b"))

    def test_negative_phase_rejected(self):
        with pytest.raises(TaskModelError):
            make_task(phase=-1.0)

    def test_subtask_utilization(self):
        task = make_task(deadline=2.0, execs=(0.5, 0.1), homes=("a", "b"))
        assert task.subtask_utilization(0) == pytest.approx(0.25)
        assert task.subtask_utilization(1) == pytest.approx(0.05)
        assert task.total_utilization == pytest.approx(0.3)

    def test_home_assignment(self):
        task = make_task(execs=(0.1, 0.1), homes=("a", "b"))
        assert task.home_assignment() == {0: "a", 1: "b"}

    def test_visited_processors_includes_repeats(self):
        task = make_task(execs=(0.1, 0.1), homes=("a", "a"))
        assert task.visited_processors(task.home_assignment()) == ["a", "a"]

    def test_is_periodic(self):
        assert make_task(kind=TaskKind.PERIODIC).is_periodic
        assert not make_task(kind=TaskKind.APERIODIC).is_periodic


# ----------------------------------------------------------------------
# Job
# ----------------------------------------------------------------------
class TestJob:
    def test_key_and_deadline(self):
        task = make_task(deadline=2.0)
        job = Job(task, 3, arrival_time=10.0, arrival_node="a")
        assert job.key == ("T1", 3)
        assert job.absolute_deadline == 12.0

    def test_initial_status(self):
        job = Job(make_task(), 0, 0.0, "a")
        assert job.status is JobStatus.ARRIVED
        assert job.response_time is None
        assert job.met_deadline is None

    def test_response_time_and_deadline_check(self):
        task = make_task(deadline=1.0)
        job = Job(task, 0, 5.0, "a")
        job.completed_at = 5.8
        assert job.response_time == pytest.approx(0.8)
        assert job.met_deadline
        job.completed_at = 6.5
        assert not job.met_deadline

    def test_utilization_matches_task(self):
        task = make_task(deadline=1.0, execs=(0.1, 0.2), homes=("a", "b"))
        job = Job(task, 0, 0.0, "a")
        assert job.utilization == pytest.approx(0.3)

"""Property-based tests (hypothesis) for the AUB machinery."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched.aub import (
    AubAnalyzer,
    NaiveAubAnalyzer,
    SyntheticUtilizationLedger,
    aub_term,
    aub_term_inverse,
    task_condition_holds,
)

utilizations = st.floats(
    min_value=0.0, max_value=0.999, allow_nan=False, allow_infinity=False
)

small_utils = st.floats(min_value=0.0, max_value=0.4, allow_nan=False)


class TestAubTermProperties:
    @given(utilizations)
    def test_term_nonnegative_and_finite_below_one(self, u):
        value = aub_term(u)
        assert value >= 0.0
        assert math.isfinite(value)

    @given(utilizations, utilizations)
    def test_term_monotone(self, a, b):
        lo, hi = sorted((a, b))
        assert aub_term(lo) <= aub_term(hi)

    @given(utilizations)
    def test_term_dominates_utilization(self, u):
        # f(u) >= u for all u in [0, 1): the synthetic utilization term is
        # never smaller than the utilization itself.
        assert aub_term(u) >= u - 1e-12

    @given(st.lists(small_utils, max_size=2))
    def test_condition_holds_for_light_paths(self, utils):
        # Paths of <= 2 stages at <= 0.4 utilization always satisfy (1):
        # 2 * f(0.4) = 1.0666... is the boundary, f(0.4) alone is 0.533.
        if sum(aub_term(u) for u in utils) <= 1.0:
            assert task_condition_holds(utils)

    @given(st.lists(utilizations, min_size=1, max_size=6))
    def test_condition_equivalent_to_sum(self, utils):
        expected = sum(aub_term(u) for u in utils) <= 1.0 + 1e-9
        assert task_condition_holds(utils) == expected


class TestLedgerProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c"]),
                st.integers(min_value=0, max_value=30),
                st.floats(min_value=0.001, max_value=0.2, allow_nan=False),
            ),
            max_size=40,
        )
    )
    def test_total_is_sum_of_live_contributions(self, ops):
        """Adding then removing arbitrary contributions keeps the ledger
        total equal to the sum of live entries (no drift, never negative)."""
        ledger = SyntheticUtilizationLedger(["a", "b", "c"])
        live = {}
        for node, key_id, value in ops:
            key = ("T", key_id, 0)
            if (node, key) in live:
                ledger.remove(node, key)
                del live[(node, key)]
            else:
                ledger.add(node, key, value)
                live[(node, key)] = value
        for node in ("a", "b", "c"):
            expected = sum(v for (n, _k), v in live.items() if n == node)
            assert ledger.utilization(node) >= 0.0
            assert abs(ledger.utilization(node) - expected) < 1e-9

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10),
                st.floats(min_value=0.001, max_value=0.3, allow_nan=False),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_remove_is_exact_inverse_of_add(self, entries):
        ledger = SyntheticUtilizationLedger(["a"])
        for i, (key_id, value) in enumerate(entries):
            ledger.add("a", ("T", i, key_id), value)
        for i, (key_id, value) in enumerate(entries):
            ledger.remove("a", ("T", i, key_id))
        assert ledger.utilization("a") == 0.0
        assert ledger.contribution_count("a") == 0


class TestAnalyzerProperties:
    @settings(max_examples=50)
    @given(
        st.lists(
            st.tuples(
                st.lists(st.sampled_from(["a", "b"]), min_size=1, max_size=3),
                st.floats(min_value=0.01, max_value=0.5, allow_nan=False),
            ),
            max_size=15,
        )
    )
    def test_admitted_set_always_satisfies_condition(self, candidates):
        """Greedily admitting candidates through the analyzer keeps
        condition (1) true for every admitted task — the core AUB
        invariant the middleware relies on."""
        ledger = SyntheticUtilizationLedger(["a", "b"])
        analyzer = AubAnalyzer(ledger)
        admitted = []
        for i, (visits, per_stage) in enumerate(candidates):
            contribs = {}
            for node in visits:
                contribs[node] = contribs.get(node, 0.0) + per_stage
            if analyzer.admissible(visits, contribs, now=0.0):
                for j, node in enumerate(visits):
                    ledger.add(node, (f"T{i}", 0, j), per_stage)
                analyzer.register((f"T{i}", 0), visits, None)
                admitted.append(visits)
        totals = ledger.snapshot()
        for visits in admitted:
            assert task_condition_holds([totals[n] for n in visits])
        for node, total in totals.items():
            assert total < 1.0


class TestAubTermInverseProperties:
    @given(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    def test_round_trip_is_tight(self, t):
        u = aub_term_inverse(t)
        assert 0.0 <= u < 1.0
        assert math.isclose(aub_term(u), t, rel_tol=1e-9, abs_tol=1e-12)

    @given(st.floats(min_value=0.0, max_value=0.999999, allow_nan=False))
    def test_inverse_of_term_recovers_utilization(self, u):
        assert math.isclose(
            aub_term_inverse(aub_term(u)), u, rel_tol=1e-9, abs_tol=1e-12
        )


class _MirroredSystem:
    """Drives the incremental and naive analyzers through the identical
    add/remove/relocate/expiry sequence, asserting decision parity."""

    NODES = ("a", "b", "c", "d")

    def __init__(self):
        self.ledger_inc = SyntheticUtilizationLedger(self.NODES)
        self.ledger_nai = SyntheticUtilizationLedger(self.NODES)
        self.inc = AubAnalyzer(self.ledger_inc)
        self.nai = NaiveAubAnalyzer(self.ledger_nai)
        #: key -> (visits, per-stage utils, expiry or None)
        self.live = {}
        self.now = 0.0
        self.counter = 0
        self.decisions = []

    # -- helpers -------------------------------------------------------
    def _commit(self, key, visits, stage_utils, expiry):
        for j, (node, u) in enumerate(zip(visits, stage_utils)):
            self.ledger_inc.add(node, (key[0], key[1], j), u, self.now)
            self.ledger_nai.add(node, (key[0], key[1], j), u, self.now)
        self.inc.register(key, list(visits), expiry)
        self.nai.register(key, list(visits), expiry)
        self.live[key] = (list(visits), list(stage_utils), expiry)

    def _evict(self, key):
        visits, stage_utils, _expiry = self.live.pop(key)
        for j, node in enumerate(visits):
            self.ledger_inc.remove(node, (key[0], key[1], j), self.now)
            self.ledger_nai.remove(node, (key[0], key[1], j), self.now)
        self.inc.unregister(key)
        self.nai.unregister(key)

    def advance(self, dt):
        self.now += dt
        for key in [
            k for k, (_v, _u, exp) in self.live.items()
            if exp is not None and exp <= self.now
        ]:
            self._evict(key)

    # -- operations ----------------------------------------------------
    def arrival(self, visits, stage_utils, lifetime):
        contribs = {}
        for node, u in zip(visits, stage_utils):
            contribs[node] = contribs.get(node, 0.0) + u
        got = self.inc.admissible(visits, contribs, self.now)
        want = self.nai.admissible(visits, contribs, self.now)
        assert got == want, (
            f"arrival decision diverged at t={self.now}: "
            f"incremental={got} naive={want} visits={visits} utils={stage_utils}"
        )
        self.decisions.append(got)
        if got:
            key = (f"T{self.counter}", 0)
            self.counter += 1
            expiry = None if lifetime is None else self.now + lifetime
            self._commit(key, visits, stage_utils, expiry)

    def relocate(self, key, new_visits):
        """Move an admitted task, evaluated as a delta with exclude."""
        visits, stage_utils, expiry = self.live[key]
        if len(new_visits) != len(visits):
            return
        delta = {}
        for node, u in zip(new_visits, stage_utils):
            delta[node] = delta.get(node, 0.0) + u
        for node, u in zip(visits, stage_utils):
            delta[node] = delta.get(node, 0.0) - u
        got = self.inc.admissible(new_visits, delta, self.now, exclude=key)
        want = self.nai.admissible(new_visits, delta, self.now, exclude=key)
        assert got == want, (
            f"relocation decision diverged at t={self.now}: "
            f"incremental={got} naive={want}"
        )
        self.decisions.append(got)
        if got:
            self._evict(key)
            self._commit(key, new_visits, stage_utils, expiry)

    def idle_reset(self, key, stage):
        """Reclaim one stage's contribution early (ledger-only removal)."""
        visits, stage_utils, expiry = self.live[key]
        node = visits[stage]
        ck = (key[0], key[1], stage)
        self.ledger_inc.remove(node, ck, self.now)
        self.ledger_nai.remove(node, ck, self.now)
        stage_utils[stage] = 0.0

    def check_final_state(self):
        assert self.inc.registered == self.nai.registered
        for node in self.NODES:
            assert self.ledger_inc.utilization(node) == self.ledger_nai.utilization(node)


def _drive(rng, n_ops):
    system = _MirroredSystem()
    for _ in range(n_ops):
        system.advance(rng.random() * 0.8)
        roll = rng.random()
        if roll < 0.6 or not system.live:
            n_stages = rng.randint(1, 4)
            visits = [rng.choice(system.NODES) for _ in range(n_stages)]
            stage_utils = [rng.uniform(0.01, 0.35) for _ in range(n_stages)]
            lifetime = None if rng.random() < 0.15 else rng.uniform(0.2, 4.0)
            system.arrival(visits, stage_utils, lifetime)
        elif roll < 0.8:
            key = rng.choice(sorted(system.live))
            n_stages = len(system.live[key][0])
            new_visits = [rng.choice(system.NODES) for _ in range(n_stages)]
            system.relocate(key, new_visits)
        else:
            key = rng.choice(sorted(system.live))
            stage = rng.randrange(len(system.live[key][0]))
            system.idle_reset(key, stage)
    system.check_final_state()
    return system


class TestIncrementalMatchesNaive:
    """The incremental AubAnalyzer must agree decision-for-decision with
    the retained naive reference across random add/remove/relocate/expiry
    sequences (the tentpole's correctness contract)."""

    def test_seeded_long_sequences(self):
        admitted_something = False
        rejected_something = False
        for seed in range(8):
            system = _drive(random.Random(seed), 200)
            admitted_something |= any(system.decisions)
            rejected_something |= not all(system.decisions)
        # The workload must exercise both outcomes to be meaningful.
        assert admitted_something and rejected_something

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31))
    def test_random_sequences(self, seed):
        _drive(random.Random(seed), 60)

"""Property-based tests (hypothesis) for the AUB machinery."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched.aub import (
    AubAnalyzer,
    SyntheticUtilizationLedger,
    aub_term,
    task_condition_holds,
)

utilizations = st.floats(
    min_value=0.0, max_value=0.999, allow_nan=False, allow_infinity=False
)

small_utils = st.floats(min_value=0.0, max_value=0.4, allow_nan=False)


class TestAubTermProperties:
    @given(utilizations)
    def test_term_nonnegative_and_finite_below_one(self, u):
        value = aub_term(u)
        assert value >= 0.0
        assert math.isfinite(value)

    @given(utilizations, utilizations)
    def test_term_monotone(self, a, b):
        lo, hi = sorted((a, b))
        assert aub_term(lo) <= aub_term(hi)

    @given(utilizations)
    def test_term_dominates_utilization(self, u):
        # f(u) >= u for all u in [0, 1): the synthetic utilization term is
        # never smaller than the utilization itself.
        assert aub_term(u) >= u - 1e-12

    @given(st.lists(small_utils, max_size=2))
    def test_condition_holds_for_light_paths(self, utils):
        # Paths of <= 2 stages at <= 0.4 utilization always satisfy (1):
        # 2 * f(0.4) = 1.0666... is the boundary, f(0.4) alone is 0.533.
        if sum(aub_term(u) for u in utils) <= 1.0:
            assert task_condition_holds(utils)

    @given(st.lists(utilizations, min_size=1, max_size=6))
    def test_condition_equivalent_to_sum(self, utils):
        expected = sum(aub_term(u) for u in utils) <= 1.0 + 1e-9
        assert task_condition_holds(utils) == expected


class TestLedgerProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c"]),
                st.integers(min_value=0, max_value=30),
                st.floats(min_value=0.001, max_value=0.2, allow_nan=False),
            ),
            max_size=40,
        )
    )
    def test_total_is_sum_of_live_contributions(self, ops):
        """Adding then removing arbitrary contributions keeps the ledger
        total equal to the sum of live entries (no drift, never negative)."""
        ledger = SyntheticUtilizationLedger(["a", "b", "c"])
        live = {}
        for node, key_id, value in ops:
            key = ("T", key_id, 0)
            if (node, key) in live:
                ledger.remove(node, key)
                del live[(node, key)]
            else:
                ledger.add(node, key, value)
                live[(node, key)] = value
        for node in ("a", "b", "c"):
            expected = sum(v for (n, _k), v in live.items() if n == node)
            assert ledger.utilization(node) >= 0.0
            assert abs(ledger.utilization(node) - expected) < 1e-9

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10),
                st.floats(min_value=0.001, max_value=0.3, allow_nan=False),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_remove_is_exact_inverse_of_add(self, entries):
        ledger = SyntheticUtilizationLedger(["a"])
        for i, (key_id, value) in enumerate(entries):
            ledger.add("a", ("T", i, key_id), value)
        for i, (key_id, value) in enumerate(entries):
            ledger.remove("a", ("T", i, key_id))
        assert ledger.utilization("a") == 0.0
        assert ledger.contribution_count("a") == 0


class TestAnalyzerProperties:
    @settings(max_examples=50)
    @given(
        st.lists(
            st.tuples(
                st.lists(st.sampled_from(["a", "b"]), min_size=1, max_size=3),
                st.floats(min_value=0.01, max_value=0.5, allow_nan=False),
            ),
            max_size=15,
        )
    )
    def test_admitted_set_always_satisfies_condition(self, candidates):
        """Greedily admitting candidates through the analyzer keeps
        condition (1) true for every admitted task — the core AUB
        invariant the middleware relies on."""
        ledger = SyntheticUtilizationLedger(["a", "b"])
        analyzer = AubAnalyzer(ledger)
        admitted = []
        for i, (visits, per_stage) in enumerate(candidates):
            contribs = {}
            for node in visits:
                contribs[node] = contribs.get(node, 0.0) + per_stage
            if analyzer.admissible(visits, contribs, now=0.0):
                for j, node in enumerate(visits):
                    ledger.add(node, (f"T{i}", 0, j), per_stage)
                analyzer.register((f"T{i}", 0), visits, None)
                admitted.append(visits)
        totals = ledger.snapshot()
        for visits in admitted:
            assert task_condition_holds([totals[n] for n in visits])
        for node, total in totals.items():
            assert total < 1.0

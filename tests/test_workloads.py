"""Unit tests for workload models, arrival plans and generators."""

import random

import pytest

from repro.errors import WorkloadSpecError
from repro.sched.task import TaskKind
from repro.workloads.arrivals import (
    build_arrival_plan,
    periodic_arrivals,
    poisson_arrivals,
)
from repro.workloads.generator import (
    RandomWorkloadParams,
    generate_random_workload,
)
from repro.workloads.imbalanced import (
    ImbalancedWorkloadParams,
    generate_imbalanced_workload,
)
from repro.workloads.model import Workload

from tests.taskutil import make_task, make_two_node_workload


# ----------------------------------------------------------------------
# Workload model
# ----------------------------------------------------------------------
class TestWorkloadModel:
    def test_valid_workload(self):
        wl = make_two_node_workload()
        assert wl.task("P1").task_id == "P1"
        assert len(wl.periodic_tasks) == 1
        assert len(wl.aperiodic_tasks) == 1
        assert wl.replicated()

    def test_unknown_task_lookup(self):
        with pytest.raises(WorkloadSpecError):
            make_two_node_workload().task("nope")

    def test_empty_tasks_rejected(self):
        with pytest.raises(WorkloadSpecError):
            Workload(tasks=(), app_nodes=("a",))

    def test_duplicate_task_ids_rejected(self):
        t = make_task("X", homes=("a",))
        with pytest.raises(WorkloadSpecError):
            Workload(tasks=(t, t), app_nodes=("a",))

    def test_unknown_processor_rejected(self):
        t = make_task("X", homes=("ghost",))
        with pytest.raises(WorkloadSpecError):
            Workload(tasks=(t,), app_nodes=("a",))

    def test_manager_cannot_be_app_node(self):
        t = make_task("X", homes=("a",))
        with pytest.raises(WorkloadSpecError):
            Workload(tasks=(t,), app_nodes=("a",), manager_node="a")

    def test_static_utilization(self):
        wl = make_two_node_workload()
        util = wl.static_utilization()
        # P1: 0.05/1.0 on each node; A1: 0.02/0.5 = 0.04 on app1.
        assert util["app1"] == pytest.approx(0.09)
        assert util["app2"] == pytest.approx(0.05)


# ----------------------------------------------------------------------
# Arrival plans
# ----------------------------------------------------------------------
class TestArrivals:
    def test_periodic_arrivals_spacing(self):
        task = make_task("P", TaskKind.PERIODIC, deadline=2.0, phase=0.5)
        times = periodic_arrivals(task, horizon=10.0)
        assert times == [0.5, 2.5, 4.5, 6.5, 8.5]

    def test_periodic_arrivals_need_periodic_task(self):
        task = make_task("A", TaskKind.APERIODIC)
        with pytest.raises(WorkloadSpecError):
            periodic_arrivals(task, 10.0)

    def test_poisson_arrivals_in_horizon(self, rng):
        task = make_task("A", TaskKind.APERIODIC, deadline=1.0)
        times = poisson_arrivals(task, 100.0, 2.0, rng)
        assert all(0 <= t < 100.0 for t in times)
        assert times == sorted(times)

    def test_poisson_rate_approximation(self, rng):
        task = make_task("A", TaskKind.APERIODIC, deadline=1.0)
        times = poisson_arrivals(task, 10000.0, 2.0, rng)
        # ~5000 arrivals expected with mean interarrival 2.
        assert 4500 < len(times) < 5500

    def test_poisson_requires_positive_mean(self, rng):
        task = make_task("A", TaskKind.APERIODIC)
        with pytest.raises(WorkloadSpecError):
            poisson_arrivals(task, 10.0, 0.0, rng)

    def test_plan_covers_all_tasks(self, rng):
        wl = make_two_node_workload()
        plan = build_arrival_plan(wl, 20.0, rng)
        assert set(plan.times) == {"P1", "A1"}
        assert plan.total_jobs == sum(len(v) for v in plan.times.values())

    def test_plan_events_sorted(self, rng):
        wl = make_two_node_workload()
        plan = build_arrival_plan(wl, 20.0, rng)
        events = list(plan.events())
        assert events == sorted(events)

    def test_plan_requires_positive_horizon(self, rng):
        with pytest.raises(WorkloadSpecError):
            build_arrival_plan(make_two_node_workload(), 0.0, rng)

    def test_interarrival_factor_scales_load(self):
        wl = make_two_node_workload()
        fast = build_arrival_plan(wl, 500.0, random.Random(1), 1.0)
        slow = build_arrival_plan(wl, 500.0, random.Random(1), 4.0)
        assert len(fast.times["A1"]) > 2 * len(slow.times["A1"])


# ----------------------------------------------------------------------
# Section 7.1 random workload generator
# ----------------------------------------------------------------------
class TestRandomGenerator:
    def test_paper_defaults(self, rng):
        wl = generate_random_workload(rng)
        assert len(wl.tasks) == 9
        assert len(wl.periodic_tasks) == 5
        assert len(wl.aperiodic_tasks) == 4
        assert len(wl.app_nodes) == 5

    def test_utilization_calibrated(self, rng):
        wl = generate_random_workload(rng)
        for node, util in wl.static_utilization().items():
            assert util == pytest.approx(0.5, abs=1e-9), node

    def test_subtask_count_range(self, rng):
        for _ in range(5):
            wl = generate_random_workload(rng)
            for task in wl.tasks:
                assert 1 <= task.n_subtasks <= 5

    def test_deadline_range_and_period_equals_deadline(self, rng):
        wl = generate_random_workload(rng)
        for task in wl.tasks:
            assert 0.25 <= task.deadline <= 10.0
            if task.is_periodic:
                assert task.period == task.deadline

    def test_every_subtask_has_one_replica_elsewhere(self, rng):
        wl = generate_random_workload(rng)
        for task in wl.tasks:
            for subtask in task.subtasks:
                assert len(subtask.replicas) == 1
                assert subtask.replicas[0] != subtask.home

    def test_deterministic_for_same_rng_seed(self):
        a = generate_random_workload(random.Random(5))
        b = generate_random_workload(random.Random(5))
        assert a == b

    def test_custom_target_utilization(self, rng):
        params = RandomWorkloadParams(target_utilization=0.3)
        wl = generate_random_workload(rng, params)
        for util in wl.static_utilization().values():
            assert util == pytest.approx(0.3, abs=1e-9)

    def test_phases_inside_period(self, rng):
        wl = generate_random_workload(rng)
        for task in wl.periodic_tasks:
            assert 0 <= task.phase < task.period

    def test_phase_randomization_can_be_disabled(self, rng):
        params = RandomWorkloadParams(randomize_phases=False)
        wl = generate_random_workload(rng, params)
        assert all(t.phase == 0.0 for t in wl.periodic_tasks)

    def test_param_validation(self):
        with pytest.raises(WorkloadSpecError):
            RandomWorkloadParams(n_periodic=0, n_aperiodic=0)
        with pytest.raises(WorkloadSpecError):
            RandomWorkloadParams(target_utilization=1.5)
        with pytest.raises(WorkloadSpecError):
            RandomWorkloadParams(min_subtasks=3, max_subtasks=2)
        with pytest.raises(WorkloadSpecError):
            RandomWorkloadParams(n_processors=2, replicas_per_subtask=2)


# ----------------------------------------------------------------------
# Section 7.2 imbalanced workload generator
# ----------------------------------------------------------------------
class TestImbalancedGenerator:
    def test_paper_defaults(self, rng):
        wl = generate_imbalanced_workload(rng)
        assert len(wl.app_nodes) == 5
        util = wl.static_utilization()
        loaded = [n for n, u in util.items() if u > 0]
        empty = [n for n, u in util.items() if u == 0]
        assert len(loaded) == 3 and len(empty) == 2
        for node in loaded:
            assert util[node] == pytest.approx(0.7, abs=1e-9)

    def test_replicas_all_on_replica_group(self, rng):
        wl = generate_imbalanced_workload(rng)
        replica_nodes = {"app4", "app5"}
        for task in wl.tasks:
            for subtask in task.subtasks:
                assert len(subtask.replicas) == 1
                assert subtask.replicas[0] in replica_nodes
                assert subtask.home not in replica_nodes

    def test_subtasks_between_one_and_three(self, rng):
        wl = generate_imbalanced_workload(rng)
        for task in wl.tasks:
            assert 1 <= task.n_subtasks <= 3

    def test_param_validation(self):
        with pytest.raises(WorkloadSpecError):
            ImbalancedWorkloadParams(n_loaded_processors=0)
        with pytest.raises(WorkloadSpecError):
            ImbalancedWorkloadParams(target_utilization=0.0)

"""Integration tests: the semantics of each AC/IR/LB strategy.

These tests pin down the behavioral contracts from paper section 4:
per-task admission reserves utilization for the task's lifetime; per-job
admission releases it at job deadlines; idle resetting reclaims completed
subjobs (aperiodic only under per-task, periodic too under per-job); load
balancing per task fixes assignments while per job may move them.
"""

import pytest

from repro.core.cost_model import CostModel
from repro.core.middleware import MiddlewareSystem
from repro.core.strategies import StrategyCombo
from repro.net.latency import ConstantDelay
from repro.sched.aub import RESERVED
from repro.sched.task import TaskKind
from repro.workloads.model import Workload

from tests.taskutil import make_task

DELAY = 0.001


def build(workload, label, **kwargs):
    kwargs.setdefault("cost_model", CostModel.zero())
    kwargs.setdefault("delay_model", ConstantDelay(DELAY))
    return MiddlewareSystem(workload, StrategyCombo.from_label(label), **kwargs)


def periodic_workload(exec_time=0.1, deadline=1.0, replicas=None):
    task = make_task(
        "P1",
        TaskKind.PERIODIC,
        deadline=deadline,
        execs=(exec_time,),
        homes=("app1",),
        replicas=replicas,
    )
    nodes = sorted({n for s in task.subtasks for n in s.eligible}) or ["app1"]
    if "app2" not in nodes and replicas:
        nodes.append("app2")
    return Workload(tasks=(task,), app_nodes=tuple(nodes)), task


class TestAcPerTaskReservation:
    def test_reservation_persists_between_jobs(self):
        workload, task = periodic_workload(exec_time=0.1, deadline=1.0)
        system = build(workload, "T_N_N")
        system.run(duration=5.0, drain=False)
        # Reserved contribution never leaves the ledger.
        assert system.ac.ledger.utilization("app1") == pytest.approx(0.1)
        assert system.ac.ledger.contains("app1", ("P1", RESERVED, 0))

    def test_only_first_job_consults_ac(self):
        workload, task = periodic_workload()
        system = build(workload, "T_N_N")
        system.run(duration=5.0, drain=False)
        # ~5 jobs arrived but the AC decided only once.
        assert system.metrics.arrived_jobs >= 4
        assert system.ac.admitted_jobs == 1
        assert system.metrics.released_jobs == system.metrics.arrived_jobs

    def test_rejected_task_skips_all_jobs(self):
        blocker = make_task(
            "BLOCK", TaskKind.PERIODIC, deadline=1.0, execs=(0.55,), homes=("app1",),
            phase=0.0,
        )
        victim = make_task(
            "VICTIM", TaskKind.PERIODIC, deadline=1.0, execs=(0.5,), homes=("app1",),
            phase=0.1,
        )
        workload = Workload(tasks=(blocker, victim), app_nodes=("app1",))
        system = build(workload, "T_N_N")
        system.run(duration=5.0, drain=False)
        # VICTIM was rejected at first arrival; every job skipped.
        assert system.metrics.rejections_for("VICTIM") >= 4
        assert system.metrics.kind_ratio(TaskKind.PERIODIC) < 1.0


class TestAcPerJobExpiry:
    def test_contribution_expires_each_deadline(self):
        workload, task = periodic_workload(exec_time=0.1, deadline=1.0)
        system = build(workload, "J_N_N")
        system.run(duration=5.5, drain=False)
        # At the end of the run the current job's contribution is present,
        # but no RESERVED entry exists.
        assert not system.ac.ledger.contains("app1", ("P1", RESERVED, 0))
        assert system.ac.ledger.utilization("app1") <= 0.1 + 1e-9

    def test_every_job_tested(self):
        workload, task = periodic_workload()
        system = build(workload, "J_N_N")
        system.run(duration=5.0, drain=False)
        assert system.ac.admitted_jobs == system.metrics.arrived_jobs

    def test_rejected_job_retried_next_period(self):
        # Two periodic tasks that cannot coexist: with per-job AC the loser
        # still gets tested (and admitted whenever the other's phase allows).
        blocker = make_task(
            "BLOCK", TaskKind.APERIODIC, deadline=0.4, execs=(0.22,),
            homes=("app1",), phase=0.0,
        )
        # period > deadline: the victim's contribution leaves gaps the
        # blocker can win, so both tasks lose some arrivals to the other.
        victim = make_task(
            "VICTIM", TaskKind.PERIODIC, deadline=0.5, execs=(0.25,),
            homes=("app1",), phase=0.1, period=1.0,
        )
        workload = Workload(tasks=(blocker, victim), app_nodes=("app1",))
        system = build(
            workload, "J_N_N", aperiodic_interarrival_factor=2.0, seed=3
        )
        system.run(duration=20.0, drain=False)
        # VICTIM has both released and rejected jobs over the run.
        assert system.metrics.rejections_for("VICTIM") > 0
        victim_released = system.metrics.per_kind[TaskKind.PERIODIC].released_jobs
        assert victim_released > 0


class TestIdleResetting:
    def test_no_ir_keeps_contribution_until_deadline(self):
        workload, task = periodic_workload(exec_time=0.1, deadline=1.0)
        system = build(workload, "J_N_N")
        system.sim.schedule_at(0.0, system._arrive, task, 0, 0.0)
        system.sim.run(until=0.5)
        # Job completed at ~0.1 but contribution still held at t=0.5.
        assert system.ac.ledger.utilization("app1") == pytest.approx(0.1)

    def test_ir_per_job_reclaims_completed_periodic_subjobs(self):
        workload, task = periodic_workload(exec_time=0.1, deadline=1.0)
        system = build(workload, "J_J_N")
        system.sim.schedule_at(0.0, system._arrive, task, 0, 0.0)
        system.sim.run(until=0.5)
        # Completed subjob was reset when app1 idled (well before 0.5).
        assert system.ac.ledger.utilization("app1") == 0.0
        assert system.ac.idle_resets_applied >= 1

    def test_ir_per_task_ignores_periodic_subjobs(self):
        workload, task = periodic_workload(exec_time=0.1, deadline=1.0)
        system = build(workload, "J_T_N")
        system.sim.schedule_at(0.0, system._arrive, task, 0, 0.0)
        system.sim.run(until=0.5)
        assert system.ac.ledger.utilization("app1") == pytest.approx(0.1)

    def test_ir_per_task_reclaims_aperiodic_subjobs(self):
        task = make_task(
            "A1", TaskKind.APERIODIC, deadline=1.0, execs=(0.1,), homes=("app1",)
        )
        workload = Workload(tasks=(task,), app_nodes=("app1",))
        system = build(workload, "J_T_N")
        system.sim.schedule_at(0.0, system._arrive, task, 0, 0.0)
        system.sim.run(until=0.5)
        assert system.ac.ledger.utilization("app1") == 0.0
        assert system.env.idle_resetters["app1"].reports_sent == 1

    def test_ir_none_sends_no_reports(self):
        workload, task = periodic_workload()
        system = build(workload, "J_N_N")
        system.run(duration=3.0, drain=False)
        assert system.env.idle_resetters["app1"].reports_sent == 0

    def test_ir_improves_acceptance_for_bursty_aperiodics(self):
        """The paper's core IR claim: resetting admits more load."""
        periodic = make_task(
            "P1", TaskKind.PERIODIC, deadline=1.0, execs=(0.3,), homes=("app1",)
        )
        burst = make_task(
            "A1", TaskKind.APERIODIC, deadline=1.0, execs=(0.3,), homes=("app1",)
        )
        workload = Workload(tasks=(periodic, burst), app_nodes=("app1",))
        with_ir = build(workload, "J_J_N", seed=11, aperiodic_interarrival_factor=1.0)
        without_ir = build(workload, "J_N_N", seed=11, aperiodic_interarrival_factor=1.0)
        r_with = with_ir.run(duration=60.0)
        r_without = without_ir.run(duration=60.0)
        assert (
            r_with.accepted_utilization_ratio
            > r_without.accepted_utilization_ratio
        )


class TestLoadBalancingStrategies:
    def imbalanced_workload(self):
        resident = make_task(
            "R", TaskKind.PERIODIC, deadline=1.0, execs=(0.4,), homes=("app1",)
        )
        replicated = make_task(
            "P2",
            TaskKind.PERIODIC,
            deadline=1.0,
            execs=(0.3,),
            homes=("app1",),
            replicas=[("app2",)],
            phase=0.5,
        )
        return Workload(tasks=(resident, replicated), app_nodes=("app1", "app2"))

    def test_lb_per_task_fixes_assignment(self):
        system = build(self.imbalanced_workload(), "J_N_T")
        system.run(duration=5.0, drain=False)
        # P2 placed on app2 (lower utilization) at first arrival; all its
        # jobs ran there.
        assert system.env.task_effectors["app2"].jobs_released >= 4
        assert system.lb.location_calls >= 1

    def test_lb_per_job_relocates_each_job(self):
        system = build(self.imbalanced_workload(), "J_N_J")
        system.run(duration=5.0, drain=False)
        # Every P2 job got a fresh Location call.
        assert system.lb.location_calls >= 4

    def test_ac_per_task_lb_per_job_moves_reservation(self):
        system = build(self.imbalanced_workload(), "T_N_J")
        system.run(duration=5.0, drain=False)
        # P2's reservation lives somewhere (exactly one node holds it).
        on_app1 = system.ac.ledger.contains("app1", ("P2", RESERVED, 0))
        on_app2 = system.ac.ledger.contains("app2", ("P2", RESERVED, 0))
        assert on_app1 != on_app2

    def test_lb_improves_imbalanced_acceptance(self):
        """The paper's Figure 6 claim at unit-test scale."""
        heavy_a = make_task(
            "HA", TaskKind.APERIODIC, deadline=1.0, execs=(0.35,),
            homes=("app1",), replicas=[("app2",)],
        )
        heavy_b = make_task(
            "HB", TaskKind.APERIODIC, deadline=1.0, execs=(0.35,),
            homes=("app1",), replicas=[("app2",)],
        )
        workload = Workload(tasks=(heavy_a, heavy_b), app_nodes=("app1", "app2"))
        no_lb = build(workload, "J_N_N", seed=4, aperiodic_interarrival_factor=1.0)
        with_lb = build(workload, "J_N_T", seed=4, aperiodic_interarrival_factor=1.0)
        r_no = no_lb.run(duration=60.0)
        r_lb = with_lb.run(duration=60.0)
        assert r_lb.accepted_utilization_ratio > r_no.accepted_utilization_ratio


class TestReleaseModes:
    def test_te_release_mode_per_task_only_when_ac_t_and_lb_not_j(self):
        workload, _ = periodic_workload(replicas=[("app2",)])
        for label, expected in (
            ("T_N_N", "per_task"),
            ("T_N_T", "per_task"),
            ("T_N_J", "per_job"),
            ("J_N_N", "per_job"),
            ("J_J_J", "per_job"),
        ):
            system = build(workload, label)
            te = system.env.task_effectors["app1"]
            assert te.get_attribute("release_mode") == expected, label

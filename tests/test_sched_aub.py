"""Unit tests for AUB analysis: term, ledger, analyzer."""

import math

import pytest

from repro.errors import SchedulingError
from repro.sched.aub import (
    RESERVED,
    AubAnalyzer,
    SyntheticUtilizationLedger,
    aub_term,
    task_condition_holds,
)


# ----------------------------------------------------------------------
# aub_term — the f(u) = u(1-u/2)/(1-u) term of condition (1)
# ----------------------------------------------------------------------
class TestAubTerm:
    def test_zero(self):
        assert aub_term(0.0) == 0.0

    def test_known_value(self):
        # f(0.5) = 0.5 * 0.75 / 0.5 = 0.75
        assert aub_term(0.5) == pytest.approx(0.75)

    def test_monotonically_increasing(self):
        values = [aub_term(u / 100) for u in range(0, 100)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_saturation_gives_infinity(self):
        assert aub_term(1.0) == math.inf
        assert aub_term(1.5) == math.inf

    def test_negative_rejected(self):
        with pytest.raises(SchedulingError):
            aub_term(-0.1)

    def test_single_stage_bound(self):
        # For a single-stage task, f(u) <= 1 iff u <= 2 - sqrt(2) ~ 0.586
        # (the classic aperiodic utilization bound for one processor).
        bound = 2 - math.sqrt(2)
        assert aub_term(bound) == pytest.approx(1.0, abs=1e-9)
        assert task_condition_holds([bound - 1e-9])
        assert not task_condition_holds([bound + 1e-6])


class TestTaskCondition:
    def test_empty_visits_hold(self):
        assert task_condition_holds([])

    def test_multi_stage_sum(self):
        # Two stages at 0.5: 0.75 + 0.75 = 1.5 > 1 -> fails.
        assert not task_condition_holds([0.5, 0.5])
        # Two stages at 0.3: f(0.3) = 0.3*0.85/0.7 ~ 0.364 -> 0.729 <= 1.
        assert task_condition_holds([0.3, 0.3])

    def test_saturated_stage_fails(self):
        assert not task_condition_holds([1.0])


# ----------------------------------------------------------------------
# SyntheticUtilizationLedger
# ----------------------------------------------------------------------
class TestLedger:
    def make(self, track_time=False):
        return SyntheticUtilizationLedger(["a", "b"], track_time=track_time)

    def test_starts_empty(self):
        ledger = self.make()
        assert ledger.utilization("a") == 0.0
        assert ledger.snapshot() == {"a": 0.0, "b": 0.0}

    def test_add_accrues(self):
        ledger = self.make()
        ledger.add("a", ("T", 0, 0), 0.2)
        ledger.add("a", ("T", 0, 1), 0.1)
        assert ledger.utilization("a") == pytest.approx(0.3)
        assert ledger.utilization("b") == 0.0

    def test_duplicate_key_rejected(self):
        ledger = self.make()
        ledger.add("a", ("T", 0, 0), 0.2)
        with pytest.raises(SchedulingError):
            ledger.add("a", ("T", 0, 0), 0.2)

    def test_same_key_different_nodes_allowed(self):
        ledger = self.make()
        ledger.add("a", ("T", 0, 0), 0.2)
        ledger.add("b", ("T", 0, 0), 0.2)
        assert ledger.utilization("b") == pytest.approx(0.2)

    def test_remove_returns_presence(self):
        ledger = self.make()
        ledger.add("a", ("T", 0, 0), 0.2)
        assert ledger.remove("a", ("T", 0, 0))
        assert not ledger.remove("a", ("T", 0, 0))
        assert ledger.utilization("a") == 0.0

    def test_negative_contribution_rejected(self):
        ledger = self.make()
        with pytest.raises(SchedulingError):
            ledger.add("a", ("T", 0, 0), -0.1)

    def test_unknown_node_rejected(self):
        ledger = self.make()
        with pytest.raises(SchedulingError):
            ledger.add("zz", ("T", 0, 0), 0.1)
        with pytest.raises(SchedulingError):
            ledger.utilization("zz")

    def test_contains(self):
        ledger = self.make()
        ledger.add("a", ("T", 0, 0), 0.2)
        assert ledger.contains("a", ("T", 0, 0))
        assert not ledger.contains("b", ("T", 0, 0))

    def test_contribution_count(self):
        ledger = self.make()
        ledger.add("a", ("T", 0, 0), 0.2)
        ledger.add("a", ("T", 1, 0), 0.2)
        assert ledger.contribution_count("a") == 2

    def test_time_weighted_average(self):
        ledger = self.make(track_time=True)
        ledger.add("a", ("T", 0, 0), 0.4, now=0.0)
        ledger.remove("a", ("T", 0, 0), now=5.0)
        assert ledger.average_utilization("a", 10.0) == pytest.approx(0.2)

    def test_average_requires_tracking(self):
        ledger = self.make(track_time=False)
        with pytest.raises(SchedulingError):
            ledger.average_utilization("a", 1.0)

    def test_needs_at_least_one_node(self):
        with pytest.raises(SchedulingError):
            SyntheticUtilizationLedger([])


# ----------------------------------------------------------------------
# AubAnalyzer
# ----------------------------------------------------------------------
class TestAnalyzer:
    def make(self):
        ledger = SyntheticUtilizationLedger(["a", "b"])
        return ledger, AubAnalyzer(ledger)

    def test_empty_system_admits_feasible_task(self):
        _ledger, analyzer = self.make()
        assert analyzer.admissible(["a"], {"a": 0.3}, now=0.0)

    def test_candidate_over_bound_rejected(self):
        _ledger, analyzer = self.make()
        # Two stages at 0.5 each on the same processor: U=1 -> saturated.
        assert not analyzer.admissible(["a", "a"], {"a": 1.0}, now=0.0)

    def test_existing_task_protected(self):
        ledger, analyzer = self.make()
        # Existing two-stage task at 0.3 per stage: sum f(0.3)*2 ~ 0.73.
        ledger.add("a", ("T1", 0, 0), 0.3)
        ledger.add("b", ("T1", 0, 1), 0.3)
        analyzer.register(("T1", 0), ["a", "b"], expiry=100.0)
        # Candidate pushing processor "a" to 0.75 would be fine for itself
        # (single stage: f(0.75) ~ 1.875 > 1 actually fails)...
        assert not analyzer.admissible(["a"], {"a": 0.45}, now=0.0)
        # A small candidate on "a" keeps everyone schedulable.
        assert analyzer.admissible(["a"], {"a": 0.1}, now=0.0)

    def test_candidate_rejected_when_it_breaks_existing_task(self):
        ledger, analyzer = self.make()
        # Existing task visits both processors at 0.4: 2*f(0.4) ~ 1.07 > 1?
        # f(0.4) = 0.4*0.8/0.6 = 0.5333 -> 1.067 > 1. Use 0.35 instead:
        # f(0.35) = 0.35*0.825/0.65 = 0.4442 -> 0.888 <= 1. OK.
        ledger.add("a", ("T1", 0, 0), 0.35)
        ledger.add("b", ("T1", 0, 1), 0.35)
        analyzer.register(("T1", 0), ["a", "b"], expiry=100.0)
        # Candidate only visits "a" and is fine alone, but pushes T1 over.
        # After adding 0.2 to "a": f(0.55)+f(0.35) = 0.886+0.444 = 1.33 > 1.
        assert not analyzer.admissible(["a"], {"a": 0.2}, now=0.0)

    def test_expired_registrations_pruned(self):
        ledger, analyzer = self.make()
        ledger.add("a", ("T1", 0, 0), 0.35)
        ledger.add("b", ("T1", 0, 1), 0.35)
        analyzer.register(("T1", 0), ["a", "b"], expiry=10.0)
        assert analyzer.registered == 1
        # After expiry (contributions would also have been removed).
        ledger.remove("a", ("T1", 0, 0))
        ledger.remove("b", ("T1", 0, 1))
        assert analyzer.admissible(["a"], {"a": 0.2}, now=11.0)
        assert analyzer.registered == 0

    def test_exclude_skips_relocating_task(self):
        ledger, analyzer = self.make()
        ledger.add("a", ("T1", RESERVED, 0), 0.5)
        analyzer.register(("T1", RESERVED), ["a"], expiry=None)
        # Moving T1 from "a" to "b": delta -0.5 on a, +0.5 on b.
        assert analyzer.admissible(
            ["b"], {"a": -0.5, "b": 0.5}, now=0.0, exclude=("T1", RESERVED)
        )

    def test_negative_delta_clamps_at_zero(self):
        _ledger, analyzer = self.make()
        # A bogus negative delta on an empty node must not produce a
        # negative utilization in the hypothetical totals.
        assert analyzer.admissible(["a"], {"a": -0.2}, now=0.0)

    def test_unregister(self):
        _ledger, analyzer = self.make()
        analyzer.register(("T1", 0), ["a"], expiry=None)
        analyzer.unregister(("T1", 0))
        assert analyzer.registered == 0

    def test_tests_performed_counter(self):
        _ledger, analyzer = self.make()
        analyzer.admissible(["a"], {"a": 0.1}, now=0.0)
        analyzer.admissible(["a"], {"a": 0.1}, now=0.0)
        assert analyzer.tests_performed == 2

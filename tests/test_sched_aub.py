"""Unit tests for AUB analysis: term, ledger, analyzer."""

import math

import pytest

from repro.errors import SchedulingError
from repro.sched.aub import (
    RESERVED,
    AubAnalyzer,
    NaiveAubAnalyzer,
    SyntheticUtilizationLedger,
    aub_term,
    aub_term_inverse,
    task_condition_holds,
)


# ----------------------------------------------------------------------
# aub_term — the f(u) = u(1-u/2)/(1-u) term of condition (1)
# ----------------------------------------------------------------------
class TestAubTerm:
    def test_zero(self):
        assert aub_term(0.0) == 0.0

    def test_known_value(self):
        # f(0.5) = 0.5 * 0.75 / 0.5 = 0.75
        assert aub_term(0.5) == pytest.approx(0.75)

    def test_monotonically_increasing(self):
        values = [aub_term(u / 100) for u in range(0, 100)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_saturation_gives_infinity(self):
        assert aub_term(1.0) == math.inf
        assert aub_term(1.5) == math.inf

    def test_negative_rejected(self):
        with pytest.raises(SchedulingError):
            aub_term(-0.1)

    def test_single_stage_bound(self):
        # For a single-stage task, f(u) <= 1 iff u <= 2 - sqrt(2) ~ 0.586
        # (the classic aperiodic utilization bound for one processor).
        bound = 2 - math.sqrt(2)
        assert aub_term(bound) == pytest.approx(1.0, abs=1e-9)
        assert task_condition_holds([bound - 1e-9])
        assert not task_condition_holds([bound + 1e-6])


class TestAubTermInverse:
    def test_zero(self):
        assert aub_term_inverse(0.0) == 0.0

    def test_infinity_maps_to_saturation(self):
        assert aub_term_inverse(math.inf) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(SchedulingError):
            aub_term_inverse(-1e-6)

    def test_round_trip_small_and_moderate(self):
        for t in (1e-12, 1e-6, 0.1, 0.5, 1.0, 2.0, 10.0, 1e3, 1e6):
            u = aub_term_inverse(t)
            assert 0.0 <= u < 1.0
            assert aub_term(u) == pytest.approx(t, rel=1e-9)

    def test_large_t_no_catastrophic_cancellation(self):
        # The old form (1+t) - sqrt((1+t)^2 - 2t) collapses to exactly 1.0
        # (and f then to +inf) once t reaches ~1e8; the conjugate form must
        # stay strictly below 1 and keep the round trip tight far beyond.
        for t in (1e8, 1e10, 1e12):
            u = aub_term_inverse(t)
            assert u < 1.0, f"inverse saturated at t={t}"
            # Round-trip error is dominated by representing u near 1 (the
            # irreducible part); it must stay tiny, not blow up to inf.
            assert aub_term(u) == pytest.approx(t, rel=1e-3)
        # Even at 1e15 the inverse stays below 1 and f stays finite.
        u = aub_term_inverse(1e15)
        assert u < 1.0
        assert math.isfinite(aub_term(u))

    def test_inverse_round_trip_from_utilization(self):
        for u in (0.0, 0.1, 0.3, 0.586, 0.9, 0.99, 0.9999):
            assert aub_term_inverse(aub_term(u)) == pytest.approx(u, rel=1e-9)

    def test_monotone_in_t(self):
        values = [aub_term_inverse(10.0 ** k) for k in range(-3, 12)]
        assert all(b > a for a, b in zip(values, values[1:]))


class TestTaskCondition:
    def test_empty_visits_hold(self):
        assert task_condition_holds([])

    def test_multi_stage_sum(self):
        # Two stages at 0.5: 0.75 + 0.75 = 1.5 > 1 -> fails.
        assert not task_condition_holds([0.5, 0.5])
        # Two stages at 0.3: f(0.3) = 0.3*0.85/0.7 ~ 0.364 -> 0.729 <= 1.
        assert task_condition_holds([0.3, 0.3])

    def test_saturated_stage_fails(self):
        assert not task_condition_holds([1.0])


# ----------------------------------------------------------------------
# SyntheticUtilizationLedger
# ----------------------------------------------------------------------
class TestLedger:
    def make(self, track_time=False):
        return SyntheticUtilizationLedger(["a", "b"], track_time=track_time)

    def test_starts_empty(self):
        ledger = self.make()
        assert ledger.utilization("a") == 0.0
        assert ledger.snapshot() == {"a": 0.0, "b": 0.0}

    def test_add_accrues(self):
        ledger = self.make()
        ledger.add("a", ("T", 0, 0), 0.2)
        ledger.add("a", ("T", 0, 1), 0.1)
        assert ledger.utilization("a") == pytest.approx(0.3)
        assert ledger.utilization("b") == 0.0

    def test_duplicate_key_rejected(self):
        ledger = self.make()
        ledger.add("a", ("T", 0, 0), 0.2)
        with pytest.raises(SchedulingError):
            ledger.add("a", ("T", 0, 0), 0.2)

    def test_same_key_different_nodes_allowed(self):
        ledger = self.make()
        ledger.add("a", ("T", 0, 0), 0.2)
        ledger.add("b", ("T", 0, 0), 0.2)
        assert ledger.utilization("b") == pytest.approx(0.2)

    def test_remove_returns_presence(self):
        ledger = self.make()
        ledger.add("a", ("T", 0, 0), 0.2)
        assert ledger.remove("a", ("T", 0, 0))
        assert not ledger.remove("a", ("T", 0, 0))
        assert ledger.utilization("a") == 0.0

    def test_negative_contribution_rejected(self):
        ledger = self.make()
        with pytest.raises(SchedulingError):
            ledger.add("a", ("T", 0, 0), -0.1)

    def test_unknown_node_rejected(self):
        ledger = self.make()
        with pytest.raises(SchedulingError):
            ledger.add("zz", ("T", 0, 0), 0.1)
        with pytest.raises(SchedulingError):
            ledger.utilization("zz")

    def test_contains(self):
        ledger = self.make()
        ledger.add("a", ("T", 0, 0), 0.2)
        assert ledger.contains("a", ("T", 0, 0))
        assert not ledger.contains("b", ("T", 0, 0))

    def test_contribution_count(self):
        ledger = self.make()
        ledger.add("a", ("T", 0, 0), 0.2)
        ledger.add("a", ("T", 1, 0), 0.2)
        assert ledger.contribution_count("a") == 2

    def test_time_weighted_average(self):
        ledger = self.make(track_time=True)
        ledger.add("a", ("T", 0, 0), 0.4, now=0.0)
        ledger.remove("a", ("T", 0, 0), now=5.0)
        assert ledger.average_utilization("a", 10.0) == pytest.approx(0.2)

    def test_average_requires_tracking(self):
        ledger = self.make(track_time=False)
        with pytest.raises(SchedulingError):
            ledger.average_utilization("a", 1.0)

    def test_needs_at_least_one_node(self):
        with pytest.raises(SchedulingError):
            SyntheticUtilizationLedger([])


# ----------------------------------------------------------------------
# AubAnalyzer
# ----------------------------------------------------------------------
class TestAnalyzer:
    def make(self):
        ledger = SyntheticUtilizationLedger(["a", "b"])
        return ledger, AubAnalyzer(ledger)

    def test_empty_system_admits_feasible_task(self):
        _ledger, analyzer = self.make()
        assert analyzer.admissible(["a"], {"a": 0.3}, now=0.0)

    def test_candidate_over_bound_rejected(self):
        _ledger, analyzer = self.make()
        # Two stages at 0.5 each on the same processor: U=1 -> saturated.
        assert not analyzer.admissible(["a", "a"], {"a": 1.0}, now=0.0)

    def test_existing_task_protected(self):
        ledger, analyzer = self.make()
        # Existing two-stage task at 0.3 per stage: sum f(0.3)*2 ~ 0.73.
        ledger.add("a", ("T1", 0, 0), 0.3)
        ledger.add("b", ("T1", 0, 1), 0.3)
        analyzer.register(("T1", 0), ["a", "b"], expiry=100.0)
        # Candidate pushing processor "a" to 0.75 would be fine for itself
        # (single stage: f(0.75) ~ 1.875 > 1 actually fails)...
        assert not analyzer.admissible(["a"], {"a": 0.45}, now=0.0)
        # A small candidate on "a" keeps everyone schedulable.
        assert analyzer.admissible(["a"], {"a": 0.1}, now=0.0)

    def test_candidate_rejected_when_it_breaks_existing_task(self):
        ledger, analyzer = self.make()
        # Existing task visits both processors at 0.4: 2*f(0.4) ~ 1.07 > 1?
        # f(0.4) = 0.4*0.8/0.6 = 0.5333 -> 1.067 > 1. Use 0.35 instead:
        # f(0.35) = 0.35*0.825/0.65 = 0.4442 -> 0.888 <= 1. OK.
        ledger.add("a", ("T1", 0, 0), 0.35)
        ledger.add("b", ("T1", 0, 1), 0.35)
        analyzer.register(("T1", 0), ["a", "b"], expiry=100.0)
        # Candidate only visits "a" and is fine alone, but pushes T1 over.
        # After adding 0.2 to "a": f(0.55)+f(0.35) = 0.886+0.444 = 1.33 > 1.
        assert not analyzer.admissible(["a"], {"a": 0.2}, now=0.0)

    def test_expired_registrations_pruned(self):
        ledger, analyzer = self.make()
        ledger.add("a", ("T1", 0, 0), 0.35)
        ledger.add("b", ("T1", 0, 1), 0.35)
        analyzer.register(("T1", 0), ["a", "b"], expiry=10.0)
        assert analyzer.registered == 1
        # After expiry (contributions would also have been removed).
        ledger.remove("a", ("T1", 0, 0))
        ledger.remove("b", ("T1", 0, 1))
        assert analyzer.admissible(["a"], {"a": 0.2}, now=11.0)
        assert analyzer.registered == 0

    def test_exclude_skips_relocating_task(self):
        ledger, analyzer = self.make()
        ledger.add("a", ("T1", RESERVED, 0), 0.5)
        analyzer.register(("T1", RESERVED), ["a"], expiry=None)
        # Moving T1 from "a" to "b": delta -0.5 on a, +0.5 on b.
        assert analyzer.admissible(
            ["b"], {"a": -0.5, "b": 0.5}, now=0.0, exclude=("T1", RESERVED)
        )

    def test_negative_delta_clamps_at_zero(self):
        _ledger, analyzer = self.make()
        # A bogus negative delta on an empty node must not produce a
        # negative utilization in the hypothetical totals.
        assert analyzer.admissible(["a"], {"a": -0.2}, now=0.0)

    def test_unregister(self):
        _ledger, analyzer = self.make()
        analyzer.register(("T1", 0), ["a"], expiry=None)
        analyzer.unregister(("T1", 0))
        assert analyzer.registered == 0

    def test_tests_performed_counter(self):
        _ledger, analyzer = self.make()
        analyzer.admissible(["a"], {"a": 0.1}, now=0.0)
        analyzer.admissible(["a"], {"a": 0.1}, now=0.0)
        assert analyzer.tests_performed == 2

    def test_reregister_replaces_previous_entry(self):
        ledger, analyzer = self.make()
        ledger.add("a", ("T1", RESERVED, 0), 0.4)
        analyzer.register(("T1", RESERVED), ["a"], expiry=None)
        # Relocate: the same key now visits "b" only.
        ledger.remove("a", ("T1", RESERVED, 0))
        ledger.add("b", ("T1", RESERVED, 0), 0.4)
        analyzer.register(("T1", RESERVED), ["b"], expiry=None)
        assert analyzer.registered == 1
        # A candidate saturating "a" is constrained only by itself now:
        # T1's condition must be evaluated against "b", not the stale "a".
        assert analyzer.admissible(["a"], {"a": 0.5}, now=0.0)
        # ...while a candidate pushing "b" over the bound still fails.
        assert not analyzer.admissible(["b"], {"b": 0.3}, now=0.0)

    def test_expiry_heap_ignores_stale_entries(self):
        ledger, analyzer = self.make()
        ledger.add("a", ("T1", 0, 0), 0.3)
        analyzer.register(("T1", 0), ["a"], expiry=5.0)
        # Re-register the same key with a later expiry; the stale heap
        # entry for t=5 must not retire the live registration.
        analyzer.register(("T1", 0), ["a"], expiry=50.0)
        analyzer.prune(10.0)
        assert analyzer.registered == 1
        analyzer.prune(60.0)
        assert analyzer.registered == 0


class TestIncrementalMatchesNaiveScripted:
    """Scripted parity checks between the incremental and naive analyzers
    (randomized sequences live in test_property_aub.py)."""

    def make_pair(self, nodes=("a", "b", "c")):
        ledger_i = SyntheticUtilizationLedger(nodes)
        ledger_n = SyntheticUtilizationLedger(nodes)
        return (ledger_i, AubAnalyzer(ledger_i)), (ledger_n, NaiveAubAnalyzer(ledger_n))

    def test_admit_expire_relocate_sequence(self):
        (ledger_i, inc), (ledger_n, nai) = self.make_pair()
        script = [
            (["a", "b"], {"a": 0.2, "b": 0.2}, 0.0, 10.0),
            (["b", "c"], {"b": 0.25, "c": 0.25}, 1.0, 4.0),
            (["a", "a"], {"a": 0.3}, 2.0, 8.0),
            (["c"], {"c": 0.5}, 3.0, 9.0),
            (["b"], {"b": 0.4}, 5.0, 12.0),   # after T1 expired at t=5
            (["a", "b", "c"], {"a": 0.1, "b": 0.1, "c": 0.1}, 6.0, 20.0),
        ]
        admitted = []
        for i, (visits, contribs, now, expiry) in enumerate(script):
            # Expire committed entries whose deadline passed, like the AC's
            # _expire_job events would.
            for key, nodes_used, t_exp in list(admitted):
                if t_exp <= now:
                    for j, node in enumerate(nodes_used):
                        ledger_i.remove(node, (key[0], key[1], j), now)
                        ledger_n.remove(node, (key[0], key[1], j), now)
                    inc.unregister(key)
                    nai.unregister(key)
                    admitted.remove((key, nodes_used, t_exp))
            got = inc.admissible(visits, contribs, now)
            want = nai.admissible(visits, contribs, now)
            assert got == want, f"step {i}: incremental={got} naive={want}"
            if got:
                key = (f"T{i}", 0)
                for j, node in enumerate(visits):
                    share = contribs[node] / sum(
                        1 for n in visits if n == node
                    )
                    ledger_i.add(node, (key[0], key[1], j), share, now)
                    ledger_n.add(node, (key[0], key[1], j), share, now)
                inc.register(key, list(visits), expiry)
                nai.register(key, list(visits), expiry)
                admitted.append((key, list(visits), expiry))
        assert inc.registered == nai.registered

    def test_relocation_with_exclude_matches(self):
        (ledger_i, inc), (ledger_n, nai) = self.make_pair()
        for ledger, analyzer in ((ledger_i, inc), (ledger_n, nai)):
            ledger.add("a", ("T1", RESERVED, 0), 0.5)
            analyzer.register(("T1", RESERVED), ["a"], None)
            ledger.add("b", ("T2", RESERVED, 0), 0.3)
            analyzer.register(("T2", RESERVED), ["b"], None)
        delta = {"a": -0.5, "b": 0.5}
        assert inc.admissible(
            ["b"], delta, now=0.0, exclude=("T1", RESERVED)
        ) == nai.admissible(["b"], delta, now=0.0, exclude=("T1", RESERVED))

    def test_idle_reset_style_removal_invalidate_caches(self):
        (ledger_i, inc), (ledger_n, nai) = self.make_pair()
        for ledger, analyzer in ((ledger_i, inc), (ledger_n, nai)):
            ledger.add("a", ("T1", 0, 0), 0.55)
            analyzer.register(("T1", 0), ["a"], 100.0)
        # Too heavy now on both:
        assert inc.admissible(["a"], {"a": 0.2}, 0.0) == nai.admissible(
            ["a"], {"a": 0.2}, 0.0
        )
        # An idle reset reclaims the contribution (ledger-only removal,
        # registration stays) — the cached terms must follow.
        ledger_i.remove("a", ("T1", 0, 0))
        ledger_n.remove("a", ("T1", 0, 0))
        got = inc.admissible(["a"], {"a": 0.2}, 0.0)
        assert got == nai.admissible(["a"], {"a": 0.2}, 0.0)
        assert got is True

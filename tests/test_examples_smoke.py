"""Smoke-run every example under a short duration cap.

The examples are the living documentation of the ``repro.api`` public
surface; an API regression that breaks one of them should fail the build.
Each example honors ``REPRO_EXAMPLE_DURATION`` (simulated seconds), so
the whole sweep stays fast.  The same sweep runs as a dedicated CI job.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
SRC_DIR = Path(__file__).resolve().parent.parent / "src"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_every_example_is_covered():
    """Fail if a new example is added without appearing in the sweep."""
    assert len(EXAMPLES) == 7, EXAMPLES


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs_clean(example):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["REPRO_EXAMPLE_DURATION"] = "2.0"
    env.setdefault("REPRO_WORKERS", "2")
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / example)],
        env=env,
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert proc.returncode == 0, (
        f"{example} failed:\nstdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    )
    assert proc.stdout.strip(), f"{example} printed nothing"

"""Property test: builder-produced Scenarios survive process boundaries.

Scenarios are the unit of work handed to worker processes (suite runs
pickle them into cells), so *every* value the fluent builder can produce
must (a) pickle-round-trip to an equal value and (b) re-serialize to
byte-identical pickle and JSON forms — otherwise which process built the
scenario would become observable.
"""

from __future__ import annotations

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Scenario

COMBOS = ("T_T_T", "T_N_N", "J_J_J", "J_N_N", "default", "paper-best")
POLICIES = ("aub", "deferrable_server")

seeds = st.integers(min_value=0, max_value=2**31 - 1)
durations = st.floats(
    min_value=1.0, max_value=1000.0, allow_nan=False, allow_infinity=False
)


node_names = st.sampled_from(("n1", "n2", "n3", "n4"))


def _draw_fault(draw, builder) -> None:
    """Append one random fault disturbance via its builder method."""
    kind = draw(st.sampled_from(
        ("node_crash", "partition", "delay_spike", "message_loss")
    ))
    start = draw(st.floats(0.0, 100.0, allow_nan=False))
    span = draw(st.floats(0.1, 50.0, allow_nan=False))
    if kind == "node_crash":
        builder.node_crash(
            node=draw(node_names),
            time=start,
            recovery=start + span if draw(st.booleans()) else None,
        )
    elif kind == "partition":
        builder.partition(
            time=start,
            heal=start + span,
            group_a=("n1",),
            group_b=draw(st.sampled_from((("n2",), ("n2", "n3")))),
        )
    elif kind == "delay_spike":
        builder.delay_spike(
            time=start,
            until=start + span,
            factor=draw(st.floats(0.1, 10.0, allow_nan=False)),
        )
    else:
        builder.message_loss(
            probability=draw(st.floats(0.01, 1.0, allow_nan=False)),
            time=start,
            until=start + span if draw(st.booleans()) else None,
            stream=draw(st.sampled_from(("message_loss", "chaos_loss"))),
        )


@st.composite
def scenarios(draw) -> Scenario:
    builder = Scenario.builder()
    if draw(st.booleans()):
        builder.random_workload(draw(seeds), index=draw(st.integers(0, 4)))
    else:
        builder.imbalanced_workload(draw(seeds), index=draw(st.integers(0, 4)))
    engine = draw(st.sampled_from(("middleware", "distributed", "replay")))
    if engine == "distributed":
        builder.distributed()
        # Fault (chaos) disturbances are distributed-engine features.
        for _ in range(draw(st.integers(0, 2))):
            _draw_fault(draw, builder)
    elif engine == "replay":
        builder.replay(draw(st.sampled_from(POLICIES)))
    else:
        builder.combo(draw(st.sampled_from(COMBOS)))
        # Disturbances and tracing are middleware-engine-only features.
        for i in range(draw(st.integers(0, 2))):
            if draw(st.booleans()):
                builder.burst(
                    time=draw(st.floats(0.0, 100.0, allow_nan=False)),
                    jobs=draw(st.integers(1, 50)),
                    base_index=100_000 + 1_000 * i,
                )
            else:
                builder.slowdown(
                    time=draw(st.floats(0.0, 100.0, allow_nan=False)),
                    factor=draw(st.floats(0.1, 4.0, allow_nan=False)),
                )
        if draw(st.booleans()):
            builder.trace()
        if draw(st.booleans()):
            # The one fault disturbance the middleware engine accepts.
            start = draw(st.floats(0.0, 100.0, allow_nan=False))
            builder.delay_spike(
                time=start,
                until=start + draw(st.floats(0.1, 50.0, allow_nan=False)),
                factor=draw(st.floats(0.1, 10.0, allow_nan=False)),
            )
    builder.duration(draw(durations))
    builder.seed(draw(seeds))
    if draw(st.booleans()):
        builder.interarrival_factor(draw(st.floats(0.5, 16.0, allow_nan=False)))
    if draw(st.booleans()):
        builder.drain(draw(st.booleans()))
    if draw(st.booleans()):
        builder.label(draw(st.text(min_size=1, max_size=12)))
    return builder.build()


@given(scenarios())
@settings(max_examples=80, deadline=None)
def test_scenario_pickle_round_trips_to_equal_value(scenario):
    blob = pickle.dumps(scenario, protocol=pickle.HIGHEST_PROTOCOL)
    restored = pickle.loads(blob)
    assert restored == scenario
    # Re-serialization is bit-identical: the unpickled copy is
    # structurally indistinguishable from the original.
    assert pickle.dumps(restored, protocol=pickle.HIGHEST_PROTOCOL) == blob


@given(scenarios())
@settings(max_examples=80, deadline=None)
def test_scenario_json_form_is_stable_across_pickling(scenario):
    restored = pickle.loads(pickle.dumps(scenario))
    assert restored.to_json_str() == scenario.to_json_str()
    # And the JSON form itself round-trips to the same scenario.
    assert Scenario.from_json_str(scenario.to_json_str()) == scenario

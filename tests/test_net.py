"""Unit tests for latency models, the network, and event channels."""

import random

import pytest

from repro.errors import SimulationError
from repro.net.channel import LocalEventChannel
from repro.net.federation import FederatedEventChannel
from repro.net.latency import (
    ConstantDelay,
    NormalDelay,
    TriangularDelay,
    UniformDelay,
    paper_calibrated_delay,
)
from repro.net.network import Network
from repro.sim.kernel import USEC, Simulator


# ----------------------------------------------------------------------
# Latency models
# ----------------------------------------------------------------------
class TestDelayModels:
    def test_constant(self, rng):
        model = ConstantDelay(0.5)
        assert model.sample(rng) == 0.5
        assert model.mean() == 0.5

    def test_constant_rejects_negative(self):
        with pytest.raises(SimulationError):
            ConstantDelay(-1.0)

    def test_uniform_within_bounds(self, rng):
        model = UniformDelay(0.1, 0.2)
        for _ in range(100):
            assert 0.1 <= model.sample(rng) <= 0.2
        assert model.mean() == pytest.approx(0.15)

    def test_uniform_rejects_bad_bounds(self):
        with pytest.raises(SimulationError):
            UniformDelay(0.2, 0.1)

    def test_triangular_within_bounds(self, rng):
        model = TriangularDelay(1.0, 2.0, 3.0)
        for _ in range(100):
            assert 1.0 <= model.sample(rng) <= 3.0
        assert model.mean() == pytest.approx(2.0)

    def test_triangular_rejects_bad_order(self):
        with pytest.raises(SimulationError):
            TriangularDelay(2.0, 1.0, 3.0)

    def test_normal_truncates_at_floor(self):
        model = NormalDelay(0.0, 1.0, floor=0.5)
        r = random.Random(0)
        assert all(model.sample(r) >= 0.5 for _ in range(50))

    def test_paper_calibration_mean(self, rng):
        model = paper_calibrated_delay()
        assert model.mean() == pytest.approx(322 * USEC, rel=1e-6)
        samples = [model.sample(rng) for _ in range(5000)]
        assert sum(samples) / len(samples) == pytest.approx(322 * USEC, rel=0.02)
        assert max(samples) <= 361 * USEC


# ----------------------------------------------------------------------
# Network
# ----------------------------------------------------------------------
class TestNetwork:
    def make(self, delay=None):
        sim = Simulator()
        net = Network(sim, random.Random(1), delay or ConstantDelay(0.001))
        net.add_node("a")
        net.add_node("b")
        return sim, net

    def test_delivery_after_delay(self):
        sim, net = self.make()
        got = []
        net.send("a", "b", "topic", "payload", lambda m: got.append((sim.now, m.payload)))
        sim.run()
        assert got == [(0.001, "payload")]

    def test_local_delivery_is_immediate(self):
        sim, net = self.make()
        got = []
        net.send("a", "a", "topic", 1, lambda m: got.append(sim.now))
        sim.run()
        assert got == [0.0]

    def test_local_delivery_not_counted_in_delay_stats(self):
        sim, net = self.make()
        net.send("a", "a", "t", 1, lambda m: None)
        sim.run()
        assert net.delay_stats.count == 0

    def test_remote_delay_recorded(self):
        sim, net = self.make()
        net.send("a", "b", "t", 1, lambda m: None)
        sim.run()
        assert net.delay_stats.count == 1
        assert net.delay_stats.mean == pytest.approx(0.001)

    def test_unknown_node_rejected(self):
        _sim, net = self.make()
        with pytest.raises(SimulationError):
            net.send("a", "zz", "t", 1, lambda m: None)

    def test_duplicate_node_rejected(self):
        _sim, net = self.make()
        with pytest.raises(SimulationError):
            net.add_node("a")

    def test_link_override(self):
        sim, net = self.make()
        net.set_link_delay("a", "b", ConstantDelay(0.5))
        got = []
        net.send("a", "b", "t", 1, lambda m: got.append(sim.now))
        net.send("b", "a", "t", 1, lambda m: got.append(sim.now))
        sim.run()
        assert got == [0.001, 0.5]

    def test_message_metadata(self):
        sim, net = self.make()
        captured = []
        net.send("a", "b", "topic-x", {"k": 1}, captured.append)
        sim.run()
        msg = captured[0]
        assert msg.source == "a"
        assert msg.destination == "b"
        assert msg.topic == "topic-x"
        assert msg.delivered_at == pytest.approx(0.001)

    def test_messages_sent_counter(self):
        sim, net = self.make()
        for _ in range(3):
            net.send("a", "b", "t", 1, lambda m: None)
        assert net.messages_sent == 3


# ----------------------------------------------------------------------
# Local event channel
# ----------------------------------------------------------------------
class TestLocalEventChannel:
    def test_subscribe_and_push(self):
        ch = LocalEventChannel("n")
        got = []
        ch.subscribe("t", got.append)
        assert ch.push("t", 42) == 1
        assert got == [42]

    def test_push_without_subscribers(self):
        ch = LocalEventChannel("n")
        assert ch.push("t", 1) == 0

    def test_multiple_subscribers_all_notified(self):
        ch = LocalEventChannel("n")
        a, b = [], []
        ch.subscribe("t", a.append)
        ch.subscribe("t", b.append)
        ch.push("t", 1)
        assert a == [1] and b == [1]

    def test_unsubscribe(self):
        ch = LocalEventChannel("n")
        got = []
        ch.subscribe("t", got.append)
        ch.unsubscribe("t", got.append)
        ch.push("t", 1)
        assert got == []

    def test_topics_are_isolated(self):
        ch = LocalEventChannel("n")
        got = []
        ch.subscribe("t1", got.append)
        ch.push("t2", 1)
        assert got == []

    def test_events_delivered_counter(self):
        ch = LocalEventChannel("n")
        ch.subscribe("t", lambda p: None)
        ch.push("t", 1)
        ch.push("t", 2)
        assert ch.events_delivered == 2


# ----------------------------------------------------------------------
# Federated event channel
# ----------------------------------------------------------------------
class TestFederation:
    def make(self):
        sim = Simulator()
        net = Network(sim, random.Random(1), ConstantDelay(0.01))
        fed = FederatedEventChannel(net)
        fed.add_node("a")
        fed.add_node("b")
        fed.add_node("c")
        return sim, fed

    def test_local_send_is_synchronous(self):
        sim, fed = self.make()
        got = []
        fed.subscribe("a", "t", lambda p: got.append(sim.now))
        fed.send("a", "a", "t", 1)
        assert got == [0.0]

    def test_remote_send_incurs_one_hop(self):
        sim, fed = self.make()
        got = []
        fed.subscribe("b", "t", lambda p: got.append(sim.now))
        fed.send("a", "b", "t", 1)
        sim.run()
        assert got == [0.01]

    def test_send_targets_only_destination(self):
        sim, fed = self.make()
        got_b, got_c = [], []
        fed.subscribe("b", "t", got_b.append)
        fed.subscribe("c", "t", got_c.append)
        fed.send("a", "b", "t", "x")
        sim.run()
        assert got_b == ["x"] and got_c == []

    def test_publish_reaches_all_nodes(self):
        sim, fed = self.make()
        got = []
        for node in ("a", "b", "c"):
            fed.subscribe(node, "t", lambda p, n=node: got.append(n))
        fed.publish("a", "t", 1)
        sim.run()
        assert sorted(got) == ["a", "b", "c"]

    def test_publish_skips_nodes_without_subscribers(self):
        sim, fed = self.make()
        fed.subscribe("b", "t", lambda p: None)
        fed.publish("a", "t", 1)
        assert fed.remote_forwards == 1

    def test_unknown_node_rejected(self):
        _sim, fed = self.make()
        with pytest.raises(SimulationError):
            fed.send("a", "zz", "t", 1)

    def test_duplicate_federation_rejected(self):
        _sim, fed = self.make()
        with pytest.raises(SimulationError):
            fed.add_node("a")

"""Integration tests for the DAnCE-lite deployment pipeline."""

import pytest

from repro.config.dance import (
    DeploymentEngine,
    ExecutionManager,
    PlanLauncher,
    default_repository,
)
from repro.config.engine import ConfigurationEngine
from repro.config.characteristics import ApplicationCharacteristics
from repro.config.plan import build_deployment_plan
from repro.config.xml_io import to_xml
from repro.core.cost_model import CostModel
from repro.core.middleware import MiddlewareSystem
from repro.core.strategies import StrategyCombo
from repro.errors import DeploymentError
from repro.net.latency import ConstantDelay

from tests.taskutil import make_two_node_workload


def deploy(label="J_T_T", **kwargs):
    workload = make_two_node_workload()
    plan = build_deployment_plan(workload, StrategyCombo.from_label(label))
    kwargs.setdefault("cost_model", CostModel.zero())
    kwargs.setdefault("delay_model", ConstantDelay(0.001))
    return DeploymentEngine().deploy(plan, **kwargs)


class TestDeploymentEngine:
    def test_deploy_produces_runnable_system(self):
        system = deploy("J_T_T", seed=3)
        results = system.run(duration=5.0)
        assert results.metrics.arrived_jobs > 0
        assert results.deadline_misses == 0

    def test_deploy_from_xml_string(self):
        workload = make_two_node_workload()
        plan = build_deployment_plan(workload, StrategyCombo.from_label("J_J_J"))
        system = DeploymentEngine().deploy(
            to_xml(plan),
            seed=3,
            cost_model=CostModel.zero(),
            delay_model=ConstantDelay(0.001),
        )
        assert system.combo.label == "J_J_J"
        results = system.run(duration=5.0)
        assert results.metrics.arrived_jobs > 0

    @pytest.mark.parametrize("label", ["T_N_N", "J_N_J", "J_J_T", "T_T_T"])
    def test_deployment_equals_programmatic_build(self, label):
        workload = make_two_node_workload()
        kwargs = dict(
            seed=9, cost_model=CostModel(), delay_model=None
        )
        plan = build_deployment_plan(workload, StrategyCombo.from_label(label))
        deployed = DeploymentEngine().deploy(plan, seed=9)
        direct = MiddlewareSystem(workload, StrategyCombo.from_label(label), seed=9)
        a = deployed.run(duration=10.0)
        b = direct.run(duration=10.0)
        assert a.accepted_utilization_ratio == b.accepted_utilization_ratio
        assert a.events_executed == b.events_executed

    def test_components_configured_from_plan_properties(self):
        system = deploy("J_J_T")
        assert system.ac.get_attribute("ac_strategy") == "J"
        assert system.ac.get_attribute("ir_strategy") == "J"
        assert system.ac.get_attribute("lb_strategy") == "T"
        assert system.lb is not None
        te = system.env.task_effectors["app1"]
        assert te.get_attribute("release_mode") == "per_job"

    def test_no_lb_combo_deploys_without_lb(self):
        system = deploy("J_N_N")
        assert system.lb is None

    def test_execution_manager_component_lookup(self):
        workload = make_two_node_workload()
        plan = build_deployment_plan(workload, StrategyCombo.from_label("J_N_N"))
        system = MiddlewareSystem(
            workload, StrategyCombo.from_label("J_N_N"), auto_deploy=False
        )
        manager = ExecutionManager(default_repository(system.env))
        manager.execute(plan, system.containers)
        assert manager.component("Central-AC") is not None
        with pytest.raises(DeploymentError):
            manager.component("ghost")

    def test_plan_launcher_parses(self):
        workload = make_two_node_workload()
        plan = build_deployment_plan(workload, StrategyCombo.from_label("J_N_N"))
        assert PlanLauncher.parse(to_xml(plan)) == plan


class TestConfigurationEngineEndToEnd:
    def test_characteristics_to_running_system(self):
        engine = ConfigurationEngine()
        chars = ApplicationCharacteristics(
            job_skipping=True,
            replicated_components=True,
            state_persistence=False,
        )
        result = engine.configure(make_two_node_workload(), chars)
        assert result.combo.label == "J_T_J"
        system = engine.deploy(result, seed=1, cost_model=CostModel.zero())
        run = system.run(duration=5.0)
        assert run.metrics.arrived_jobs > 0

    def test_default_configuration_is_t_t_t(self):
        engine = ConfigurationEngine()
        result = engine.configure(make_two_node_workload())
        assert result.combo.label == "T_T_T"
        assert any("default" in n for n in result.notes)

    def test_explicit_combo_wins(self):
        engine = ConfigurationEngine()
        result = engine.configure(
            make_two_node_workload(),
            combo=StrategyCombo.from_label("J_J_N"),
        )
        assert result.combo.label == "J_J_N"

    def test_unreplicated_workload_warns_about_lb(self):
        from repro.sched.task import TaskKind
        from repro.workloads.model import Workload
        from tests.taskutil import make_task

        bare = Workload(
            tasks=(make_task("T", TaskKind.APERIODIC, deadline=1.0, execs=(0.1,), homes=("app1",)),),
            app_nodes=("app1",),
        )
        engine = ConfigurationEngine()
        result = engine.configure(bare, combo=StrategyCombo.from_label("J_N_T"))
        assert any("no subtask declares replicas" in n for n in result.notes)

    def test_configure_from_files(self, tmp_path):
        from repro.config.workload_spec import workload_to_json

        path = tmp_path / "workload.json"
        path.write_text(workload_to_json(make_two_node_workload()))
        engine = ConfigurationEngine()
        result = engine.configure_from_files(
            path,
            answers={
                "job_skipping": "Y",
                "replicated_components": "Y",
                "state_persistence": "N",
                "overhead_tolerance": "PJ",
            },
        )
        assert result.combo.label == "J_J_J"
        assert "<DeploymentPlan" in result.xml

"""Component-level unit tests: each service component in isolation."""

import math

import pytest

from repro.ccm.events import (
    AcceptEvent,
    IdleResettingEvent,
    TOPIC_IDLE_RESETTING,
    TOPIC_TASK_ARRIVE,
    TaskArriveEvent,
    accept_topic,
)
from repro.core.admission_controller import AdmissionControllerComponent
from repro.core.idle_resetter import IdleResetterComponent
from repro.core.load_balancer import LoadBalancerComponent
from repro.core.subtask import FISubtaskComponent, LastSubtaskComponent
from repro.core.task_effector import TaskEffectorComponent
from repro.errors import AttributeConfigError, ComponentError
from repro.sched.aub import RESERVED
from repro.sched.task import Job, TaskKind

from tests.envutil import make_env
from tests.taskutil import make_task


def install_ac(env, containers, lb=False):
    ac = AdmissionControllerComponent("Central-AC", env)
    combo = env.combo
    ac.set_configuration(
        {
            "ac_strategy": combo.ac.value,
            "ir_strategy": combo.ir.value,
            "lb_strategy": combo.lb.value,
        }
    )
    containers[env.manager_node].install(ac)
    lb_component = None
    if lb:
        lb_component = LoadBalancerComponent("Central-LB", env)
        containers[env.manager_node].install(lb_component)
        lb_component.connect_admission_state(ac.provide_state_facet())
        ac.connect_locator(lb_component.provide_location_facet())
    ac.activate()
    if lb_component is not None:
        lb_component.activate()
    return ac, lb_component


def install_te(env, containers, node="app1", mode="per_job"):
    te = TaskEffectorComponent(f"TE-{node}", env)
    te.set_configuration({"processor_id": node, "release_mode": mode})
    containers[node].install(te)
    te.activate()
    return te


def install_ir(env, containers, node="app1", strategy="J"):
    ir = IdleResetterComponent(f"IR-{node}", env)
    ir.set_configuration({"processor_id": node, "strategy": strategy})
    containers[node].install(ir)
    ir.activate()
    return ir


def install_subtask(env, containers, task, index, node, is_last, ir=None):
    cls = LastSubtaskComponent if is_last else FISubtaskComponent
    comp = cls(f"{task.task_id}.s{index}@{node}", env)
    comp.set_configuration(
        {
            "task_id": task.task_id,
            "subtask_index": index,
            "execution_time": task.subtasks[index].execution_time,
            "priority": task.deadline,
            "ir_mode": env.combo.ir.value,
        }
    )
    containers[node].install(comp)
    if ir is not None:
        comp.connect_ir(ir.provide_complete_facet())
    comp.activate()
    return comp


# ----------------------------------------------------------------------
# Task Effector
# ----------------------------------------------------------------------
class TestTaskEffector:
    def test_arrival_pushes_task_arrive_event(self):
        env, containers = make_env()
        te = install_te(env, containers)
        seen = []
        env.federation.subscribe(env.manager_node, TOPIC_TASK_ARRIVE, seen.append)
        task = make_task("A", TaskKind.APERIODIC, deadline=1.0, execs=(0.1,))
        job = Job(task, 0, 0.0, "app1")
        te.task_arrived(job)
        env.sim.run()
        assert len(seen) == 1
        assert isinstance(seen[0], TaskArriveEvent)
        assert seen[0].arrival_node == "app1"
        assert job.key in te.waiting

    def test_processor_id_mismatch_caught_at_activation(self):
        env, containers = make_env()
        te = TaskEffectorComponent("TE-bad", env)
        te.set_configuration({"processor_id": "app2"})
        containers["app1"].install(te)
        with pytest.raises(ComponentError):
            te.activate()

    def test_invalid_release_mode_rejected(self):
        env, _ = make_env()
        te = TaskEffectorComponent("TE-x", env)
        with pytest.raises(AttributeConfigError):
            te.set_attribute("release_mode", "sometimes")

    def test_accept_releases_held_job(self):
        env, containers = make_env()
        te = install_te(env, containers)
        task = make_task("A", TaskKind.APERIODIC, deadline=1.0, execs=(0.1,))
        install_subtask(env, containers, task, 0, "app1", is_last=True)
        job = Job(task, 0, 0.0, "app1")
        te.task_arrived(job)
        env.federation.send(
            env.manager_node,
            "app1",
            accept_topic("app1"),
            AcceptEvent(job, {0: "app1"}, "app1", "app1"),
        )
        env.sim.run()
        assert te.jobs_released == 1
        assert job.key not in te.waiting
        assert job.completed_at is not None


# ----------------------------------------------------------------------
# Admission Controller
# ----------------------------------------------------------------------
class TestAdmissionController:
    def drive(self, env, ac, *jobs):
        for job in jobs:
            env.federation.send(
                job.arrival_node,
                env.manager_node,
                TOPIC_TASK_ARRIVE,
                TaskArriveEvent(job=job, arrival_node=job.arrival_node),
            )
        env.sim.run()

    def test_admits_and_reserves_contributions(self):
        env, containers = make_env(combo_label="J_N_N")
        ac, _ = install_ac(env, containers)
        te = install_te(env, containers)
        task = make_task("A", TaskKind.APERIODIC, deadline=1.0, execs=(0.2,))
        install_subtask(env, containers, task, 0, "app1", is_last=True)
        job = Job(task, 0, 0.0, "app1")
        te.waiting[job.key] = job
        self.drive(env, ac, job)
        assert ac.admitted_jobs == 1
        # After the run the deadline passed and the contribution expired.
        assert ac.ledger.utilization("app1") == 0.0

    def test_reject_event_reaches_task_effector(self):
        env, containers = make_env(combo_label="J_N_N")
        ac, _ = install_ac(env, containers)
        te = install_te(env, containers)
        task = make_task("A", TaskKind.APERIODIC, deadline=1.0, execs=(0.5,))
        install_subtask(env, containers, task, 0, "app1", is_last=True)
        jobs = [Job(task, i, 0.0, "app1") for i in range(2)]
        for job in jobs:
            te.waiting[job.key] = job
        self.drive(env, ac, *jobs)
        assert ac.admitted_jobs == 1
        assert ac.rejected_jobs == 1
        assert te.jobs_rejected == 1

    def test_invalid_strategy_combination_refused_at_activation(self):
        env, containers = make_env()
        ac = AdmissionControllerComponent("AC", env)
        ac.set_configuration(
            {"ac_strategy": "T", "ir_strategy": "J", "lb_strategy": "N"}
        )
        containers[env.manager_node].install(ac)
        from repro.errors import InvalidStrategyCombination

        with pytest.raises(InvalidStrategyCombination):
            ac.activate()

    def test_lb_strategy_without_lb_connection_refused(self):
        env, containers = make_env()
        ac = AdmissionControllerComponent("AC", env)
        ac.set_configuration(
            {"ac_strategy": "J", "ir_strategy": "N", "lb_strategy": "T"}
        )
        containers[env.manager_node].install(ac)
        with pytest.raises(ComponentError):
            ac.activate()

    def test_idle_reset_event_removes_contribution(self):
        env, containers = make_env(combo_label="J_J_N")
        ac, _ = install_ac(env, containers)
        ac.ledger.add("app1", ("T", 0, 0), 0.3)
        env.federation.send(
            "app1",
            env.manager_node,
            TOPIC_IDLE_RESETTING,
            IdleResettingEvent(node="app1", entries=(("T", 0, 0),)),
        )
        env.sim.run()
        assert ac.ledger.utilization("app1") == 0.0
        assert ac.idle_resets_applied == 1

    def test_idle_reset_for_absent_key_is_noop(self):
        env, containers = make_env(combo_label="J_J_N")
        ac, _ = install_ac(env, containers)
        env.federation.send(
            "app1",
            env.manager_node,
            TOPIC_IDLE_RESETTING,
            IdleResettingEvent(node="app1", entries=(("T", 9, 9),)),
        )
        env.sim.run()
        assert ac.idle_resets_applied == 0


# ----------------------------------------------------------------------
# Load Balancer
# ----------------------------------------------------------------------
class TestLoadBalancer:
    def test_location_picks_lowest_utilization(self):
        env, containers = make_env(combo_label="J_N_J")
        ac, lb = install_ac(env, containers, lb=True)
        ac.ledger.add("app1", ("X", 0, 0), 0.4)
        task = make_task(
            "A", TaskKind.APERIODIC, deadline=1.0, execs=(0.2,),
            homes=("app1",), replicas=[("app2",)],
        )
        job = Job(task, 0, 0.0, "app1")
        assignment = lb.location(job, now=0.0)
        assert assignment == {0: "app2"}

    def test_location_none_when_nothing_admissible(self):
        env, containers = make_env(combo_label="J_N_J")
        ac, lb = install_ac(env, containers, lb=True)
        ac.ledger.add("app1", ("X", 0, 0), 0.9)
        ac.ledger.add("app2", ("Y", 0, 0), 0.9)
        task = make_task(
            "A", TaskKind.APERIODIC, deadline=1.0, execs=(0.3,),
            homes=("app1",), replicas=[("app2",)],
        )
        job = Job(task, 0, 0.0, "app1")
        assert lb.location(job, now=0.0) is None

    def test_chain_spreads_across_processors(self):
        env, containers = make_env(combo_label="J_N_J")
        _ac, lb = install_ac(env, containers, lb=True)
        task = make_task(
            "A", TaskKind.APERIODIC, deadline=1.0, execs=(0.2, 0.2),
            homes=("app1", "app1"), replicas=[("app2",), ("app2",)],
        )
        job = Job(task, 0, 0.0, "app1")
        assignment = lb.location(job, now=0.0)
        # Greedy: stage 0 -> app1 (tie broken by name), stage 1 -> app2.
        assert sorted(assignment.values()) == ["app1", "app2"]

    def test_location_for_reserved_keeps_good_placement(self):
        env, containers = make_env(combo_label="T_N_J")
        ac, lb = install_ac(env, containers, lb=True)
        task = make_task(
            "P", TaskKind.PERIODIC, deadline=1.0, execs=(0.2,),
            homes=("app1",), replicas=[("app2",)],
        )
        current = {0: "app1"}
        for subtask in task.subtasks:
            ac.ledger.add(
                "app1", (task.task_id, RESERVED, subtask.index), 0.2
            )
        # app1 holds only this reservation; moving gains nothing.
        assert lb.location_for_reserved(task, current, now=0.0) is None

    def test_location_for_reserved_moves_off_hot_node(self):
        env, containers = make_env(combo_label="T_N_J")
        ac, lb = install_ac(env, containers, lb=True)
        task = make_task(
            "P", TaskKind.PERIODIC, deadline=1.0, execs=(0.2,),
            homes=("app1",), replicas=[("app2",)],
        )
        ac.ledger.add("app1", (task.task_id, RESERVED, 0), 0.2)
        ac.analyzer.register((task.task_id, RESERVED), ["app1"], None)
        ac.ledger.add("app1", ("OTHER", 0, 0), 0.5)  # app1 now hot
        proposed = lb.location_for_reserved(task, {0: "app1"}, now=0.0)
        assert proposed == {0: "app2"}

    def test_unconnected_state_refused_at_activation(self):
        env, containers = make_env()
        lb = LoadBalancerComponent("LB", env)
        containers[env.manager_node].install(lb)
        with pytest.raises(ComponentError):
            lb.activate()


# ----------------------------------------------------------------------
# Idle Resetter
# ----------------------------------------------------------------------
class TestIdleResetter:
    def finished_job(self, strategy, kind, deadline=10.0):
        env, containers = make_env(combo_label="J_J_N")
        ir = install_ir(env, containers, strategy=strategy)
        task = make_task("T", kind, deadline=deadline, execs=(0.1,))
        job = Job(task, 0, 0.0, "app1")
        return env, ir, job

    def test_strategy_none_records_nothing(self):
        env, ir, job = self.finished_job("N", TaskKind.PERIODIC)
        ir.complete(job, 0)
        assert ir.completions_recorded == 0

    def test_per_task_skips_periodic(self):
        env, ir, job = self.finished_job("T", TaskKind.PERIODIC)
        ir.complete(job, 0)
        assert ir.completions_recorded == 0

    def test_per_task_records_aperiodic(self):
        env, ir, job = self.finished_job("T", TaskKind.APERIODIC)
        ir.complete(job, 0)
        assert ir.completions_recorded == 1

    def test_per_job_records_periodic(self):
        env, ir, job = self.finished_job("J", TaskKind.PERIODIC)
        ir.complete(job, 0)
        assert ir.completions_recorded == 1

    def test_expired_jobs_not_recorded(self):
        env, ir, job = self.finished_job("J", TaskKind.APERIODIC, deadline=0.1)
        env.sim.schedule(0.5, lambda: ir.complete(job, 0))
        env.sim.run()
        assert ir.completions_recorded == 0

    def test_report_batches_multiple_completions(self):
        env, containers = make_env(combo_label="J_J_N")
        ir = install_ir(env, containers, strategy="J")
        seen = []
        env.federation.subscribe(env.manager_node, TOPIC_IDLE_RESETTING, seen.append)
        task = make_task("T", TaskKind.PERIODIC, deadline=10.0, execs=(0.1,))
        for i in range(3):
            ir.complete(Job(task, i, 0.0, "app1"), 0)
        env.sim.run()
        assert len(seen) == 1
        assert len(seen[0].entries) == 3
        assert ir.reports_sent == 1

    def test_idle_detector_waits_for_application_work(self):
        """The report work runs at +inf priority: it only executes after
        application threads drain (the paper's idle-detector semantics)."""
        env, containers = make_env(combo_label="J_J_N")
        ir = install_ir(env, containers, strategy="J")
        cpu = containers["app1"].processor
        app_thread = cpu.new_thread("app", 1.0)
        from repro.cpu.thread import WorkItem

        report_times = []
        env.federation.subscribe(
            env.manager_node,
            TOPIC_IDLE_RESETTING,
            lambda e: report_times.append(env.sim.now),
        )
        task = make_task("T", TaskKind.PERIODIC, deadline=10.0, execs=(0.1,))
        ir.complete(Job(task, 0, 0.0, "app1"), 0)
        cpu.submit(app_thread, WorkItem(2.0))  # busy until t=2
        env.sim.run()
        assert report_times and report_times[0] >= 2.0


# ----------------------------------------------------------------------
# Subtask components
# ----------------------------------------------------------------------
class TestSubtaskComponents:
    def test_fi_triggers_successor_on_remote_node(self):
        env, containers = make_env(combo_label="J_N_N")
        task = make_task(
            "T", TaskKind.APERIODIC, deadline=1.0, execs=(0.1, 0.1),
            homes=("app1", "app2"),
        )
        first = install_subtask(env, containers, task, 0, "app1", is_last=False)
        last = install_subtask(env, containers, task, 1, "app2", is_last=True)
        job = Job(task, 0, 0.0, "app1")
        first.release(job, {0: "app1", 1: "app2"})
        env.sim.run()
        assert first.subjobs_executed == 1
        assert last.subjobs_executed == 1
        assert job.completed_at == pytest.approx(0.1 + 0.001 + 0.1)

    def test_release_rejects_wrong_node_assignment(self):
        env, containers = make_env()
        task = make_task("T", TaskKind.APERIODIC, deadline=1.0, execs=(0.1,))
        comp = install_subtask(env, containers, task, 0, "app1", is_last=True)
        job = Job(task, 0, 0.0, "app1")
        with pytest.raises(ComponentError):
            comp.release(job, {0: "app2"})

    def test_last_subtask_records_completion_metric(self):
        env, containers = make_env()
        task = make_task("T", TaskKind.APERIODIC, deadline=1.0, execs=(0.1,))
        comp = install_subtask(env, containers, task, 0, "app1", is_last=True)
        job = Job(task, 0, 0.0, "app1")
        comp.release(job, {0: "app1"})
        env.sim.run()
        assert env.metrics.completed_jobs == 1
        assert job.subjob_finish_times[0] == pytest.approx(0.1)

    def test_subjob_completion_notifies_ir(self):
        env, containers = make_env(combo_label="J_J_N")
        ir = install_ir(env, containers, strategy="J")
        task = make_task("T", TaskKind.PERIODIC, deadline=1.0, execs=(0.1,))
        comp = install_subtask(
            env, containers, task, 0, "app1", is_last=True, ir=ir
        )
        job = Job(task, 0, 0.0, "app1")
        comp.release(job, {0: "app1"})
        env.sim.run()
        assert ir.completions_recorded == 1

    def test_ir_mode_none_suppresses_notification(self):
        env, containers = make_env(combo_label="J_N_N")
        ir = install_ir(env, containers, strategy="N")
        task = make_task("T", TaskKind.PERIODIC, deadline=1.0, execs=(0.1,))
        comp = install_subtask(
            env, containers, task, 0, "app1", is_last=True, ir=ir
        )
        job = Job(task, 0, 0.0, "app1")
        comp.release(job, {0: "app1"})
        env.sim.run()
        assert ir.completions_recorded == 0

    def test_attributes_validated(self):
        env, _ = make_env()
        comp = FISubtaskComponent("s", env)
        with pytest.raises(AttributeConfigError):
            comp.set_attribute("execution_time", -1.0)
        with pytest.raises(AttributeConfigError):
            comp.set_attribute("subtask_index", -2)
        with pytest.raises(AttributeConfigError):
            comp.set_attribute("ir_mode", "X")
